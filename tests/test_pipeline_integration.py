"""End-to-end pipeline integration tests (small budgets, real training).

These run the full pretrain -> CPT -> SFT -> three-method evaluation stack
on the test world with deliberately small step budgets.  They verify the
*plumbing* — stage wiring, model cloning, LoRA routing, evaluation methods,
scorecard assembly — not the score shapes (the benchmark harness owns
those, with budgets past the circuit-emergence threshold).
"""

import numpy as np
import pytest

from repro.core import AstroLLaMAPipeline, PipelineConfig, get_entry
from repro.core.pretrain import BasePretrainConfig
from repro.core.world import MicroWorld

pytestmark = pytest.mark.slow  # real training runs: scheduled CI job only


@pytest.fixture(scope="module")
def world():
    return MicroWorld.build_test(seed=0)


@pytest.fixture(scope="module")
def pipe(world):
    config = PipelineConfig(
        pretrain=BasePretrainConfig(total_steps=30),
        cpt_epochs=1.0,
        sft_scale=0.002,
        sft_epochs=1.0,
        max_questions=12,
        gen_max_new_tokens=12,
    )
    return AstroLLaMAPipeline(world, config)


@pytest.fixture(scope="module")
def native_result(pipe):
    return pipe.run(get_entry("LLaMA-2-7B"))


@pytest.fixture(scope="module")
def astro_result(pipe):
    return pipe.run(get_entry("AstroLLaMA-2-7B-AIC"))


class TestPipelineStages:
    def test_native_skips_cpt(self, native_result):
        assert native_result.cpt_history is None
        assert native_result.sft_history.steps >= 1

    def test_astro_runs_cpt(self, astro_result):
        assert astro_result.cpt_history is not None
        assert astro_result.cpt_history.steps >= 1

    def test_all_three_methods_evaluated(self, native_result):
        assert set(native_result.evaluations) == {
            "token_base",
            "token_instruct",
            "full_instruct",
        }
        for result in native_result.evaluations.values():
            assert result.n_questions == 12
            assert 0.0 <= result.accuracy <= 1.0

    def test_instruct_model_differs_from_base(self, native_result):
        base = native_result.base.model.named_parameters()
        instruct = native_result.instruct_model.named_parameters()
        changed = any(
            not np.array_equal(base[k], instruct[k]) for k in base
        )
        assert changed, "SFT did not modify the instruct model"

    def test_cpt_modifies_knowledge_model(self, pipe, astro_result):
        entry = get_entry("AstroLLaMA-2-7B-AIC")
        pristine = pipe.base_for(get_entry("LLaMA-2-7B")).model.named_parameters()
        cpt = astro_result.base.model.named_parameters()
        assert any(not np.array_equal(pristine[k], cpt[k]) for k in pristine)

    def test_base_cache_shared_across_entries(self, pipe, native_result, astro_result):
        # the AIC entry reuses the native base weights (one pretrain per tier)
        assert len(pipe._base_cache) >= 1
        key = "llama-2/tiny/0.35"
        assert key in pipe._base_cache

    def test_score_card_assembly(self, native_result):
        card = native_result.score_card()
        assert card.entry.name == "LLaMA-2-7B"
        assert set(card.scores) == {"token_base", "token_instruct", "full_instruct"}
        for score in card.scores.values():
            assert 0.0 <= score <= 100.0


class TestLoRAEntry:
    def test_abstract_entry_trains_lora_then_merges(self, world):
        config = PipelineConfig(
            pretrain=BasePretrainConfig(total_steps=25),
            cpt_epochs=1.0,
            sft_scale=0.002,
            max_questions=6,
            gen_max_new_tokens=8,
        )
        pipe = AstroLLaMAPipeline(world, config)
        entry = get_entry("AstroLLaMA-2-7B-Abstract")
        assert entry.cpt_lora
        base = pipe.base_for(entry)
        cpt_model, history = pipe.run_cpt(entry, base)
        assert history.steps >= 1
        # merged back to plain projections: full params exposed again
        names = list(cpt_model.named_parameters())
        assert any(n.endswith("attn.wq.weight") for n in names)
        assert not any("lora_" in n for n in names)
        # base weights untouched (LoRA trained a clone)
        ref = pipe.base_for(get_entry("LLaMA-2-7B")).model.named_parameters()
        for key, arr in base.model.named_parameters().items():
            np.testing.assert_array_equal(arr, ref[key])


class TestDatasetRouting:
    def test_each_entry_gets_its_dataset(self, pipe):
        abstract = pipe.cpt_dataset("abstract")
        aic = pipe.cpt_dataset("aic")
        summary = pipe.cpt_dataset("summary")
        assert abstract.word_count < aic.word_count
        assert summary.fact_ids >= aic.fact_ids
        with pytest.raises(KeyError):
            pipe.cpt_dataset("wikipedia")

    def test_qa_bridge_applied(self, pipe):
        dataset = pipe.cpt_dataset("aic")
        assert "bridge" in dataset.name
        assert any("Answer :" in d for d in dataset.documents)
