"""Evaluation-method tests using controllable fake models.

The fake model lets us verify the paper's Section V machinery exactly:
dynamic answer-token discovery (top-10 scan), letter-logit argmax, the
full-instruct generate-and-parse loop, and the batch runner — without any
training.
"""

import numpy as np
import pytest

from repro.corpus import make_astro_knowledge
from repro.eval import (
    BatchedEvaluationRunner,
    EvaluationRunner,
    FullInstructEvaluator,
    TokenPredictionEvaluator,
    discover_answer_tokens,
)
from repro.eval.prompts import (
    format_micro_chat_prompt,
    format_next_token_prompt,
    format_paper_full_instruct,
)
from repro.mcq import build_benchmark
from repro.model import ModelConfig, TransformerLM
from repro.tokenizer import WordTokenizer


@pytest.fixture(scope="module")
def astro():
    return make_astro_knowledge(n_facts=160, seed=11)


@pytest.fixture(scope="module")
def bench(astro):
    return build_benchmark(astro, n_articles=8, facts_per_article=6, dev_size=4, seed=12)


def make_tokenizer(astro, space_prefix):
    texts = []
    for f in astro.facts:
        texts.extend(f.statement(i) for i in range(4))
    texts.append("Question : A B C D Answer : Astrophysics and Cosmology "
                 "Multiple choice questions Solution set :")
    texts.append("User : Assistant : the answer is .")
    return WordTokenizer.train(texts, vocab_size=4000, space_prefix=space_prefix)


class OracleModel:
    """Fake CausalLM that always puts the correct letter's token on top.

    It decodes the prompt, finds the final question block, determines which
    option matches the knowledge base, and returns logits favouring that
    letter under the given convention.
    """

    def __init__(self, tokenizer, astro, convention, accuracy=1.0, seed=0):
        self.tokenizer = tokenizer
        self.astro = {f.question(): f.correct for f in astro.facts}
        self.convention = convention
        self.accuracy = accuracy
        self.rng = np.random.default_rng(seed)

    def next_token_logits(self, tokens):
        vocab_size = len(self.tokenizer.vocab)
        logits = np.zeros(vocab_size, dtype=np.float32)
        text = self.tokenizer.decode(np.asarray(tokens))
        # last question block
        blocks = text.split("Question :")
        last = blocks[-1]
        lines = last.split(" A : ")
        question = lines[0].strip()
        # parse options back out of the flattened text
        rest = "A : " + lines[1] if len(lines) > 1 else ""
        options = {}
        for letter in "ABCD":
            marker = f"{letter} : "
            start = rest.find(marker)
            if start < 0:
                continue
            end = len(rest)
            for nxt in ("B : ", "C : ", "D : ", " Answer"):
                j = rest.find(nxt, start + len(marker))
                if 0 <= j < end:
                    end = j
            options[letter] = rest[start + len(marker) : end].strip()
        correct_value = None
        for q, v in self.astro.items():
            if question.endswith(q) or q in question:
                correct_value = v
                break
        pick = None
        if correct_value is not None and self.rng.random() < self.accuracy:
            for letter, value in options.items():
                if value == correct_value:
                    pick = letter
                    break
        if pick is None:
            pick = "ABCD"[int(self.rng.integers(0, 4))]
        for letter in "ABCD":
            cands = self.tokenizer.answer_token_candidates(letter)
            tid = cands.get(self.convention)
            if tid is not None:
                logits[tid] = 10.0 if letter == pick else 1.0
        return logits


class TestDiscovery:
    @pytest.mark.parametrize("space_prefix,expected", [(False, "bare"), (True, "space-prefixed")])
    def test_single_convention_resolved_from_vocab(self, astro, bench, space_prefix, expected):
        tok = make_tokenizer(astro, space_prefix)
        model = OracleModel(tok, astro, expected)
        amap = discover_answer_tokens(model, tok, bench.dev[:2], bench.few_shot(2))
        assert amap.convention == expected
        assert len(amap.letter_ids()) == 4

    def test_probing_picks_the_live_convention(self, astro, bench):
        """A vocab exposing BOTH conventions: discovery must probe logits."""
        texts = []
        for f in astro.facts:
            texts.extend(f.statement(i) for i in range(4))
        texts.append("Question : Answer : Astrophysics and Cosmology Multiple "
                     "choice questions Solution set :")
        # space_prefix tokenizer whose corpus also contains text-initial
        # letters -> both bare and marker-prefixed forms exist for A-D
        texts.extend(["A B C D", "B C D A", "C D A B", "D A B C"])
        tok = WordTokenizer.train(texts, vocab_size=4000, space_prefix=True)
        for letter in "ABCD":
            assert set(tok.answer_token_candidates(letter)) == {"bare", "space-prefixed"}
        for live in ("bare", "space-prefixed"):
            model = OracleModel(tok, astro, live)
            amap = discover_answer_tokens(model, tok, bench.dev[:3], bench.few_shot(2))
            assert amap.convention == live


def make_dual_tokenizer(astro):
    """A vocab exposing BOTH letter conventions (forces logit probing)."""
    texts = []
    for f in astro.facts:
        texts.extend(f.statement(i) for i in range(4))
    texts.append("Question : Answer : Astrophysics and Cosmology Multiple "
                 "choice questions Solution set :")
    texts.extend(["A B C D", "B C D A", "C D A B", "D A B C"])
    return WordTokenizer.train(texts, vocab_size=4000, space_prefix=True)


class FixedTopModel:
    """Fake CausalLM whose top-10 next-token ids are fixed per call."""

    def __init__(self, vocab_size, top_ids):
        self.vocab_size = vocab_size
        self.top_ids = list(top_ids)

    def next_token_logits(self, tokens):
        logits = np.zeros(self.vocab_size, dtype=np.float32)
        logits[self.top_ids] = 10.0
        return logits


class TestDiscoveryFallbacks:
    def test_zero_hits_falls_back_to_bare(self, astro, bench):
        tok = make_dual_tokenizer(astro)
        candidate_ids = {
            tid
            for letter in "ABCD"
            for tid in tok.answer_token_candidates(letter).values()
        }
        # top-10 never contains any candidate id -> both conventions score 0
        top = [i for i in range(len(tok.vocab)) if i not in candidate_ids][:10]
        model = FixedTopModel(len(tok.vocab), top)
        amap = discover_answer_tokens(model, tok, bench.dev[:3], bench.few_shot(2))
        assert amap.convention == "bare"

    def test_tied_hits_prefer_bare(self, astro, bench):
        tok = make_dual_tokenizer(astro)
        # every letter's ids from BOTH conventions in the top-10 -> tie
        top = [
            tid
            for letter in "ABCD"
            for tid in tok.answer_token_candidates(letter).values()
        ]
        model = FixedTopModel(len(tok.vocab), top)
        amap = discover_answer_tokens(model, tok, bench.dev[:3], bench.few_shot(2))
        assert amap.convention == "bare"

    def test_probe_prompt_excludes_probed_question(self, astro, bench):
        """Regression: a probe drawn from the few-shot pool must not see
        itself as a solved example in its own prompt (answer leakage)."""
        import dataclasses

        tok = make_dual_tokenizer(astro)
        # force distinct correct letters so the leak is unambiguous
        few_shot = [
            dataclasses.replace(q, correct_idx=i)
            for i, q in enumerate(bench.few_shot(2))
        ]

        seen_prompts = []

        class RecordingModel(FixedTopModel):
            def next_token_logits(self, tokens):
                seen_prompts.append(tok.decode(np.asarray(tokens)))
                return super().next_token_logits(tokens)

        model = RecordingModel(len(tok.vocab), range(10))
        discover_answer_tokens(model, tok, few_shot, few_shot)
        assert len(seen_prompts) == len(few_shot)
        for prompt, probe in zip(seen_prompts, few_shot):
            lowered = prompt.lower()
            # one fewer solved example than the full shot pool...
            assert lowered.count("answer :") == len(few_shot)
            # ...and the probe's own answer is nowhere in its prompt
            assert f"answer : {probe.correct_letter.lower()}" not in lowered


class TestTokenPrediction:
    def test_oracle_scores_perfectly(self, astro, bench):
        tok = make_tokenizer(astro, False)
        model = OracleModel(tok, astro, "bare", accuracy=1.0)
        evaluator = TokenPredictionEvaluator(model, tok, bench.few_shot(2))
        runner = EvaluationRunner(bench)
        result = runner.run(evaluator.predict, "token_base", "oracle")
        assert result.accuracy == 1.0

    def test_partial_oracle_scores_between(self, astro, bench):
        tok = make_tokenizer(astro, False)
        model = OracleModel(tok, astro, "bare", accuracy=0.5, seed=3)
        evaluator = TokenPredictionEvaluator(model, tok, bench.few_shot(2))
        runner = EvaluationRunner(bench)
        result = runner.run(evaluator.predict, "token_base", "half-oracle")
        # 0.5 oracle + chance on the rest ~= 0.625
        assert 0.4 < result.accuracy < 0.85

    def test_per_topic_breakdown_partitions(self, astro, bench):
        tok = make_tokenizer(astro, False)
        model = OracleModel(tok, astro, "bare")
        evaluator = TokenPredictionEvaluator(model, tok, bench.few_shot(2))
        result = EvaluationRunner(bench).run(evaluator.predict, "m", "oracle")
        assert result.per_topic
        for acc in result.per_topic.values():
            assert acc == 1.0

    def test_max_questions_limits(self, astro, bench):
        tok = make_tokenizer(astro, False)
        model = OracleModel(tok, astro, "bare")
        evaluator = TokenPredictionEvaluator(model, tok, bench.few_shot(2))
        result = EvaluationRunner(bench, max_questions=7).run(
            evaluator.predict, "m", "oracle"
        )
        assert result.n_questions == 7


class TestPromptFormats:
    def test_next_token_prompt_structure(self, bench):
        prompt = format_next_token_prompt(bench.test[0], bench.few_shot(2))
        assert prompt.startswith("Astrophysics and Cosmology")
        assert prompt.count("Question :") == 3
        assert prompt.endswith("Answer :")
        # few-shot answers included, test answer absent
        assert prompt.count("Answer :") == 3
        for ex in bench.few_shot(2):
            assert f"Answer : {ex.correct_letter}" in prompt

    def test_paper_prompt_contains_contract(self, bench):
        q = bench.test[0]
        prompt = format_paper_full_instruct(q)
        assert "You are an expert in general astrophysics" in prompt
        assert '"ANSWER"' in prompt and '"EXPLANATION"' in prompt
        assert q.question in prompt
        for opt in q.options:
            assert opt in prompt

    def test_micro_chat_prompt(self, bench):
        prompt = format_micro_chat_prompt(bench.test[0])
        assert prompt.startswith("User :")
        assert prompt.endswith("Assistant :")


class TestFullInstructEvaluator:
    def test_generate_and_parse_with_trained_echo_model(self, astro, bench):
        """A tiny model overfit to echo 'the answer is X' for one question
        exercises the real generate->parse loop end to end."""
        tok = make_tokenizer(astro, False)
        q = bench.test[0]
        prompt = format_micro_chat_prompt(q)
        target = f"the answer is {q.correct_letter} ."
        model = TransformerLM(
            ModelConfig(vocab_size=len(tok.vocab), d_model=32, n_layers=2,
                        n_heads=4, max_seq_len=192),
            seed=0,
        )
        from repro.train import Trainer, TrainingConfig

        ids = tok.encode(prompt + " " + target) + [tok.vocab.eos_id]
        x = np.asarray([ids[:-1]])
        t = np.asarray([ids[1:]])
        trainer = Trainer(model, TrainingConfig(learning_rate=5e-3, total_steps=80))
        trainer.train(lambda: iter([(x, t, None)] * 1000))

        evaluator = FullInstructEvaluator(
            model, tok, eos_id=tok.vocab.eos_id
        )
        outcome = evaluator.answer(q)
        assert outcome.parsed
        assert outcome.answer_idx == q.correct_idx
        assert evaluator.records[0].response  # transcript retained


def make_real_model(tok, bench, seed=0):
    """A random-weight TransformerLM big enough for the two-shot prompts."""
    from repro.eval.prompts import format_next_token_prompt

    longest = max(
        len(tok.encode(format_next_token_prompt(q, bench.few_shot(2))))
        for q in bench.test
    )
    cfg = ModelConfig(
        vocab_size=len(tok.vocab), d_model=32, n_layers=2, n_heads=4,
        max_seq_len=longest + 8,
    )
    return TransformerLM(cfg, seed=seed)


class TestBatchedPrediction:
    def test_batched_matches_sequential_on_full_benchmark(self, astro, bench):
        """Acceptance: prefix-cached batched scoring is bit-identical to
        the per-question path over the whole micro benchmark."""
        tok = make_tokenizer(astro, False)
        model = make_real_model(tok, bench, seed=5)
        evaluator = TokenPredictionEvaluator(
            model, tok, bench.few_shot(2), batch_size=7
        )
        sequential = [evaluator.predict(q) for q in bench.test]
        batched = evaluator.predict_many(bench.test)
        assert batched == sequential
        # the shared scaffold really was prefilled (and only once)
        assert evaluator._prefix_cache is not None
        assert evaluator._prefix_cache.length > 0

    def test_batched_runner_matches_sequential_runner(self, astro, bench):
        tok = make_tokenizer(astro, False)
        model = make_real_model(tok, bench, seed=6)
        evaluator = TokenPredictionEvaluator(
            model, tok, bench.few_shot(2), batch_size=16
        )
        slow = EvaluationRunner(bench).run(evaluator.predict, "m", "lm")
        fast = BatchedEvaluationRunner(bench).run(evaluator, "m", "lm")
        assert fast.predictions == slow.predictions
        assert fast.accuracy == slow.accuracy
        assert fast.per_topic == slow.per_topic

    def test_predict_many_falls_back_without_batch_support(self, astro, bench):
        """OracleModel has no prefill/next_token_logits_many: the batched
        entry points must quietly use the per-question path."""
        tok = make_tokenizer(astro, False)
        model = OracleModel(tok, astro, "bare", accuracy=1.0)
        evaluator = TokenPredictionEvaluator(model, tok, bench.few_shot(2))
        result = BatchedEvaluationRunner(bench).run(evaluator, "m", "oracle")
        assert result.accuracy == 1.0

    def test_batched_runner_accepts_plain_predictor(self, astro, bench):
        tok = make_tokenizer(astro, False)
        model = OracleModel(tok, astro, "bare")
        evaluator = TokenPredictionEvaluator(model, tok, bench.few_shot(2))
        result = BatchedEvaluationRunner(bench, max_questions=5).run(
            evaluator.predict, "m", "oracle"
        )
        assert result.n_questions == 5

    def test_batched_runner_rejects_misaligned_batch(self, bench):
        def predict_many(questions):
            return [0]  # wrong length: one prediction for N questions

        runner = BatchedEvaluationRunner(bench)
        with pytest.raises(ValueError):
            runner.run(predict_many, "m", "broken")

    def test_empty_question_list(self, astro, bench):
        tok = make_tokenizer(astro, False)
        model = make_real_model(tok, bench)
        evaluator = TokenPredictionEvaluator(model, tok, bench.few_shot(2))
        assert evaluator.predict_many([]) == []


class TestFullInstructPrefixReuse:
    def test_reuse_matches_cold_path(self, astro, bench):
        """Scaffold-cached generation must not change any transcript."""
        tok = make_tokenizer(astro, False)
        model = make_real_model(tok, bench, seed=7)
        questions = bench.test[:4]
        cold = FullInstructEvaluator(
            model, tok, eos_id=tok.vocab.eos_id, reuse_prefix=False
        )
        warm = FullInstructEvaluator(
            model, tok, eos_id=tok.vocab.eos_id, reuse_prefix=True
        )
        cold_preds = cold.predict_many(questions)
        warm_preds = warm.predict_many(questions)
        assert warm_preds == cold_preds
        assert [r.response for r in warm.records] == [
            r.response for r in cold.records
        ]
        # the scaffold cache was built exactly once and then re-hit
        assert len(warm._prefix_store) == 1
        assert warm._prefix_store.hits == len(questions) - 1


class BoundaryMergingTokenizer:
    """Word tokenizer wrapper that merges chosen adjacent token pairs.

    Emulates a BPE whose learned merges cross the ``Answer :`` boundary
    (e.g. the trailing few-shot answer letter fusing with the next
    question's first word, or ``:`` fusing with the answer letter).  Such
    merges mean ``encode(scaffold) + encode(suffix)`` is NOT the encoding
    of the concatenated prompt, so the batched evaluator must detect the
    mismatch and fall back to the exact longest-common-prefix split.
    """

    def __init__(self, base, pairs):
        self.base = base
        self.vocab = base.vocab  # predict_many reads .vocab.pad_id
        self._pair_to_id = {}
        self._id_to_pair = {}
        next_id = len(base.vocab)
        for a, b in pairs:
            key = (base.vocab.strict_id_of(a), base.vocab.strict_id_of(b))
            self._pair_to_id[key] = next_id
            self._id_to_pair[next_id] = key
            next_id += 1

    @property
    def vocab_size(self):
        return len(self.base.vocab) + len(self._pair_to_id)

    def encode(self, text, **kwargs):
        ids = self.base.encode(text, **kwargs)
        out = []
        i = 0
        while i < len(ids):
            if i + 1 < len(ids) and (ids[i], ids[i + 1]) in self._pair_to_id:
                out.append(self._pair_to_id[(ids[i], ids[i + 1])])
                i += 2
            else:
                out.append(ids[i])
                i += 1
        return out

    def decode(self, ids, **kwargs):
        expanded = []
        for idx in ids:
            pair = self._id_to_pair.get(int(idx))
            if pair is not None:
                expanded.extend(pair)
            else:
                expanded.append(int(idx))
        return self.base.decode(expanded, **kwargs)

    def answer_token_candidates(self, letter):
        return self.base.answer_token_candidates(letter)

    def token_ids_for_answer_letter(self, letter):
        return self.base.token_ids_for_answer_letter(letter)


class TestBoundaryMergingDifferential:
    """predict_many must equal per-question predict even when answer
    tokens merge across the Answer:/question boundary."""

    def _evaluator(self, tok, bench, seed):
        few_shot = bench.few_shot(2)
        longest = max(
            len(tok.encode(format_next_token_prompt(q, few_shot)))
            for q in bench.test
        )
        model = TransformerLM(
            ModelConfig(
                vocab_size=tok.vocab_size, d_model=32, n_layers=2, n_heads=4,
                max_seq_len=longest + 8,
            ),
            seed=seed,
        )
        from repro.eval.token_pred import AnswerTokenMap

        answer_map = AnswerTokenMap(
            ids={l: tok.vocab.strict_id_of(l) for l in "ABCD"},
            convention="bare",
        )
        return TokenPredictionEvaluator(
            model, tok, few_shot, answer_map=answer_map, batch_size=5
        )

    def test_merge_across_scaffold_suffix_boundary(self, astro, bench):
        base = make_tokenizer(astro, False)
        last_letter = bench.few_shot(2)[-1].correct_letter
        # the final few-shot answer letter fuses with the next question's
        # first word — exactly the scaffold/suffix seam
        tok = BoundaryMergingTokenizer(base, [(last_letter, "Question")])
        evaluator = self._evaluator(tok, bench, seed=21)

        from repro.eval.prompts import (
            format_next_token_scaffold,
            format_next_token_suffix,
        )

        scaffold_ids = tok.encode(format_next_token_scaffold(bench.few_shot(2)))
        suffix_ids = tok.encode(format_next_token_suffix(bench.test[0]))
        full_ids = evaluator._prompt_ids(bench.test[0])
        assert scaffold_ids + suffix_ids != full_ids  # seam really merged

        sequential = [evaluator.predict(q) for q in bench.test]
        assert evaluator.predict_many(bench.test) == sequential

    def test_merge_of_colon_and_answer_letter(self, astro, bench):
        base = make_tokenizer(astro, False)
        # ":" fuses with every answer letter, changing the scaffold's
        # solved blocks (fast path stays valid: merges are seam-local)
        tok = BoundaryMergingTokenizer(base, [(":", l) for l in "ABCD"])
        evaluator = self._evaluator(tok, bench, seed=22)
        assert tok.encode("Answer : A") != base.encode("Answer : A")

        sequential = [evaluator.predict(q) for q in bench.test]
        assert evaluator.predict_many(bench.test) == sequential

    def test_space_prefix_convention_differential(self, astro, bench):
        # the built-in marker convention also breaks concat-stability at
        # the seam; the fallback split must stay bit-compatible
        tok = make_tokenizer(astro, True)
        model = make_real_model(tok, bench, seed=23)
        from repro.eval.token_pred import AnswerTokenMap

        answer_map = AnswerTokenMap(
            ids={l: tok.vocab.strict_id_of("Ġ" + l) for l in "ABCD"},
            convention="space-prefixed",
        )
        evaluator = TokenPredictionEvaluator(
            model, tok, bench.few_shot(2), answer_map=answer_map, batch_size=4
        )
        sequential = [evaluator.predict(q) for q in bench.test]
        assert evaluator.predict_many(bench.test) == sequential
