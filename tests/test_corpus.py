"""Corpus substrate tests: knowledge, papers, archive, OCR, summaries, datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    ArxivArchive,
    GeneralCorpusConfig,
    NougatOCR,
    OCRNoiseModel,
    build_abstract_dataset,
    build_aic_dataset,
    build_general_corpus,
    build_summary_dataset,
    clean_ocr_text,
    make_astro_knowledge,
    make_general_knowledge,
    with_qa_bridge,
)
from repro.corpus.generator import PaperGenerator
from repro.corpus.general import render_mcq_exercise
from repro.corpus.knowledge import ANSWER_LETTERS
from repro.corpus.ocr import word_error_rate
from repro.corpus.summarize import Summarizer, looks_informative, split_sentences


@pytest.fixture(scope="module")
def astro():
    return make_astro_knowledge(n_facts=80, seed=3)


@pytest.fixture(scope="module")
def general():
    return make_general_knowledge(n_facts=40, seed=3)


@pytest.fixture(scope="module")
def archive(astro):
    return ArxivArchive(astro, n_papers=60, seed=4)


class TestKnowledge:
    def test_fact_count_and_ids(self, astro):
        assert len(astro) == 80
        assert sorted(f.fact_id for f in astro.facts) == list(range(80))

    def test_deterministic(self):
        a = make_astro_knowledge(n_facts=30, seed=9)
        b = make_astro_knowledge(n_facts=30, seed=9)
        assert [f.correct for f in a.facts] == [f.correct for f in b.facts]

    def test_different_seeds_differ(self):
        a = make_astro_knowledge(n_facts=30, seed=1)
        b = make_astro_knowledge(n_facts=30, seed=2)
        assert [f.subject for f in a.facts] != [f.subject for f in b.facts] or [
            f.correct for f in a.facts
        ] != [f.correct for f in b.facts]

    def test_distractors_distinct_and_same_unit(self, astro):
        for f in astro.facts:
            options = f.all_options()
            assert len(set(options)) == 4
            unit = f.correct.split(" ", 1)[1]
            for d in f.distractors:
                assert d.split(" ", 1)[1] == unit

    def test_statement_variants_contain_value(self, astro):
        f = astro.facts[0]
        for v in range(4):
            assert f.correct in f.statement(v)
            assert f.subject in f.statement(v)

    def test_question_is_statement_prefix(self, astro):
        # the cloze design: question + correct value == statement variant 0
        f = astro.facts[0]
        assert f.statement(0).startswith(f.question())

    def test_option_shuffle_tracks_correct(self, astro):
        rng = np.random.default_rng(0)
        for f in astro.facts[:10]:
            options, idx = f.option_values_shuffled(rng)
            assert options[idx] == f.correct

    def test_too_many_facts_raises(self):
        with pytest.raises(ValueError):
            make_astro_knowledge(n_facts=10**6, subject_multiplier=1)

    def test_split_partitions(self, astro):
        a, b = astro.split(0.25, seed=5)
        assert len(a) + len(b) == len(astro)
        ids_a = {f.fact_id for f in a.facts}
        ids_b = {f.fact_id for f in b.facts}
        assert not ids_a & ids_b

    def test_topics_nonempty(self, astro, general):
        assert len(astro.topics) == 8
        assert len(general.topics) == 4
        for t in astro.topics:
            assert astro.facts_for_topic(t)


class TestPaperGenerator:
    def test_paper_sections_realize_facts(self, astro):
        gen = PaperGenerator(astro, seed=1)
        paper = gen.generate(0, 2005, 6)
        fact_by_id = {f.fact_id: f for f in astro.facts}
        for fid in paper.abstract_fact_ids:
            assert fact_by_id[fid].correct in paper.abstract
        assert paper.aic_fact_ids
        assert set(paper.abstract_fact_ids) <= set(paper.aic_fact_ids)
        assert set(paper.aic_fact_ids) <= set(paper.fact_ids)

    def test_single_topic_per_paper(self, astro):
        gen = PaperGenerator(astro, seed=1)
        paper = gen.generate(3, 2010, 2)
        fact_by_id = {f.fact_id: f for f in astro.facts}
        topics = {fact_by_id[fid].topic for fid in paper.fact_ids}
        assert topics == {paper.topic}

    def test_deterministic(self, astro):
        g1 = PaperGenerator(astro, seed=1).generate(5, 2000, 1)
        g2 = PaperGenerator(astro, seed=1).generate(5, 2000, 1)
        assert g1.abstract == g2.abstract
        assert g1.fact_ids == g2.fact_ids

    def test_full_text_longer_than_aic(self, astro):
        paper = PaperGenerator(astro, seed=1).generate(0, 2005, 6)
        assert len(paper.full_text.split()) > len(paper.aic_text.split())


class TestArchive:
    def test_cutoff_query(self, archive):
        early = archive.until(2000, 12)
        late = archive.until(2024, 1)
        assert 0 < len(early) < len(late) == len(archive)
        assert all((p.year, p.month) <= (2000, 12) for p in early)

    def test_dates_monotone(self, archive):
        dates = [(p.year, p.month) for p in archive.papers]
        assert dates == sorted(dates)

    def test_coverage_ordering(self, archive):
        ab = archive.coverage_fraction("abstract")
        aic = archive.coverage_fraction("aic")
        full = archive.coverage_fraction("full")
        assert ab <= aic <= full

    def test_bad_sections_raises(self, archive):
        with pytest.raises(ValueError):
            archive.fact_coverage("bogus")


class TestOCR:
    def test_clean_rejoins_hyphenation(self):
        assert clean_ocr_text("tem- perature") == "temperature"

    def test_clean_drops_glyph_soup(self):
        assert "##" not in clean_ocr_text("value ##@ here")

    def test_noise_rates_order(self):
        text = " ".join(["temperature measurement of the cluster"] * 50)
        nougat = NougatOCR(seed=1)
        legacy = NougatOCR.legacy_latex_pipeline(seed=1)
        wer_nougat = word_error_rate(text, nougat.transcribe(text))
        wer_legacy = word_error_rate(text, clean_ocr_text(legacy.corrupt(text)))
        assert wer_nougat < wer_legacy

    def test_corruption_deterministic(self):
        model = OCRNoiseModel(seed=3)
        text = "the quick brown fox jumps over the lazy dog" * 5
        assert model.corrupt(text, 1) == model.corrupt(text, 1)
        assert model.corrupt(text, 1) != model.corrupt(text, 2)

    def test_wer_bounds(self):
        assert word_error_rate("a b c", "a b c") == 0.0
        assert word_error_rate("a b c", "") == 1.0
        assert word_error_rate("", "") == 0.0


class TestSummarizer:
    def test_keeps_facts_drops_filler(self, astro):
        paper = PaperGenerator(astro, seed=1).generate(0, 2005, 6)
        summary = Summarizer(seed=1).summarize(paper)
        fact_by_id = {f.fact_id: f for f in astro.facts}
        kept = sum(
            1 for fid in paper.fact_ids if fact_by_id[fid].correct in summary
        )
        assert kept >= len(paper.fact_ids) * 0.6

    def test_compression(self, astro):
        paper = PaperGenerator(astro, seed=1).generate(0, 2005, 6)
        ratio = Summarizer(seed=1).compression_ratio(paper)
        assert 0.1 < ratio < 0.95

    def test_split_sentences(self):
        assert split_sentences("a b . c d . ") == ["a b .", "c d ."]

    def test_looks_informative(self, astro):
        f = astro.facts[0]
        assert looks_informative(f.statement(0))
        assert not looks_informative(
            "further observations are required to constrain these findings ."
        )


class TestDatasets:
    def test_budget_coverage_ordering(self, astro):
        """Summary beats AIC in fact coverage at a fixed word budget."""
        archive = ArxivArchive(astro, n_papers=120, seed=4)
        aic = build_aic_dataset(archive)
        summary = build_summary_dataset(archive)
        budget = 10000
        assert (
            summary.truncate_words(budget).coverage
            >= aic.truncate_words(budget).coverage
        )

    def test_abstract_subset_of_aic_coverage(self, archive):
        ab = build_abstract_dataset(archive)
        aic = build_aic_dataset(archive)
        assert ab.fact_ids <= aic.fact_ids

    def test_truncate_respects_budget(self, archive):
        aic = build_aic_dataset(archive)
        t = aic.truncate_words(2000)
        assert t.word_count <= 2000 + 400  # one doc tolerance
        assert len(t) < len(aic)

    def test_qa_bridge_appends_quizzes(self, astro, archive):
        aic = build_aic_dataset(archive)
        bridged = with_qa_bridge(aic, astro, fraction=1.0, seed=0)
        assert any("Answer :" in d for d in bridged.documents)
        assert bridged.coverage == aic.coverage

    def test_qa_bridge_zero_noop(self, astro, archive):
        aic = build_aic_dataset(archive)
        bridged = with_qa_bridge(aic, astro, fraction=0.0, seed=0)
        assert bridged.documents == aic.documents

    def test_qa_bridge_validates_fraction(self, astro, archive):
        aic = build_aic_dataset(archive)
        with pytest.raises(ValueError):
            with_qa_bridge(aic, astro, fraction=1.5)


class TestGeneralCorpus:
    def test_mcq_exercise_format(self, general):
        rng = np.random.default_rng(0)
        text = render_mcq_exercise(general.facts[0], rng)
        lines = text.split("\n")
        assert lines[0].startswith("Question :")
        for letter, line in zip(ANSWER_LETTERS, lines[1:5]):
            assert line.startswith(f"{letter} :")
        assert lines[5].startswith("Answer :")
        assert lines[5].split(" : ")[1] in ANSWER_LETTERS

    def test_exercise_answer_marks_correct_option(self, general):
        rng = np.random.default_rng(0)
        f = general.facts[0]
        for _ in range(10):
            text = render_mcq_exercise(f, rng)
            lines = text.split("\n")
            answer = lines[5].split(" : ")[1]
            option_line = lines[1 + ANSWER_LETTERS.index(answer)]
            assert option_line.endswith(f.correct)

    def test_corpus_includes_astro_fraction(self, general, astro):
        cfg = GeneralCorpusConfig(astro_coverage=0.5, seed=1)
        docs = build_general_corpus(general, astro, cfg)
        astro_subjects = {f.subject for f in astro.facts}
        hits = sum(1 for d in docs if any(s in d for s in astro_subjects))
        assert hits > 0

    def test_zero_astro_coverage(self, general, astro):
        cfg = GeneralCorpusConfig(astro_coverage=0.0, seed=1)
        docs = build_general_corpus(general, astro, cfg)
        astro_values = {f.correct for f in astro.facts}
        # value strings may coincide with general values; check subjects
        astro_subjects = {f.subject for f in astro.facts}
        assert not any(any(s in d for s in astro_subjects) for d in docs)

    def test_deterministic(self, general, astro):
        cfg = GeneralCorpusConfig(seed=2)
        assert build_general_corpus(general, astro, cfg) == build_general_corpus(
            general, astro, cfg
        )
