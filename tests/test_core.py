"""Core orchestration tests: zoo, world, scorecards, cost report."""

import pytest

from repro.core import (
    Arrow,
    CostReport,
    MICRO_ZOO,
    ScoreCard,
    TableOne,
    arrow_for,
    get_entry,
    paper_cost_accounting,
    zoo_entries,
)
from repro.core.scorecards import METHODS
from repro.core.world import MicroWorld, WorldConfig


class TestZoo:
    def test_eight_entries_in_paper_order(self):
        entries = zoo_entries()
        assert len(entries) == 8
        assert entries[0].name == "LLaMA-2-7B"
        assert entries[-1].name == "AstroLLaMA-2-70B-AIC"

    def test_native_vs_specialized_partition(self):
        natives = [e for e in zoo_entries() if e.is_native]
        assert {e.name for e in natives} == {
            "LLaMA-2-7B",
            "LLaMA-3-8B",
            "LLaMA-2-70B",
        }

    def test_base_name_resolution(self):
        assert get_entry("AstroLLaMA-2-7B-AIC").base_name == "LLaMA-2-7B"
        assert get_entry("AstroLLaMA-3-8B-Summary").base_name == "LLaMA-3-8B"
        assert get_entry("AstroLLaMA-2-70B-AIC").base_name == "LLaMA-2-70B"

    def test_only_abstract_model_uses_lora(self):
        lora = [e.name for e in zoo_entries() if e.cpt_lora]
        assert lora == ["AstroLLaMA-2-7B-Abstract"]

    def test_family_conventions_differ(self):
        assert not get_entry("LLaMA-2-7B").family.space_prefix_tokens
        assert get_entry("LLaMA-3-8B").family.space_prefix_tokens

    def test_unknown_entry(self):
        with pytest.raises(KeyError):
            get_entry("GPT-5")

    def test_paper_scores_recorded(self):
        entry = get_entry("AstroLLaMA-2-70B-AIC")
        assert entry.paper_token_base == 76.0
        # lint: disable=R4 (stored paper literal; same double on both sides)
        assert entry.paper_full_instruct == 64.7


class TestWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return MicroWorld.build_test(seed=0)

    def test_components_present(self, world):
        assert len(world.astro) > 0
        assert len(world.general) > 0
        assert len(world.archive) > 0
        assert len(world.benchmark) > 0
        assert set(world.tokenizers) == {"llama-2", "llama-3"}

    def test_tokenizer_conventions(self, world):
        assert not world.tokenizer_for("llama-2").space_prefix
        assert world.tokenizer_for("llama-3").space_prefix
        with pytest.raises(KeyError):
            world.tokenizer_for("mistral")

    def test_vocab_covers_benchmark(self, world):
        """Every benchmark question must tokenize without <unk>."""
        for family in ("llama-2", "llama-3"):
            tok = world.tokenizer_for(family)
            unk = tok.vocab.unk_id
            for q in world.benchmark.questions:
                text = f"Question : {q.question}\n{q.option_block()}\nAnswer :"
                assert unk not in tok.encode(text), (family, q.question)

    def test_vocab_covers_corpus_datasets(self, world):
        from repro.corpus.datasets import build_aic_dataset, build_summary_dataset

        tok = world.tokenizer_for("llama-2")
        unk = tok.vocab.unk_id
        for builder in (build_aic_dataset, build_summary_dataset):
            dataset = builder(world.archive)
            bad = sum(unk in tok.encode(d) for d in dataset.documents)
            assert bad == 0, f"{dataset.name}: {bad} docs with unknown tokens"

    def test_coverage_subset_semantics(self, world):
        small = set(world.covered_fact_ids(0.3, stream="llama-2"))
        large = set(world.covered_fact_ids(0.6, stream="llama-2"))
        assert small <= large
        assert len(large) == round(0.6 * len(world.astro))

    def test_coverage_validation(self, world):
        with pytest.raises(ValueError):
            world.covered_fact_ids(1.5)

    def test_deterministic_rebuild(self):
        a = MicroWorld.build_test(seed=3)
        b = MicroWorld.build_test(seed=3)
        assert [f.correct for f in a.astro.facts] == [
            f.correct for f in b.astro.facts
        ]
        assert a.benchmark.questions[0] == b.benchmark.questions[0]


class TestScorecards:
    def _table(self, scores):
        table = TableOne()
        for name, s in scores.items():
            table.add(ScoreCard(entry=get_entry(name), scores=s))
        return table

    def test_arrow_for(self):
        assert arrow_for(50.0, 45.0) == Arrow.UP
        assert arrow_for(40.0, 45.0) == Arrow.DOWN
        assert arrow_for(45.5, 45.0) == Arrow.SIMILAR

    def test_native_rows_carry_no_arrow(self):
        table = self._table(
            {"LLaMA-2-7B": {m: 50.0 for m in METHODS}}
        )
        assert table.arrow("LLaMA-2-7B", "token_base") == Arrow.NONE

    def test_arrow_relative_to_baseline(self):
        table = self._table(
            {
                "LLaMA-2-70B": {m: 70.0 for m in METHODS},
                "AstroLLaMA-2-70B-AIC": {m: 76.0 for m in METHODS},
            }
        )
        assert table.arrow("AstroLLaMA-2-70B-AIC", "token_base") == Arrow.UP

    def test_missing_baseline_no_arrow(self):
        table = self._table(
            {"AstroLLaMA-2-70B-AIC": {m: 76.0 for m in METHODS}}
        )
        assert table.arrow("AstroLLaMA-2-70B-AIC", "token_base") == Arrow.NONE

    def test_render_contains_all_added_models(self):
        table = self._table(
            {
                "LLaMA-2-70B": {m: 70.0 for m in METHODS},
                "AstroLLaMA-2-70B-AIC": {m: 76.0 for m in METHODS},
            }
        )
        art = table.render()
        assert "LLaMA-2-70B" in art and "AstroLLaMA-2-70B-AIC" in art

    def test_shape_checks_skip_missing_rows(self):
        table = self._table({"LLaMA-2-7B": {m: 50.0 for m in METHODS}})
        # insufficient rows -> no checks claiming success spuriously
        assert "70b_cpt_improves_base_token" not in table.shape_checks()


class TestCostReport:
    def test_report_ratios(self):
        report = paper_cost_accounting()
        for key in report.estimates:
            assert 0.5 <= report.ratio(key) <= 2.0

    def test_render_has_all_rows(self):
        text = paper_cost_accounting().render()
        for key in ("cpt_8b", "cpt_70b", "sft_8b", "sft_70b", "inference_70b"):
            assert key in text
