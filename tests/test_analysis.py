"""Analysis tests: table rendering, figure data, experiment reports."""

import pytest

from repro.analysis import (
    ExperimentReport,
    Figure1Data,
    build_figure1,
    format_comparison,
    render_figure1_ascii,
    render_table_one_markdown,
    table_one_from_surrogate,
)
from repro.analysis.figures import SERIES_ORDER
from repro.core.scorecards import METHODS


@pytest.fixture(scope="module")
def table():
    return table_one_from_surrogate()


@pytest.fixture(scope="module")
def figure(table):
    return build_figure1(table)


class TestTableRendering:
    def test_all_rows_present(self, table):
        rows = table.rows()
        assert len(rows) == 8
        names = [r["model"] for r in rows]
        assert names[0] == "LLaMA-2-7B"

    def test_markdown_structure(self, table):
        md = render_table_one_markdown(table)
        lines = md.split("\n")
        assert lines[0].startswith("| Model |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + 8

    def test_markdown_contains_arrows(self, table):
        md = render_table_one_markdown(table)
        assert "↑" in md and "↓" in md and "⇒" in md

    def test_empty_cells_rendered_as_dash(self, table):
        md = render_table_one_markdown(table)
        abstract_row = [l for l in md.split("\n") if "Abstract" in l][0]
        assert "–" in abstract_row

    def test_plain_render_roundtrip_scores(self, table):
        text = table.render(show_paper=False)
        assert "76.0" in text  # the headline 70B score
        assert "44.3" in text


class TestFigureData:
    def test_points_for_all_models(self, figure):
        assert len(figure.points) == 8
        for methods in figure.points.values():
            assert set(methods) == set(METHODS)

    def test_series_grouping(self, figure):
        assert set(figure.series) == set(SERIES_ORDER)
        assert len(figure.series[SERIES_ORDER[0]]) == 3  # 7B series
        assert len(figure.series[SERIES_ORDER[1]]) == 3  # 8B series
        assert len(figure.series[SERIES_ORDER[2]]) == 2  # 70B series

    def test_score_range_spans_data(self, figure):
        lo, hi = figure.score_range()
        assert lo <= 41.4 and hi >= 76.0

    def test_ascii_contains_legend_and_symbols(self, figure):
        art = render_figure1_ascii(figure)
        assert "legend" in art
        for symbol in ("o", "x", "*", "|"):
            assert symbol in art

    def test_empty_figure_handles_missing_series(self):
        fig = Figure1Data(
            points={"LLaMA-2-7B": {m: 50.0 for m in METHODS}},
            baselines={SERIES_ORDER[0]: 50.0},
            series={SERIES_ORDER[0]: ["LLaMA-2-7B"]},
        )
        art = render_figure1_ascii(fig)
        assert "LLaMA-2-7B" in art


class TestReports:
    def test_format_comparison(self):
        line = format_comparison("x", 50.0, 48.5)
        assert "paper 50.0%" in line and "measured 48.5%" in line and "-1.5" in line

    def test_format_comparison_missing(self):
        assert "–" in format_comparison("x", None, 48.5)

    def test_report_render_and_delta(self):
        report = ExperimentReport("T1", "Table I")
        report.add("a", 76.0, 74.0)
        report.add("b", 44.3, None)
        report.note("micro scale")
        text = report.render()
        assert "T1: Table I" in text and "note: micro scale" in text
        assert report.max_abs_delta() == pytest.approx(2.0)

    def test_empty_report_delta(self):
        assert ExperimentReport("x", "y").max_abs_delta() == 0.0
