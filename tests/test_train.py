"""Training framework tests: optimizer, schedules, packing, trainer, CPT, SFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import ModelConfig, TransformerLM
from repro.model.precision import bf16_round
from repro.train import (
    AdamW,
    ChatTemplate,
    ContinualPretrainer,
    CosineSchedule,
    CPTConfig,
    PackedDataset,
    SFTConfig,
    SFTExample,
    SGD,
    SupervisedFineTuner,
    Trainer,
    TrainingConfig,
    clip_grad_norm,
    corpus_perplexity,
    ema,
    make_schedule,
    pack_documents,
    pad_examples,
)
from repro.tokenizer import WordTokenizer


def tiny_model(vocab=32, seed=0):
    return TransformerLM(
        ModelConfig(vocab_size=vocab, d_model=16, n_layers=1, n_heads=2, max_seq_len=32),
        seed=seed,
    )


class TestOptimizers:
    def test_adamw_reduces_quadratic(self):
        params = {"w": np.array([5.0, -3.0], dtype=np.float32)}
        grads = {"w": np.zeros(2, dtype=np.float32)}
        opt = AdamW(params, grads)
        for _ in range(200):
            grads["w"][...] = 2 * params["w"]
            opt.step(0.1)
        assert np.abs(params["w"]).max() < 0.1

    def test_sgd_momentum(self):
        params = {"w": np.array([1.0], dtype=np.float32)}
        grads = {"w": np.array([1.0], dtype=np.float32)}
        opt = SGD(params, grads, momentum=0.9)
        opt.step(0.1)
        opt.step(0.1)
        # second step is larger due to accumulated velocity
        assert params["w"][0] < 1.0 - 0.1 - 0.1

    def test_weight_decay_skips_1d(self):
        params = {
            "w": np.ones((2, 2), dtype=np.float32),
            "gain": np.ones(2, dtype=np.float32),
        }
        grads = {k: np.zeros_like(v) for k, v in params.items()}
        opt = AdamW(params, grads, weight_decay=0.1)
        opt.step(0.5)
        assert params["w"][0, 0] < 1.0  # decayed
        assert params["gain"][0] == pytest.approx(1.0)  # not decayed

    def test_mismatched_keys_raise(self):
        with pytest.raises(KeyError):
            AdamW({"a": np.zeros(1)}, {"b": np.zeros(1)})

    def test_clip_grad_norm(self):
        grads = {"g": np.array([3.0, 4.0], dtype=np.float32)}
        norm = clip_grad_norm(grads, 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(grads["g"]) == pytest.approx(1.0, rel=1e-5)

    def test_clip_noop_under_limit(self):
        grads = {"g": np.array([0.3, 0.4], dtype=np.float32)}
        clip_grad_norm(grads, 1.0)
        assert np.linalg.norm(grads["g"]) == pytest.approx(0.5, rel=1e-6)


class TestSchedules:
    def test_cosine_warmup_and_decay(self):
        s = CosineSchedule(peak_lr=1.0, total_steps=100, warmup_ratio=0.1)
        assert s.lr(0) == pytest.approx(0.1)
        assert s.lr(9) == pytest.approx(1.0)
        assert s.lr(99) < 0.01

    def test_cosine_monotone_decay_after_warmup(self):
        s = CosineSchedule(peak_lr=1.0, total_steps=50, warmup_ratio=0.0)
        lrs = [s.lr(i) for i in range(50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_min_lr_floor(self):
        s = CosineSchedule(peak_lr=1.0, total_steps=10, warmup_ratio=0.0, min_lr=0.1)
        assert s.lr(9) >= 0.1

    def test_factory(self):
        for name in ("cosine", "linear", "constant"):
            s = make_schedule(name, 1e-3, 100)
            assert s.lr(50) > 0
        with pytest.raises(ValueError):
            make_schedule("bogus", 1e-3, 100)

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=0, max_value=499))
    @settings(max_examples=50, deadline=None)
    def test_cosine_lr_bounded(self, total, step):
        s = CosineSchedule(peak_lr=1.0, total_steps=total, warmup_ratio=0.03)
        assert 0.0 <= s.lr(step % total) <= 1.0 + 1e-9


class TestPacking:
    def test_pack_shapes(self):
        docs = [[1, 2, 3], [4, 5], [6, 7, 8, 9]]
        windows = pack_documents(docs, seq_len=4, eos_id=0, drop_last=False)
        assert windows.shape[1] == 5
        # stream: 1 2 3 0 4 5 0 6 7 8 9 0 -> 12 tokens -> 2 windows + pad
        assert windows.shape[0] >= 2

    def test_eos_separates_documents(self):
        docs = [[1, 2], [3, 4]]
        windows = pack_documents(docs, seq_len=5, eos_id=0, drop_last=False)
        flat = windows.reshape(-1).tolist()
        assert flat[:6] == [1, 2, 0, 3, 4, 0]

    def test_drop_last(self):
        docs = [[1, 2, 3]]
        assert pack_documents(docs, 10, 0, drop_last=True).shape[0] == 0
        assert pack_documents(docs, 10, 0, drop_last=False).shape[0] == 1

    def test_every_token_preserved_when_not_dropping(self):
        docs = [[i] * 7 for i in range(1, 6)]
        windows = pack_documents(docs, 8, 0, drop_last=False)
        flat = windows.reshape(-1).tolist()
        for i in range(1, 6):
            assert flat.count(i) == 7

    def test_dataset_epoch_reshuffles(self):
        windows = np.arange(80).reshape(20, 4)
        ds = PackedDataset(windows, batch_size=4, seed=1)
        first = [b[0].tolist() for b in ds.batches()]
        second = [b[0].tolist() for b in ds.batches()]
        assert first != second  # different epoch order

    def test_dataset_deterministic_given_seed(self):
        windows = np.arange(80).reshape(20, 4)
        a = PackedDataset(windows, batch_size=4, seed=7)
        b = PackedDataset(windows, batch_size=4, seed=7)
        fa = [x.tolist() for x, _ in a.batches()]
        fb = [x.tolist() for x, _ in b.batches()]
        assert fa == fb


class TestPadExamples:
    def test_mask_covers_response_only(self):
        batch = pad_examples([([1, 2, 3], [4, 5])], pad_id=0)
        # seq = 1 2 3 4 5; inputs = 1 2 3 4; targets = 2 3 4 5
        assert batch.inputs.tolist() == [[1, 2, 3, 4]]
        assert batch.targets.tolist() == [[2, 3, 4, 5]]
        # loss only where target is the response (4 at pos 2, 5 at pos 3)
        assert batch.loss_mask.tolist() == [[0.0, 0.0, 1.0, 1.0]]

    def test_padding_is_masked(self):
        batch = pad_examples([([1], [2]), ([1, 2, 3], [4, 5, 6])], pad_id=0)
        assert batch.inputs.shape == (2, 5)
        assert batch.loss_mask[0, 2:].sum() == 0  # padded tail of short example

    def test_truncation(self):
        batch = pad_examples([(list(range(1, 30)), [30, 31])], pad_id=0, max_len=10)
        assert batch.inputs.shape[1] == 9

    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(1, 20), min_size=1, max_size=8),
                st.lists(st.integers(1, 20), min_size=1, max_size=8),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mask_token_count_matches_responses(self, examples):
        batch = pad_examples(examples, pad_id=0)
        expected = sum(len(r) for _, r in examples)
        assert int(batch.loss_mask.sum()) == expected


class TestTrainer:
    def _stream(self, vocab=32):
        rng = np.random.default_rng(0)
        def make_batches():
            for _ in range(8):
                x = rng.integers(1, vocab, size=(4, 8))
                yield x, x, None
        return make_batches

    def test_runs_requested_steps(self):
        model = tiny_model()
        trainer = Trainer(model, TrainingConfig(learning_rate=1e-3, total_steps=5))
        hist = trainer.train(self._stream())
        assert hist.steps == 5
        assert len(hist.losses) == 5

    def test_restarts_exhausted_stream(self):
        model = tiny_model()
        trainer = Trainer(model, TrainingConfig(learning_rate=1e-3, total_steps=20))
        hist = trainer.train(self._stream())  # stream has only 8 batches
        assert hist.steps == 20

    def test_grad_accum_equivalence(self):
        """grad_accum=2 on half-batches == one step on the full batch."""
        x = np.arange(16).reshape(2, 8) % 30 + 1
        t = (x + 1) % 30 + 1

        m1 = tiny_model(seed=3)
        tr1 = Trainer(
            m1, TrainingConfig(learning_rate=1e-3, total_steps=1, grad_accum=1, clip_norm=0)
        )
        tr1.train(lambda: iter([(x, t, None)]))

        m2 = tiny_model(seed=3)
        tr2 = Trainer(
            m2, TrainingConfig(learning_rate=1e-3, total_steps=1, grad_accum=2, clip_norm=0)
        )
        halves = [(x[:1], t[:1], None), (x[1:], t[1:], None)]
        tr2.train(lambda: iter(halves))

        p1 = m1.named_parameters()
        p2 = m2.named_parameters()
        for k in p1:
            np.testing.assert_allclose(p1[k], p2[k], rtol=1e-4, atol=1e-6)

    def test_bf16_rounding_applied(self):
        model = tiny_model()
        trainer = Trainer(
            model, TrainingConfig(learning_rate=1e-3, total_steps=2, bf16=True)
        )
        trainer.train(self._stream())
        for p in model.named_parameters().values():
            np.testing.assert_array_equal(p, bf16_round(p))

    def test_loss_decreases_on_fixed_batch(self):
        model = tiny_model()
        x = np.tile(np.arange(1, 9), (4, 1))
        trainer = Trainer(model, TrainingConfig(learning_rate=5e-3, total_steps=60))
        hist = trainer.train(lambda: iter([(x, x, None)] * 1000))
        assert hist.losses[-1] < hist.losses[0] * 0.5


class TestCPT:
    def test_runs_one_epoch(self):
        texts = ["the star is bright and hot"] * 30
        tok = WordTokenizer.train(texts, vocab_size=64)
        docs = [tok.encode(t) for t in texts]
        model = TransformerLM(
            ModelConfig(vocab_size=tok.vocab_size, d_model=16, n_layers=1, n_heads=2, max_seq_len=16)
        )
        cpt = ContinualPretrainer(
            CPTConfig(learning_rate=1e-3, total_batch_size=4, max_token_length=16, epochs=1, bf16=False)
        )
        result = cpt.run(model, docs, tok.vocab.eos_id)
        assert result.steps >= 1
        assert result.dataset_tokens > 0

    def test_empty_corpus_raises(self):
        model = tiny_model()
        cpt = ContinualPretrainer(CPTConfig(total_batch_size=4, max_token_length=8))
        with pytest.raises(ValueError):
            cpt.run(model, [], eos_id=2)

    def test_paper_presets(self):
        assert CPTConfig.paper_8b().total_batch_size == 96
        assert CPTConfig.paper_8b().max_token_length == 512
        assert CPTConfig.paper_70b().total_batch_size == 160
        assert CPTConfig.paper_70b().max_token_length == 2048
        assert CPTConfig.paper_70b().learning_rate == pytest.approx(2e-5)

    def test_grad_accum_factorization(self):
        cfg = CPTConfig(total_batch_size=96, microbatch_size=24)
        assert cfg.grad_accum == 4
        with pytest.raises(ValueError):
            CPTConfig(total_batch_size=96, microbatch_size=36)


class TestSFT:
    def _tuner_and_examples(self):
        examples = [
            SFTExample(user="hello there", assistant="general reply", source="ultrachat"),
            SFTExample(user="the mass of x is", assistant="the answer is A", source="astro-qa"),
        ] * 6
        texts = [ChatTemplate().render_full(e.user, e.assistant) for e in examples]
        tok = WordTokenizer.train(texts, vocab_size=128)
        tuner = SupervisedFineTuner(
            tok,
            pad_id=tok.vocab.pad_id,
            eos_id=tok.vocab.eos_id,
            config=SFTConfig(
                learning_rate=1e-3, total_batch_size=4, max_token_length=32, epochs=1, bf16=False
            ),
        )
        return tok, tuner, examples

    def test_tokenize_example_appends_eos(self):
        tok, tuner, examples = self._tuner_and_examples()
        prompt, response = tuner.tokenize_example(examples[0])
        assert response[-1] == tok.vocab.eos_id
        assert prompt[0] == tok.vocab.bos_id

    def test_run_produces_history(self):
        tok, tuner, examples = self._tuner_and_examples()
        model = TransformerLM(
            ModelConfig(vocab_size=tok.vocab_size, d_model=16, n_layers=1, n_heads=2, max_seq_len=64)
        )
        result = tuner.run(model, examples)
        assert result.steps >= 1
        assert result.examples == len(examples)
        assert result.response_tokens > 0

    def test_no_examples_raises(self):
        tok, tuner, _ = self._tuner_and_examples()
        model = TransformerLM(
            ModelConfig(vocab_size=tok.vocab_size, d_model=16, n_layers=1, n_heads=2, max_seq_len=64)
        )
        with pytest.raises(ValueError):
            tuner.run(model, [])

    def test_paper_preset(self):
        cfg = SFTConfig.paper()
        assert cfg.learning_rate == pytest.approx(3e-7)
        assert cfg.total_batch_size == 48
        assert cfg.epochs == 1.0

    def test_chat_template_rendering(self):
        t = ChatTemplate()
        prompt = t.render_prompt("question text", system="system text")
        assert prompt.startswith("system text")
        assert prompt.endswith("Assistant :")
        assert "User : question text" in prompt


class TestMetrics:
    def test_ema_smooths(self):
        values = [0.0, 1.0] * 10
        smoothed = ema(values, alpha=0.2)
        assert len(smoothed) == 20
        assert 0.2 < smoothed[-1] < 0.8

    def test_ema_validates_alpha(self):
        with pytest.raises(ValueError):
            ema([1.0], alpha=0.0)

    def test_perplexity_positive_and_bounded(self):
        texts = ["a b c d"] * 10
        tok = WordTokenizer.train(texts, vocab_size=32)
        docs = [tok.encode(t) for t in texts]
        model = TransformerLM(
            ModelConfig(vocab_size=tok.vocab_size, d_model=16, n_layers=1, n_heads=2, max_seq_len=8)
        )
        ppl = corpus_perplexity(model, docs, tok.vocab.eos_id, seq_len=8)
        assert 1.0 < ppl < tok.vocab_size * 2
