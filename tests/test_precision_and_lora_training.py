"""Training-dynamics tests: bf16 effects and LoRA training behaviour.

These close the loop on two recipe details the paper relies on: bf16
training (the quantization must not break convergence) and LoRA CPT (the
AstroLLaMA-2-7B-Abstract recipe: adapters learn, base stays frozen).
"""

import numpy as np
import pytest

from repro.model import LoRAConfig, ModelConfig, TransformerLM, apply_lora
from repro.train import Trainer, TrainingConfig


def make_batch(vocab, seed=0, batch=4, seq=12):
    rng = np.random.default_rng(seed)
    x = rng.integers(1, vocab, size=(batch, seq))
    return x, np.roll(x, -1, axis=1)


class TestBF16Training:
    def test_bf16_training_still_converges(self):
        """Loss under bf16 rounding tracks fp32 loss closely on a
        memorization task."""
        x, t = make_batch(32)
        losses = {}
        for bf16 in (False, True):
            model = TransformerLM(
                ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=16),
                seed=1,
            )
            trainer = Trainer(
                model,
                TrainingConfig(learning_rate=3e-3, total_steps=40, bf16=bf16),
            )
            hist = trainer.train(lambda: iter([(x, t, None)] * 1000))
            losses[bf16] = hist.losses[-1]
        assert losses[True] < losses[False] * 1.5 + 0.2
        # and bf16 genuinely quantized the weights (they differ from fp32 run)
        assert losses[True] != losses[False]

    def test_tiny_updates_can_vanish_under_bf16(self):
        """bf16's 8-bit mantissa absorbs updates smaller than ~2^-8 * w —
        the characteristic excess loss floor of low-precision training."""
        from repro.model.precision import bf16_round

        w = np.float32(1.0)
        tiny_update = np.float32(1e-5)
        assert bf16_round(np.array([w + tiny_update]))[0] == w


class TestLoRATraining:
    def _setup(self):
        model = TransformerLM(
            ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2, max_seq_len=16),
            seed=2,
        )
        frozen_before = {
            k: v.copy()
            for k, v in model.named_parameters().items()
        }
        adapters = apply_lora(model, LoRAConfig(rank=4, alpha=8.0), seed=0)
        return model, adapters, frozen_before

    def test_lora_training_reduces_loss(self):
        model, adapters, _ = self._setup()
        x, t = make_batch(32, seed=5)
        trainer = Trainer(model, TrainingConfig(learning_rate=5e-3, total_steps=40))
        hist = trainer.train(lambda: iter([(x, t, None)] * 1000))
        assert hist.losses[-1] < hist.losses[0]

    def test_base_weights_frozen_during_lora(self):
        model, adapters, frozen_before = self._setup()
        x, t = make_batch(32, seed=5)
        trainer = Trainer(model, TrainingConfig(learning_rate=5e-3, total_steps=20))
        trainer.train(lambda: iter([(x, t, None)] * 1000))
        # the wrapped projections' base weights must be untouched
        for i, block in enumerate(model.blocks):
            for name in ("wq", "wv"):
                lora_layer = getattr(block.attn, name)
                key = f"block{i}.attn.{name}.weight"
                np.testing.assert_array_equal(
                    lora_layer.frozen_weight, frozen_before[key]
                )

    def test_adapters_actually_move(self):
        model, adapters, _ = self._setup()
        x, t = make_batch(32, seed=5)
        b_before = [a.params["lora_B"].copy() for a in adapters]
        trainer = Trainer(model, TrainingConfig(learning_rate=5e-3, total_steps=10))
        trainer.train(lambda: iter([(x, t, None)] * 1000))
        moved = any(
            not np.array_equal(b, a.params["lora_B"])
            for b, a in zip(b_before, adapters)
        )
        assert moved

    def test_lora_param_count_is_small(self):
        model, adapters, _ = self._setup()
        lora_params = sum(
            v.size for k, v in model.named_parameters().items() if "lora_" in k
        )
        # r=4 adapters on wq/wv of 2 layers: 2 layers * 2 proj * 2*(16*4)
        assert lora_params == 2 * 2 * 2 * 16 * 4
