"""HPC substrate tests: mesh, collectives, DDP invariants, schedules, cost."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import ModelConfig, TransformerLM
from repro.parallel import (
    A100_40GB,
    ClusterModel,
    Communicator,
    DataParallelTrainer,
    DDPConfig,
    DeviceMesh,
    PipelinedModel,
    RingCostModel,
    gpipe_schedule,
    one_f_one_b_schedule,
)
from repro.parallel.cluster import transformer_train_flops_per_token
from repro.train.optimizer import AdamW
from repro.train.schedule import make_schedule


class TestMesh:
    def test_world_size(self):
        mesh = DeviceMesh(2, 4)
        assert mesh.world_size == 8
        assert mesh.device(5).node == 1
        assert mesh.device(5).local_rank == 1

    def test_rank_out_of_range(self):
        with pytest.raises(IndexError):
            DeviceMesh(1, 2).device(2)

    def test_dp_pp_factorization(self):
        mesh = DeviceMesh(2, 4)
        dp_groups, pp_groups = mesh.dp_pp_groups(4, 2)
        assert len(dp_groups) == 2 and all(len(g) == 4 for g in dp_groups)
        assert len(pp_groups) == 4 and all(len(g) == 2 for g in pp_groups)
        # every rank appears exactly once per factorization
        assert sorted(r for g in dp_groups for r in g) == list(range(8))
        assert sorted(r for g in pp_groups for r in g) == list(range(8))

    def test_bad_factorization_raises(self):
        with pytest.raises(ValueError):
            DeviceMesh(1, 4).dp_pp_groups(3, 2)

    def test_cross_node_detection(self):
        mesh = DeviceMesh(2, 2)
        assert not mesh.is_cross_node(0, 1)
        assert mesh.is_cross_node(0, 2)


class TestCollectives:
    def setup_method(self):
        self.mesh = DeviceMesh(1, 4)
        self.comm = Communicator(self.mesh)

    def test_all_reduce_sum(self):
        bufs = [np.full(3, float(i)) for i in range(4)]
        out = self.comm.all_reduce(bufs, "sum")
        for o in out:
            np.testing.assert_array_equal(o, np.full(3, 6.0))

    def test_all_reduce_mean_max_min(self):
        bufs = [np.array([float(i)]) for i in range(4)]
        assert self.comm.all_reduce(bufs, "mean")[0][0] == 1.5
        assert self.comm.all_reduce(bufs, "max")[0][0] == 3.0
        assert self.comm.all_reduce(bufs, "min")[0][0] == 0.0

    def test_all_reduce_unknown_op(self):
        with pytest.raises(ValueError):
            self.comm.all_reduce([np.zeros(1)] * 4, "xor")

    def test_all_gather(self):
        bufs = [np.array([i, i]) for i in range(4)]
        out = self.comm.all_gather(bufs)
        assert out[0].tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert all(np.array_equal(o, out[0]) for o in out)

    def test_reduce_scatter_matches_manual(self):
        bufs = [np.arange(8, dtype=float) + i for i in range(4)]
        out = self.comm.reduce_scatter(bufs, "sum")
        full = np.sum(bufs, axis=0)
        for i, shard in enumerate(out):
            np.testing.assert_array_equal(shard, full[i * 2 : (i + 1) * 2])

    def test_reduce_scatter_divisibility(self):
        with pytest.raises(ValueError):
            self.comm.reduce_scatter([np.zeros(7)] * 4)

    def test_broadcast(self):
        out = self.comm.broadcast(np.array([42.0]), root=0)
        assert len(out) == 4 and all(o[0] == 42.0 for o in out)
        with pytest.raises(IndexError):
            self.comm.broadcast(np.zeros(1), root=9)

    def test_buffer_validation(self):
        with pytest.raises(ValueError):
            self.comm.all_reduce([np.zeros(2)] * 3)  # wrong count
        with pytest.raises(ValueError):
            self.comm.all_reduce([np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2)])

    def test_stats_accumulate(self):
        self.comm.all_reduce([np.zeros(4)] * 4)
        self.comm.barrier()
        assert self.comm.stats.calls == 2
        assert self.comm.stats.simulated_seconds > 0

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            Communicator(self.mesh, ranks=[0, 0, 1])


class TestRingCostModel:
    def test_all_reduce_scales_with_size(self):
        cm = RingCostModel()
        t2 = cm.all_reduce_time(1 << 20, 2, False)
        t8 = cm.all_reduce_time(1 << 20, 8, False)
        assert t8 > t2

    def test_cross_node_slower(self):
        cm = RingCostModel()
        assert cm.all_reduce_time(1 << 24, 4, True) > cm.all_reduce_time(
            1 << 24, 4, False
        )

    def test_single_rank_is_free(self):
        cm = RingCostModel()
        assert cm.all_reduce_time(1 << 20, 1, False) == 0.0

    def test_bandwidth_term_dominates_large_messages(self):
        cm = RingCostModel()
        small = cm.all_reduce_time(1024, 4, False)
        large = cm.all_reduce_time(1 << 30, 4, False)
        assert large > small * 50


class TestDDP:
    def _trainer(self, world=2, steps=3):
        mesh = DeviceMesh(1, world)
        cfg = ModelConfig(
            vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=16
        )
        return DataParallelTrainer(
            mesh, cfg, DDPConfig(learning_rate=1e-3, total_steps=steps), seed=0
        )

    def _batches(self, n, batch=4):
        rng = np.random.default_rng(0)
        for _ in range(n):
            x = rng.integers(1, 32, size=(batch, 8))
            yield x, (x + 1) % 31 + 1

    def test_replicas_stay_in_sync(self):
        trainer = self._trainer()
        trainer.train(self._batches(3))
        assert trainer.replicas_in_sync()

    def test_matches_single_process_training(self):
        """DDP over 2 ranks == serial training on the same global batches."""
        batches = list(self._batches(3))
        ddp = self._trainer(world=2)
        ddp.train(iter(batches))

        solo = TransformerLM(
            ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=16),
            seed=0,
        )
        opt = AdamW(solo.named_parameters(), solo.named_gradients(), betas=(0.9, 0.95))
        schedule = make_schedule("cosine", 1e-3, 3, 0.03)
        from repro.train.optimizer import clip_grad_norm

        for step, (x, t) in enumerate(batches):
            solo.zero_grad()
            # mean loss over the global batch = mean of per-shard means here
            # because shards are equal-sized
            solo.loss_and_backward(x, t)
            clip_grad_norm(solo.named_gradients(), 1.0)
            opt.step(schedule.lr(step))

        p_ddp = ddp.model.named_parameters()
        p_solo = solo.named_parameters()
        for k in p_solo:
            np.testing.assert_allclose(p_ddp[k], p_solo[k], rtol=1e-4, atol=1e-6)

    def test_indivisible_batch_raises(self):
        trainer = self._trainer(world=2)
        with pytest.raises(ValueError):
            trainer.train_step(np.ones((3, 8), dtype=np.int64), np.ones((3, 8), dtype=np.int64))

    def test_records_timing(self):
        trainer = self._trainer()
        result = trainer.train(self._batches(3))
        assert result.simulated_compute_seconds > 0
        assert result.simulated_comm_seconds > 0
        assert result.steps == 3


class TestPipelineSchedules:
    @pytest.mark.parametrize("maker", [gpipe_schedule, one_f_one_b_schedule])
    @pytest.mark.parametrize("stages,microbatches", [(2, 4), (4, 8), (3, 3), (1, 4)])
    def test_valid(self, maker, stages, microbatches):
        maker(stages, microbatches).validate()

    def test_gpipe_bubble_formula(self):
        # classic: bubble = (s-1)/(m+s-1) when fwd and bwd cost the same
        s = gpipe_schedule(4, 8)
        expected = (4 - 1) / (8 + 4 - 1)
        assert s.bubble_fraction(1.0, 1.0) == pytest.approx(expected, abs=1e-9)

    def test_1f1b_memory_advantage(self):
        g = gpipe_schedule(4, 16)
        f = one_f_one_b_schedule(4, 16)
        assert g.peak_in_flight() == 16
        assert f.peak_in_flight() == 4
        # same bubble with equal cost model
        assert f.bubble_fraction(1, 1) == pytest.approx(g.bubble_fraction(1, 1), abs=1e-9)

    def test_more_microbatches_shrink_bubble(self):
        b4 = one_f_one_b_schedule(4, 4).bubble_fraction()
        b32 = one_f_one_b_schedule(4, 32).bubble_fraction()
        assert b32 < b4

    def test_single_stage_no_bubble(self):
        assert gpipe_schedule(1, 8).bubble_fraction() == pytest.approx(0.0, abs=1e-9)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gpipe_schedule(0, 4)
        with pytest.raises(ValueError):
            one_f_one_b_schedule(2, 0)


class TestPipelinedModel:
    def test_matches_monolithic_gradients(self):
        cfg = ModelConfig(vocab_size=32, d_model=16, n_layers=4, n_heads=2, max_seq_len=16)
        mono = TransformerLM(cfg, seed=5)
        piped = TransformerLM(cfg, seed=5)
        pipe = PipelinedModel(piped, n_stages=2)

        rng = np.random.default_rng(0)
        x = rng.integers(1, 32, size=(4, 8))
        t = rng.integers(1, 32, size=(4, 8))

        mono.zero_grad()
        loss_mono = 0.0
        for xm, tm in zip(np.split(x, 4), np.split(t, 4)):
            logits = mono.forward(xm)
            loss, dl = mono.cross_entropy(logits, tm)
            mono.backward(dl / 4)
            loss_mono += loss / 4

        piped.zero_grad()
        loss_pipe = pipe.train_step(x, t, n_microbatches=4)
        assert loss_pipe == pytest.approx(loss_mono, rel=1e-5)

        g1, g2 = mono.named_gradients(), piped.named_gradients()
        for k in g1:
            np.testing.assert_allclose(g1[k], g2[k], rtol=1e-4, atol=1e-6)

    def test_stage_parameter_counts_sum(self):
        cfg = ModelConfig(vocab_size=32, d_model=16, n_layers=4, n_heads=2, max_seq_len=16)
        model = TransformerLM(cfg)
        pipe = PipelinedModel(model, n_stages=3)
        assert sum(pipe.stage_parameter_counts()) == model.num_parameters()

    def test_too_many_stages(self):
        cfg = ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2, max_seq_len=16)
        with pytest.raises(ValueError):
            PipelinedModel(TransformerLM(cfg), n_stages=3)


class TestClusterModel:
    def test_flops_rule(self):
        assert transformer_train_flops_per_token(1e9) == pytest.approx(6e9)
        with_attn = transformer_train_flops_per_token(1e9, 32, 4096, 2048)
        assert with_attn > 6e9

    def test_paper_cpt_figures(self):
        cm = ClusterModel()
        cpt8 = cm.estimate_cpt(8e9, 0.34e9).gpu_hours
        cpt70 = cm.estimate_cpt(70e9, 0.34e9).gpu_hours
        assert 16 <= cpt8 <= 64  # paper: 32
        assert 1000 <= cpt70 <= 4000  # paper: ~2000

    def test_paper_sft_figures(self):
        cm = ClusterModel()
        assert 6 <= cm.estimate_sft(8e9, 30356, 2048).gpu_hours <= 24  # paper: 12
        assert 50 <= cm.estimate_sft(70e9, 30356, 2048).gpu_hours <= 200  # paper: 100

    def test_paper_inference_figure(self):
        cm = ClusterModel()
        est = cm.estimate_inference(70e9, 4425, 600, 512)
        assert 32 <= est.gpu_hours <= 128  # paper: 64

    def test_multi_node_mfu_penalty(self):
        cm = ClusterModel()
        assert cm.training_mfu(8e9) > cm.training_mfu(70e9)
        assert cm.fits_single_node(8e9)
        assert not cm.fits_single_node(70e9)

    def test_min_training_gpus_monotone(self):
        cm = ClusterModel()
        assert cm.min_training_gpus(70e9) > cm.min_training_gpus(8e9)

    def test_wall_hours_consistent(self):
        cm = ClusterModel()
        est = cm.estimate_cpt(70e9, 0.34e9)
        assert est.wall_hours == pytest.approx(est.gpu_hours / est.gpus_used)
