"""Tests for ``repro.lint`` — the AST-based invariant checker.

Layout mirrors the acceptance contract: one minimal violating fixture
per rule (each triggers *exactly* that rule), clean counterparts that
must stay silent, suppression-comment behavior, a JSON-reporter golden,
CLI exit codes, and the "clean repo" gate asserting the checked-in tree
lints clean.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    LintConfig,
    Severity,
    all_rules,
    json_report,
    lint_source,
    run_lint,
    text_report,
)
from repro.lint.engine import PARSE_ERROR_RULE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MODEL_PATH = "src/repro/model/snippet.py"
PARALLEL_PATH = "src/repro/parallel/snippet.py"
EVAL_PATH = "src/repro/eval/snippet.py"
SERVE_PATH = "src/repro/serve/snippet.py"


def rules_fired(source, path=EVAL_PATH, config=None):
    return [f.rule for f in lint_source(textwrap.dedent(source), path, config)]


#: (rule, violating fixture, lint path) — each must fire exactly its rule
VIOLATIONS = {
    "R1-subscript-write": (
        "R1",
        """
        from repro.model.kv_cache import KVCache

        def corrupt(cache: KVCache):
            cache[0]["k"][:, :, 0, :] = 0.0
        """,
        MODEL_PATH,
    ),
    "R1-augassign-slot": (
        "R1",
        """
        def scale(pc):
            forked = pc.fork(batch_size=2)
            for layer in forked:
                layer["v"] += 1.0
        """,
        MODEL_PATH,
    ),
    "R1-extracted-tensor": (
        "R1",
        """
        def poke(layer_cache):
            k = layer_cache["k"]
            k[..., 0] = 9
        """,
        MODEL_PATH,
    ),
    "R1-out-kwarg": (
        "R1",
        """
        import numpy as np

        def exp_into(prefix_cache):
            kk = prefix_cache[0].get("k")
            np.exp(kk, out=kk)
        """,
        MODEL_PATH,
    ),
    "R2-rank-branch": (
        "R2",
        """
        def step(comm, rank):
            if rank == 0:
                comm.all_reduce([1])
        """,
        PARALLEL_PATH,
    ),
    "R2-rank-trip-count": (
        "R2",
        """
        def drain(comm, group_rank):
            for _ in range(group_rank):
                comm.broadcast(0)
        """,
        "src/repro/train/snippet.py",
    ),
    "R3-global-state": (
        "R3",
        """
        import numpy as np

        def sample():
            np.random.seed(0)
        """,
        EVAL_PATH,
    ),
    "R3-unseeded": (
        "R3",
        """
        import numpy as np

        def fresh():
            return np.random.default_rng()
        """,
        EVAL_PATH,
    ),
    "R4-inexact-literal": (
        "R4",
        """
        def check(score):
            return score == 64.7
        """,
        EVAL_PATH,
    ),
    "R4-division": (
        "R4",
        """
        def ratio(a, b, c):
            return a / b != c
        """,
        EVAL_PATH,
    ),
    "R5-phantom-export": (
        "R5",
        """
        __all__ = ["ghost"]
        """,
        EVAL_PATH,
    ),
    "R5-unlisted-def": (
        "R5",
        """
        __all__ = []

        def visible():
            pass
        """,
        EVAL_PATH,
    ),
    "R6-adhoc-raise": (
        "R6",
        """
        from repro.faults import TransientCollectiveError

        def all_reduce_with_chaos(buffers, step):
            raise TransientCollectiveError("all_reduce", step, 1)
        """,
        PARALLEL_PATH,
    ),
    "R6-bare-reraise-type": (
        "R6",
        """
        def preempt(step, world_rank):
            raise PreemptionError(step, world_rank)
        """,
        "src/repro/train/snippet.py",
    ),
    "R7-time-call": (
        "R7",
        """
        import time

        def step_duration(self):
            return time.monotonic() - self.started
        """,
        SERVE_PATH,
    ),
    "R7-aliased-import": (
        "R7",
        """
        import time as _t

        def now():
            return _t.perf_counter_ns()
        """,
        SERVE_PATH,
    ),
    "R7-from-import": (
        "R7",
        """
        from time import perf_counter
        """,
        SERVE_PATH,
    ),
    "R7-datetime-now": (
        "R7",
        """
        from datetime import datetime

        def stamp(event):
            return (datetime.now(), event)
        """,
        SERVE_PATH,
    ),
}

#: clean counterparts: the same constructs used the sanctioned way
CLEAN = {
    "R1-rebind": (
        """
        import numpy as np

        def extend(cache, k, v):
            kp = cache.get("k")
            if kp is not None:
                k = np.concatenate([kp, k], axis=2)
            cache["k"], cache["v"] = k, v
        """,
        MODEL_PATH,
    ),
    "R2-symmetric": (
        """
        def step(comm, n):
            for _ in range(n):
                comm.all_reduce([1])
        """,
        PARALLEL_PATH,
    ),
    "R2-outside-scope": (
        """
        def step(comm, rank):
            if rank == 0:
                comm.all_reduce([1])
        """,
        EVAL_PATH,
    ),
    "R3-seeded": (
        """
        import numpy as np

        def sample(seed):
            return np.random.default_rng(seed).normal()
        """,
        EVAL_PATH,
    ),
    "R4-dyadic-sentinel": (
        """
        def greedy(temperature, accuracy):
            return temperature == 0.0 and accuracy == 1.0
        """,
        EVAL_PATH,
    ),
    "R5-consistent": (
        """
        from os import path

        __all__ = ["path", "thing"]

        def thing():
            pass

        def _helper():
            pass
        """,
        EVAL_PATH,
    ),
    "R6-registry-itself": (
        """
        def on_step_start(self, step):
            for event in self._preemptions_at(step):
                raise PreemptionError(step, event.rank)
        """,
        "src/repro/faults/snippet.py",
    ),
    "R6-hook-dispatch": (
        """
        def _pre_op(self, op, buffers):
            factor = 1.0
            for hook in self._hooks:
                factor *= hook(op, self._op_counter)
            if not buffers:
                raise ValueError("empty collective")
            return factor
        """,
        PARALLEL_PATH,
    ),
    "R7-clock-adapter-exempt": (
        """
        import time

        class WallClock:
            def now(self):
                return time.monotonic()
        """,
        "src/repro/serve/clock.py",
    ),
    "R7-injected-clock": (
        """
        def step(self):
            now = self.clock.now()
            self.clock.advance(self.cost.duration(0, 1))
            return now
        """,
        SERVE_PATH,
    ),
    "R7-outside-scope": (
        """
        import time

        def bench():
            return time.perf_counter()
        """,
        EVAL_PATH,
    ),
    "R7-sleep-allowed": (
        """
        import time

        def backoff(hint):
            time.sleep(hint)
        """,
        SERVE_PATH,
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("label", sorted(VIOLATIONS))
    def test_fixture_triggers_exactly_its_rule(self, label):
        rule, source, path = VIOLATIONS[label]
        fired = rules_fired(source, path)
        assert fired == [rule], f"{label}: expected [{rule}], got {fired}"

    @pytest.mark.parametrize("label", sorted(CLEAN))
    def test_clean_fixture_is_silent(self, label):
        source, path = CLEAN[label]
        assert rules_fired(source, path) == []

    def test_every_rule_has_a_firing_fixture(self):
        covered = {rule for rule, _, _ in VIOLATIONS.values()}
        assert covered == {cls.code for cls in all_rules()}

    def test_finding_carries_location_and_metadata(self):
        findings = lint_source(
            "def check(s):\n    return s == 64.7\n", EVAL_PATH
        )
        (finding,) = findings
        assert finding.rule == "R4"
        assert finding.name == "float-equality"
        assert finding.severity is Severity.ERROR
        assert (finding.line, finding.path) == (2, EVAL_PATH)


class TestSuppressions:
    def test_trailing_comment_suppresses_own_line(self):
        src = "def f(s):\n    return s == 64.7  # lint: disable=R4 (exact)\n"
        assert lint_source(src, EVAL_PATH) == []

    def test_standalone_comment_suppresses_next_line(self):
        src = (
            "def f(s):\n"
            "    # lint: disable=float-equality (bit-identity by construction)\n"
            "    return s == 64.7\n"
        )
        assert lint_source(src, EVAL_PATH) == []

    def test_suppression_is_line_scoped(self):
        src = (
            "def f(s, t):\n"
            "    a = s == 64.7  # lint: disable=R4 (exact)\n"
            "    return t == 64.7\n"
        )
        findings = lint_source(src, EVAL_PATH)
        assert [f.line for f in findings] == [3]

    def test_wrong_rule_does_not_suppress(self):
        src = "def f(s):\n    return s == 64.7  # lint: disable=R1 (nope)\n"
        assert [f.rule for f in lint_source(src, EVAL_PATH)] == ["R4"]

    def test_file_wide_directive(self):
        src = (
            "# lint: disable-file=R4 (golden comparisons throughout)\n"
            "def f(s, t):\n"
            "    return s == 64.7 or t == 0.1\n"
        )
        assert lint_source(src, EVAL_PATH) == []

    def test_disable_all(self):
        src = "def f(s):\n    return s == 64.7  # lint: disable=all (fixture)\n"
        assert lint_source(src, EVAL_PATH) == []

    def test_directive_inside_string_is_inert(self):
        src = (
            'MSG = "# lint: disable-file=R4 (not a comment)"\n'
            "def f(s):\n"
            "    return s == 64.7\n"
        )
        assert [f.rule for f in lint_source(src, EVAL_PATH)] == ["R4"]


class TestConfig:
    def test_select_narrows_rules(self):
        rule, source, path = VIOLATIONS["R3-global-state"]
        config = LintConfig(select={"R4"})
        assert rules_fired(source, path, config) == []

    def test_disable_drops_rule(self):
        rule, source, path = VIOLATIONS["R4-inexact-literal"]
        config = LintConfig(disable={"R4"})
        assert rules_fired(source, path, config) == []

    def test_severity_override(self):
        rule, source, path = VIOLATIONS["R4-inexact-literal"]
        config = LintConfig(severity_overrides={"R4": Severity.INFO})
        findings = lint_source(textwrap.dedent(source), path, config)
        assert [f.severity for f in findings] == [Severity.INFO]

    def test_rule_options_merge(self):
        source = (
            "def f(comm, rank):\n"
            "    if rank == 0:\n"
            "        comm.all_reduce([1])\n"
        )
        config = LintConfig(rule_options={"R2": {"path_fragments": []}})
        fired = [f.rule for f in lint_source(source, EVAL_PATH, config)]
        assert fired == ["R2"]  # empty fragment list = apply everywhere

    def test_unknown_rule_identifier_rejected(self):
        with pytest.raises(ValueError):
            LintConfig.from_cli(select=["R99"])


class TestReporters:
    SRC = "def f(s):\n    return s == 64.7\n"

    def _result(self, tmp_path):
        target = tmp_path / "eval"
        target.mkdir()
        (target / "mod.py").write_text(self.SRC)
        return run_lint([str(target)])

    def test_json_reporter_golden(self, tmp_path):
        result = self._result(tmp_path)
        payload = json.loads(json_report(result))
        path = (tmp_path / "eval" / "mod.py").as_posix()
        assert payload == {
            "version": 1,
            "files_checked": 1,
            "findings": [
                {
                    "rule": "R4",
                    "name": "float-equality",
                    "severity": "error",
                    "path": path,
                    "line": 2,
                    "col": 11,
                    "message": (
                        "float equality (== with inexact float literal 64.7); "
                        "floating-point results are not stable under "
                        "reassociation — compare with a tolerance"
                    ),
                }
            ],
            "summary": {"total": 1, "by_rule": {"R4": 1}},
        }

    def test_text_reporter_mentions_location_and_summary(self, tmp_path):
        result = self._result(tmp_path)
        report = text_report(result)
        assert "mod.py:2:12: R4 [error]" in report
        assert "1 finding (R4=1) in 1 files" in report

    def test_clean_text_report(self):
        result = run_lint([os.path.join(REPO_ROOT, "src", "repro", "utils")])
        assert text_report(result).startswith("clean: 0 findings")


class TestEngine:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = run_lint([str(bad)])
        assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]
        assert result.exit_code(Severity.WARNING) == 1

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint([os.path.join(REPO_ROOT, "no-such-dir")])

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1 == 64.7\n")
        (tmp_path / "a.py").write_text("__all__ = ['ghost']\ny = 2 != 0.1\n")
        first = run_lint([str(tmp_path)])
        second = run_lint([str(tmp_path)])
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]
        assert [f.path.rsplit("/", 1)[-1] for f in first.findings] == [
            "a.py",
            "a.py",
            "b.py",
        ]


class TestCleanRepo:
    """The checked-in tree must satisfy its own invariants."""

    def test_src_and_tests_lint_clean(self):
        result = run_lint(
            [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "tests")]
        )
        assert result.findings == [], text_report(result)

    def test_cli_exits_zero_on_src(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean: 0 findings" in proc.stdout

    def test_cli_fails_on_violation(self, tmp_path):
        mod = tmp_path / "viol.py"
        mod.write_text("def f(s):\n    return s == 64.7\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(mod)],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "R4" in proc.stdout

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for code in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
            assert code in proc.stdout
