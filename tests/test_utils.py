"""Utility tests: seeded RNG derivation, text helpers, atomic I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    SeedSequenceRegistry,
    atomic_write_json,
    atomic_write_text,
    derive_seed,
    new_rng,
    normalize_whitespace,
    read_json,
    read_text,
    sentence_join,
    spawn_rngs,
    truncate_tokens,
    word_count,
)


class TestRNG:
    def test_derivation_deterministic(self):
        assert derive_seed(42, "corpus") == derive_seed(42, "corpus")

    def test_derivation_namespaced(self):
        assert derive_seed(42, "corpus") != derive_seed(42, "model")
        assert derive_seed(42, "a", "b") != derive_seed(42, "a", "c")
        assert derive_seed(41, "a") != derive_seed(42, "a")

    def test_path_components_not_concatenated(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_new_rng_streams_independent(self):
        a = new_rng(0, "x").random(5)
        b = new_rng(0, "y").random(5)
        assert not np.allclose(a, b)

    def test_spawn_rngs(self):
        rngs = spawn_rngs(7, ["a", "b"])
        assert set(rngs) == {"a", "b"}
        assert rngs["a"].random() != rngs["b"].random()

    def test_registry_stable_and_counts(self):
        reg = SeedSequenceRegistry(9)
        s1 = reg.seed_for("train", 0)
        s2 = reg.seed_for("train", 0)
        assert s1 == s2
        assert reg.request_count("train", 0) == 2
        assert reg.issued_paths == ["train/0"]

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_derive_seed_in_64bit_range(self, seed, name):
        s = derive_seed(seed, name)
        assert 0 <= s < 2**64


class TestText:
    def test_normalize(self):
        assert normalize_whitespace("  a \t b \n c ") == "a b c"

    def test_word_count(self):
        assert word_count("") == 0
        assert word_count("one two three") == 3
        assert word_count("   spaced   out   ") == 2

    def test_sentence_join_adds_periods(self):
        assert sentence_join(["a", "b!"]) == "a. b!"
        assert sentence_join(["", "x"]) == "x."

    def test_truncate_tokens(self):
        assert truncate_tokens([1, 2, 3], 2) == [1, 2]
        assert truncate_tokens([1], 5) == [1]
        with pytest.raises(ValueError):
            truncate_tokens([1], -1)


class TestIO:
    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "file.txt"
        atomic_write_text(path, "hello")
        assert read_text(path) == "hello"

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "data.json"
        obj = {"b": [1, 2], "a": {"nested": True}}
        atomic_write_json(path, obj)
        assert read_json(path) == obj

    def test_overwrite_atomic(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert read_text(path) == "two"
        # no leftover temp files
        assert [p.name for p in tmp_path.iterdir()] == ["f.txt"]
