"""Golden regression tests pinning Table 1 / Figure 1 outputs.

The surrogate-driven analysis artifacts are deterministic, so their full
content is committed as JSON fixtures.  Any change to the surrogate
calibration, the zoo, the arrow logic or the renderers shows up as a
fixture diff that must be reviewed and regenerated deliberately:

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_analysis_golden.py

Regenerating rewrites ``tests/fixtures/table1_golden.json`` and
``tests/fixtures/figure1_golden.json``; commit the diff with the change
that motivated it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import (
    build_figure1,
    render_figure1_ascii,
    render_table_one_markdown,
    table_one_from_surrogate,
)

FIXTURES = Path(__file__).parent / "fixtures"
TABLE1_GOLDEN = FIXTURES / "table1_golden.json"
FIGURE1_GOLDEN = FIXTURES / "figure1_golden.json"

UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"


def canonical_table1() -> dict:
    table = table_one_from_surrogate()
    return {
        "rows": table.rows(),
        "markdown": render_table_one_markdown(table),
    }


def canonical_figure1() -> dict:
    fig = build_figure1(table_one_from_surrogate())
    return {
        "points": fig.points,
        "baselines": fig.baselines,
        "series": fig.series,
        "score_range": list(fig.score_range()),
        "ascii": render_figure1_ascii(fig),
    }


def _roundtrip(payload: dict) -> dict:
    """Normalize through JSON so tuples/ints compare like the fixture."""
    return json.loads(json.dumps(payload, sort_keys=True))


def _check_or_update(path: Path, payload: dict) -> None:
    payload = _roundtrip(payload)
    if UPDATE:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        "REPRO_UPDATE_GOLDENS=1 pytest tests/test_analysis_golden.py"
    )
    golden = json.loads(path.read_text())
    assert payload == golden, (
        f"{path.name} drifted from the committed golden — if the change is "
        "intentional, regenerate with REPRO_UPDATE_GOLDENS=1 and commit"
    )


class TestTableOneGolden:
    def test_table1_matches_golden(self):
        _check_or_update(TABLE1_GOLDEN, canonical_table1())

    def test_golden_has_all_zoo_rows(self):
        golden = json.loads(TABLE1_GOLDEN.read_text())
        current = _roundtrip(canonical_table1())
        assert [r["model"] for r in golden["rows"]] == [
            r["model"] for r in current["rows"]
        ]

    def test_markdown_renders_every_row(self):
        golden = json.loads(TABLE1_GOLDEN.read_text())
        lines = golden["markdown"].splitlines()
        assert len(lines) == 2 + len(golden["rows"])  # header + sep + rows


class TestFigureOneGolden:
    def test_figure1_matches_golden(self):
        _check_or_update(FIGURE1_GOLDEN, canonical_figure1())

    def test_baselines_come_from_native_models(self):
        golden = json.loads(FIGURE1_GOLDEN.read_text())
        assert set(golden["baselines"]) <= set(golden["series"])
        lo, hi = golden["score_range"]
        assert lo < hi

    def test_every_series_model_has_points(self):
        golden = json.loads(FIGURE1_GOLDEN.read_text())
        for models in golden["series"].values():
            for name in models:
                assert name in golden["points"]
