"""Corpus dedup tests: shingles, Jaccard, MinHash estimator, greedy dedup."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.dedup import (
    MinHasher,
    dedupe_documents,
    jaccard,
    shingles,
)


class TestShingles:
    def test_basic(self):
        s = shingles("a b c d", n=3)
        assert s == {"a b c", "b c d"}

    def test_short_text(self):
        assert shingles("a b", n=3) == {"a b"}
        assert shingles("", n=3) == set()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            shingles("a b", n=0)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)


class TestMinHash:
    def test_identical_sets_identical_signatures(self):
        h = MinHasher(num_hashes=32, seed=1)
        s = shingles("the star is very bright tonight indeed", 3)
        np.testing.assert_array_equal(h.signature(s), h.signature(set(s)))

    def test_estimator_tracks_jaccard(self):
        h = MinHasher(num_hashes=256, seed=2)
        a = {f"tok{i}" for i in range(100)}
        b = {f"tok{i}" for i in range(50, 150)}  # true jaccard = 50/150
        est = MinHasher.estimate_similarity(h.signature(a), h.signature(b))
        assert est == pytest.approx(jaccard(a, b), abs=0.12)

    def test_disjoint_sets_low_similarity(self):
        h = MinHasher(num_hashes=128, seed=3)
        a = {f"a{i}" for i in range(50)}
        b = {f"b{i}" for i in range(50)}
        assert MinHasher.estimate_similarity(h.signature(a), h.signature(b)) < 0.2

    def test_empty_set_signature(self):
        h = MinHasher(num_hashes=8)
        sig = h.signature(set())
        assert (sig == np.iinfo(np.uint64).max).all()

    def test_shape_mismatch(self):
        h8, h16 = MinHasher(num_hashes=8), MinHasher(num_hashes=16)
        s = {"x y z"}
        with pytest.raises(ValueError):
            MinHasher.estimate_similarity(h8.signature(s), h16.signature(s))

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=0)

    @given(st.sets(st.text("abcdef", min_size=1, max_size=6), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_one(self, items):
        h = MinHasher(num_hashes=16, seed=5)
        sig = h.signature(items)
        assert MinHasher.estimate_similarity(sig, sig) == 1.0


class TestDedupe:
    DOCS = [
        "the galaxy rotation curve is flat in the outer regions of the disk",
        "the galaxy rotation curve is flat in the outer regions of the disc",  # near-dup
        "planet formation proceeds through core accretion in most systems",
        "the galaxy rotation curve is flat in the outer regions of the disk",  # exact dup
    ]

    def test_exact_mode(self):
        kept, dropped = dedupe_documents(self.DOCS, threshold=0.7, exact=True)
        assert 0 in kept and 2 in kept
        assert 3 not in kept
        dropped_idx = [d for d, _ in dropped]
        assert 3 in dropped_idx

    def test_minhash_mode_catches_exact_dup(self):
        kept, dropped = dedupe_documents(self.DOCS, threshold=0.95)
        assert 3 not in kept
        assert (3, 0) in dropped

    def test_all_unique_nothing_dropped(self):
        docs = ["alpha beta gamma delta", "one two three four", "red green blue white"]
        kept, dropped = dedupe_documents(docs, threshold=0.8)
        assert kept == [0, 1, 2]
        assert dropped == []

    def test_dropped_points_at_kept(self):
        kept, dropped = dedupe_documents(self.DOCS, threshold=0.7, exact=True)
        for d, k in dropped:
            assert k in kept
            assert d not in kept

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            dedupe_documents(["a"], threshold=0.0)

    def test_empty_input(self):
        kept, dropped = dedupe_documents([])
        assert kept == [] and dropped == []
