"""PrefixCacheStore LRU semantics + the REPRO_DEBUG_CACHE mutator matrix.

Two suites ride on top of the basic store tests in ``test_kv_cache.py``:

* **LRU under interleaved fork/trim** — ``match`` refreshes an entry's
  recency, so a hot scaffold survives evictions triggered by later
  ``put`` calls, and zero-copy forks taken at arbitrary trim lengths
  between store operations never perturb the cached parent arrays;
* **debug-guard mutator matrix** — with ``REPRO_DEBUG_CACHE=1`` every
  in-place write class that lint rule R1 recognizes statically
  (subscript store through a k/v key, augmented assignment, ``.fill()``,
  ``np.copyto``, ``out=``) raises at runtime on a forked cache, so the
  env guard and the lint rule enforce the same attention contract.
"""

import numpy as np
import pytest

from repro.model import (
    ModelConfig,
    PrefixCache,
    PrefixCacheStore,
    TransformerLM,
    cache_length,
    fork_cache,
)


def small_model(seed=0, vocab=64, max_seq_len=64):
    return TransformerLM(
        ModelConfig(
            vocab_size=vocab, d_model=32, n_layers=2, n_heads=4,
            max_seq_len=max_seq_len,
        ),
        seed=seed,
    )


def snapshot(cache):
    """Deep copy of every cached tensor, for before/after comparisons."""
    return [
        {key: layer[key].copy() for key in ("k", "v")} for layer in cache
    ]


def assert_cache_equal(cache, saved):
    assert len(cache) == len(saved)
    for layer, ref in zip(cache, saved):
        for key in ("k", "v"):
            np.testing.assert_array_equal(layer[key], ref[key])


class TestStoreLRU:
    """match() refreshes recency; put() evicts the least recent entry."""

    def test_eviction_is_fifo_without_matches(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=3)
        entries = [store.put(model.prefill([i, i + 1])) for i in (1, 3, 5, 7)]
        assert len(store) == 3
        assert store.match([1, 2, 9]) is None  # oldest entry gone
        for entry, ids in zip(entries[1:], ([3, 4, 9], [5, 6, 9], [7, 8, 9])):
            matched = store.match(ids)
            assert matched is not None and matched[0] is entry

    def test_match_refreshes_lru_position(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        hot = store.put(model.prefill([1, 2, 3]))
        store.put(model.prefill([4, 5, 6]))
        # touching `hot` moves it to the most-recent slot ...
        entry, overlap = store.match([1, 2, 3, 9])
        assert entry is hot and overlap == 3
        # ... so the next eviction removes the *untouched* entry instead
        store.put(model.prefill([7, 8, 9]))
        assert store.match([4, 5, 6, 9]) is None
        refreshed = store.match([1, 2, 3, 9])
        assert refreshed is not None and refreshed[0] is hot

    def test_repeated_matches_keep_entry_alive_across_evictions(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        scaffold = store.put(model.prefill([10, 11, 12, 13]))
        for step in range(4):
            store.put(model.prefill([20 + step, 21 + step]))
            matched = store.match([10, 11, 12, 13, 14])
            assert matched is not None and matched[0] is scaffold, f"step {step}"
        assert len(store) == 2

    def test_put_dedupes_identical_prefix(self):
        """Re-putting an identical prefix refreshes the existing entry
        instead of evicting a distinct one."""
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        scaffold = store.put(model.prefill([1, 2, 3]))
        other = store.put(model.prefill([4, 5, 6]))
        again = store.put(model.prefill([1, 2, 3]))  # identical token ids
        assert again is scaffold  # the stored entry, not the new prefill
        assert len(store) == 2
        assert store.evictions == 0
        # both originals still matchable — nothing got evicted
        assert store.match([4, 5, 6, 9])[0] is other
        assert store.match([1, 2, 3, 9])[0] is scaffold

    def test_put_dedupe_refreshes_lru_position(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        scaffold = store.put(model.prefill([1, 2, 3]))
        store.put(model.prefill([4, 5, 6]))
        store.put(model.prefill([1, 2, 3]))  # dedupe: scaffold now most recent
        store.put(model.prefill([7, 8, 9]))  # evicts [4,5,6], not the scaffold
        assert store.match([4, 5, 6, 9]) is None
        assert store.match([1, 2, 3, 9])[0] is scaffold
        assert store.evictions == 1

    def test_eviction_counter_and_stats_snapshot(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        for ids in ([1, 2], [3, 4], [5, 6], [7, 8]):
            store.put(model.prefill(ids))
        assert store.evictions == 2
        assert store.match([7, 8, 9]) is not None
        assert store.match([90, 91]) is None
        assert store.stats() == {
            "entries": 2,
            "hits": 1,
            "misses": 1,
            "evictions": 2,
        }

    def test_hits_misses_accounting_interleaved(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        store.put(model.prefill([1, 2]))
        assert store.match([1, 2, 3]) is not None
        assert store.match([40, 41]) is None
        store.put(model.prefill([5, 6]))
        assert store.match([5, 6, 7]) is not None
        assert store.match([1, 2, 3], min_overlap=3) is None  # overlap too short
        assert (store.hits, store.misses) == (2, 2)


class TestInterleavedForkTrim:
    """Forks at varying trims/batch sizes never disturb stored parents."""

    def test_fork_trim_sequence_leaves_parents_intact(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=3)
        ids_a = [1, 2, 3, 4, 5, 6]
        ids_b = [1, 2, 9, 10]
        a = store.put(model.prefill(ids_a))
        b = store.put(model.prefill(ids_b))
        saved_a, saved_b = snapshot(a.cache), snapshot(b.cache)

        # interleave matches, trimmed forks and broadcast forks
        forks = []
        for length in (2, 4, 6):
            entry, overlap = store.match(ids_a[:length] + [50])
            assert entry is a and overlap == length
            forks.append(entry.fork(batch_size=3, length=length))
        forks.append(b.fork(batch_size=1, length=3))
        store.put(model.prefill([30, 31]))  # triggers an eviction mid-sequence

        for length, fork in zip((2, 4, 6, 3), forks):
            assert cache_length(fork) == length
        assert_cache_equal(a.cache, saved_a)
        assert_cache_equal(b.cache, saved_b)

    def test_trimmed_fork_is_zero_copy_view_of_parent_slice(self):
        model = small_model(seed=2)
        ids = [3, 1, 4, 1, 5, 9, 2, 6]
        full = model.prefill(ids)
        trimmed = full.fork(batch_size=1, length=5)
        for layer, parent in zip(trimmed, full.cache):
            for key in ("k", "v"):
                np.testing.assert_array_equal(
                    layer[key], parent[key][:, :, :5, :]
                )
                assert np.shares_memory(layer[key], parent[key])

    def test_extending_one_fork_leaves_siblings_and_parent_alone(self):
        model = small_model(seed=1)
        pc = model.prefill([7, 8, 9, 10])
        saved = snapshot(pc.cache)
        left = pc.fork(batch_size=1, length=4)
        right = pc.fork(batch_size=1, length=2)
        saved_right = snapshot(right)
        model.forward(np.asarray([[11, 12]]), start_pos=4, cache=left)
        assert cache_length(left) == 6
        assert_cache_equal(pc.cache, saved)
        assert_cache_equal(right, saved_right)

    def test_fork_length_beyond_prefix_raises(self):
        model = small_model()
        pc = model.prefill([1, 2, 3])
        with pytest.raises(ValueError):
            pc.fork(length=4)

    def test_store_entries_usable_after_guarded_forks(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CACHE", "1")
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        entry = store.put(model.prefill([1, 2, 3, 4]))
        fork = entry.fork(batch_size=2, length=3)
        assert not fork[0]["k"].flags.writeable
        # the stored parent stays writable and matchable
        assert entry.cache[0]["k"].flags.writeable
        matched = store.match([1, 2, 3, 4, 5])
        assert matched is not None and matched[0] is entry


def _layer(cache):
    return cache[0]


def mutate_subscript(layer):
    layer["k"][..., 0] = 0.0  # lint: disable=R1 (intentional violation under test)


def mutate_aug_slot(layer):
    layer["v"] += 1.0  # lint: disable=R1 (intentional violation under test)


def mutate_aug_array(layer):
    k = layer["k"]
    k *= 2.0  # lint: disable=R1 (intentional violation under test)


def mutate_fill(layer):
    layer["k"].fill(0.0)  # lint: disable=R1 (intentional violation under test)


def mutate_copyto(layer):
    np.copyto(layer["v"], 0.0)  # lint: disable=R1 (intentional violation under test)


def mutate_out_kwarg(layer):
    np.negative(layer["k"], out=layer["k"])  # lint: disable=R1 (intentional violation under test)


MUTATORS = [
    pytest.param(mutate_subscript, id="subscript-store"),
    pytest.param(mutate_aug_slot, id="augmented-kv-slot"),
    pytest.param(mutate_aug_array, id="augmented-array"),
    pytest.param(mutate_fill, id="fill-method"),
    pytest.param(mutate_copyto, id="copyto"),
    pytest.param(mutate_out_kwarg, id="out-kwarg"),
]


class TestDebugGuardMutatorMatrix:
    """Every write class R1 flags statically also raises under the guard."""

    @pytest.mark.parametrize("mutate", MUTATORS)
    def test_mutator_raises_on_forked_cache(self, monkeypatch, mutate):
        # batch_size=1 so the fork is a plain slice view: writable without
        # the guard, which isolates the guard as the thing that trips
        monkeypatch.setenv("REPRO_DEBUG_CACHE", "1")
        model = small_model()
        pc = model.prefill([1, 2, 3, 4])
        forked = fork_cache(pc.cache, batch_size=1, length=3)
        saved = snapshot(pc.cache)
        with pytest.raises(ValueError):
            mutate(_layer(forked))
        # the failed write must not have partially landed in the parent
        assert_cache_equal(pc.cache, saved)

    @pytest.mark.parametrize("mutate", MUTATORS)
    def test_mutator_succeeds_silently_without_guard(self, monkeypatch, mutate):
        # control cell: the same writes go through (and corrupt shared
        # state!) when the guard is off — which is exactly why R1 exists
        monkeypatch.delenv("REPRO_DEBUG_CACHE", raising=False)
        model = small_model()
        pc = model.prefill([1, 2, 3, 4])
        forked = fork_cache(pc.cache, batch_size=1, length=3)
        mutate(_layer(forked))  # no raise

    @pytest.mark.parametrize("mutate", MUTATORS)
    def test_mutator_raises_on_broadcast_fork(self, monkeypatch, mutate):
        monkeypatch.setenv("REPRO_DEBUG_CACHE", "1")
        model = small_model()
        pc = model.prefill([1, 2, 3, 4])
        forked = fork_cache(pc.cache, batch_size=2)
        with pytest.raises(ValueError):
            mutate(_layer(forked))

    def test_guard_accepts_any_truthy_value(self, monkeypatch):
        for on in ("1", "yes", "true", "on", "2"):
            monkeypatch.setenv("REPRO_DEBUG_CACHE", on)
            model = small_model()
            forked = model.prefill([1, 2]).fork()
            assert not forked[0]["k"].flags.writeable, f"value {on!r}"

    def test_trimmed_guarded_fork_is_read_only_at_every_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CACHE", "1")
        model = small_model()
        pc = model.prefill([5, 6, 7, 8])
        forked = fork_cache(pc.cache, batch_size=3, length=2)
        for layer in forked:
            for key in ("k", "v"):
                assert not layer[key].flags.writeable
