"""SFT dataset generator tests: components and the paper-ratio mixture."""

import pytest

from repro.corpus import ArxivArchive, make_astro_knowledge, make_general_knowledge
from repro.sft_data import (
    AstroQAGenerator,
    LimaGenerator,
    MixtureSpec,
    OpenOrcaGenerator,
    UltraChatGenerator,
    build_paper_mixture,
)


@pytest.fixture(scope="module")
def astro():
    return make_astro_knowledge(n_facts=80, seed=5)


@pytest.fixture(scope="module")
def general():
    return make_general_knowledge(n_facts=40, seed=5)


@pytest.fixture(scope="module")
def archive(astro):
    return ArxivArchive(astro, n_papers=40, seed=6)


class TestAstroQA:
    def test_generates_requested_count(self, archive, astro):
        examples = AstroQAGenerator(archive, astro, seed=1).generate(25)
        assert len(examples) == 25
        assert all(ex.source == "astro-qa" for ex in examples)
        assert all(ex.is_astronomy() for ex in examples)

    def test_questions_about_abstract_facts(self, archive, astro):
        examples = AstroQAGenerator(archive, astro, seed=1).generate(10)
        subjects = {f.subject for f in astro.facts}
        for ex in examples:
            assert "Question :" in ex.user
            assert any(s in ex.user for s in subjects)

    def test_answer_states_letter_and_fact(self, archive, astro):
        examples = AstroQAGenerator(archive, astro, seed=1).generate(10)
        for ex in examples:
            assert ex.assistant.startswith("the answer is ")
            assert ex.assistant[len("the answer is ")] in "ABCD"

    def test_answer_letter_matches_option(self, archive, astro):
        fact_by_value = {f.correct: f for f in astro.facts}
        for ex in AstroQAGenerator(archive, astro, seed=2).generate(20):
            letter = ex.assistant[len("the answer is ")]
            option_line = [
                l for l in ex.user.split("\n") if l.startswith(f"{letter} :")
            ][0]
            value = option_line.partition(" : ")[2]
            assert value in fact_by_value
            # the stated fact in the answer carries the same value
            assert value in ex.assistant

    def test_deterministic(self, archive, astro):
        a = AstroQAGenerator(archive, astro, seed=3).generate(5)
        b = AstroQAGenerator(archive, astro, seed=3).generate(5)
        assert [(x.user, x.assistant) for x in a] == [(y.user, y.assistant) for y in b]


class TestGeneralGenerators:
    def test_lima_long_form(self, general):
        examples = LimaGenerator(general, seed=1).generate(10)
        assert all(ex.source == "lima" for ex in examples)
        assert all(len(ex.assistant.split()) > 15 for ex in examples)

    def test_openorca_step_by_step(self, general):
        examples = OpenOrcaGenerator(general, seed=1).generate(20)
        assert all("step by step" in ex.assistant for ex in examples)
        mcq = [ex for ex in examples if "Question :" in ex.user]
        assert 0 < len(mcq) < len(examples)  # mixed formats

    def test_ultrachat_is_knowledge_free(self, general):
        examples = UltraChatGenerator(seed=1).generate(10)
        values = {f.correct for f in general.facts}
        for ex in examples:
            assert not any(v in ex.assistant for v in values)

    def test_empty_knowledge_raises(self):
        from repro.corpus.knowledge import KnowledgeBase

        empty = KnowledgeBase([], "general")
        with pytest.raises(ValueError):
            LimaGenerator(empty).generate(5)


class TestMixture:
    def test_paper_spec_defaults(self):
        spec = MixtureSpec()
        assert spec.astro_qa == 10356
        assert spec.lima == 1030
        assert spec.open_orca == 10000
        assert spec.ultrachat == 10000
        # "only one-third of the samples being astronomy-focused"
        assert spec.astronomy_fraction == pytest.approx(1 / 3, abs=0.01)

    def test_scaled_preserves_ratio(self):
        spec = MixtureSpec().scaled(0.01)
        assert spec.astronomy_fraction == pytest.approx(1 / 3, abs=0.03)
        assert spec.total < 350

    def test_scaled_validates(self):
        with pytest.raises(ValueError):
            MixtureSpec().scaled(0)

    def test_build_mixture_composition(self, archive, astro, general):
        mixture = build_paper_mixture(
            archive, astro, general, spec=MixtureSpec().scaled(0.005), seed=1
        )
        counts = mixture.counts_by_source()
        assert set(counts) == {"astro-qa", "lima", "open-orca", "ultrachat"}
        assert mixture.astronomy_fraction == pytest.approx(1 / 3, abs=0.05)
        assert len(mixture.astronomy_only()) == counts["astro-qa"]

    def test_mixture_shuffled_but_deterministic(self, archive, astro, general):
        a = build_paper_mixture(archive, astro, general, MixtureSpec().scaled(0.003), seed=2)
        b = build_paper_mixture(archive, astro, general, MixtureSpec().scaled(0.003), seed=2)
        assert [x.user for x in a.examples] == [y.user for y in b.examples]
        sources = [ex.source for ex in a.examples]
        # shuffled: astronomy samples not all at the front
        first_chunk = sources[: len(sources) // 4]
        assert len(set(first_chunk)) > 1
