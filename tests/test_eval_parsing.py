"""Answer-parsing pipeline tests (the Section V-A two-stage parser)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.parsing import (
    FallbackInterpreter,
    extract_answer_freeform,
    extract_answer_json,
    parse_model_answer,
)

OPTIONS = (
    "2500 kelvin",
    "800 kelvin",
    "130 kelvin",
    "4100 kelvin",
)


class TestJSONExtraction:
    def test_clean_json(self):
        text = '{"ANSWER": "B", "EXPLANATION": "because physics"}'
        assert extract_answer_json(text) == 1

    def test_json_with_preamble(self):
        text = 'Sure! Here is my answer:\n{"ANSWER": "D", "EXPLANATION": "..."}'
        assert extract_answer_json(text) == 3

    def test_lowercase_key(self):
        assert extract_answer_json('{"answer": "A"}') == 0

    def test_answer_with_bracket_text(self):
        assert extract_answer_json('{"ANSWER": "C) 130 kelvin"}') is None or \
            extract_answer_json('{"ANSWER": "C) 130 kelvin"}') == 2

    def test_sloppy_json_field_regex(self):
        # invalid JSON (trailing comma) but the field is regex-recoverable
        text = '{"ANSWER": "C", "EXPLANATION": "...",}'
        assert extract_answer_json(text) == 2

    def test_no_json(self):
        assert extract_answer_json("the answer is B") is None

    def test_nested_object_before_answer_key(self):
        """Regression: the old non-greedy ``\\{.*?\\}`` regex truncated the
        block at the nested object's closing brace and lost the ANSWER."""
        text = '{"THOUGHTS": {"step": 1, "topic": "dust"}, "ANSWER": "B", "EXPLANATION": "x"}'
        assert extract_answer_json(text) == 1

    def test_braces_inside_explanation_string(self):
        text = '{"EXPLANATION": "the {virial} theorem {applies}", "ANSWER": "D"}'
        assert extract_answer_json(text) == 3

    def test_escaped_quote_inside_string(self):
        text = '{"EXPLANATION": "a \\"quoted{\\" aside", "ANSWER": "C"}'
        assert extract_answer_json(text) == 2

    def test_multiple_blocks_first_valid_wins(self):
        text = '{"scratch": {"guess": "A"}} then {"ANSWER": "C"}'
        assert extract_answer_json(text) == 2

    def test_nested_json_via_full_pipeline_stays_json_stage(self):
        text = '{"meta": {"n": 2}, "ANSWER": "A", "EXPLANATION": "..."}'
        outcome = parse_model_answer(text, OPTIONS)
        assert outcome.answer_idx == 0
        assert outcome.stage == "json"

    def test_unterminated_block_falls_back_to_field_regex(self):
        text = '{"ANSWER": "D", "EXPLANATION": "cut off mid-sent'
        assert extract_answer_json(text) == 3


class TestFreeformExtraction:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("The answer is B.", 1),
            ("the answer is: C", 2),
            ("Answer: D", 3),
            ("I would choose A here", 0),
            ("The correct answer is (B)", 1),
            ("Option C is correct because", 2),
            ("A", 0),
            ("  b  ", 1),
            ("A : 2500 kelvin is what I pick", 0),
        ],
    )
    def test_patterns(self, text, expected):
        assert extract_answer_freeform(text) == expected

    def test_no_match(self):
        assert extract_answer_freeform("I am not sure about this question") is None

    def test_does_not_match_article_a(self):
        # lone article "a" inside prose must not be read as option A
        assert extract_answer_freeform("this is a tricky question") is None


class TestFallbackInterpreter:
    def test_unique_value_mention(self):
        interp = FallbackInterpreter()
        text = "based on stellar physics the temperature must be 800 kelvin"
        assert interp.interpret(text, OPTIONS) == 1

    def test_multiple_mentions_ambiguous(self):
        interp = FallbackInterpreter()
        text = "it could be 800 kelvin or 130 kelvin"
        # falls to overlap scoring which ties -> None
        assert interp.interpret(text, OPTIONS) is None

    def test_token_overlap(self):
        interp = FallbackInterpreter()
        options = ("red dwarf stars", "blue supergiants", "white dwarfs", "neutron stars")
        text = "the progenitors are certainly blue supergiants in this scenario"
        assert interp.interpret(text, options) == 1

    def test_no_signal(self):
        interp = FallbackInterpreter()
        assert interp.interpret("completely unrelated text", ("aa", "bb", "cc", "dd")) is None


class TestFullPipeline:
    def test_stage_tags(self):
        assert parse_model_answer('{"ANSWER": "A"}', OPTIONS).stage == "json"
        assert parse_model_answer("the answer is B", OPTIONS).stage == "regex"
        assert (
            parse_model_answer("it is surely 130 kelvin", OPTIONS).stage
            == "interpreter"
        )
        outcome = parse_model_answer("xyzzy", ("q1 w1", "q2 w2", "q3 w3", "q4 w4"))
        assert outcome.stage == "failed" and not outcome.parsed

    def test_json_takes_priority_over_freeform(self):
        text = 'the answer is B... final: {"ANSWER": "C"}'
        assert parse_model_answer(text, OPTIONS).answer_idx == 2

    @given(st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_never_crashes(self, text):
        outcome = parse_model_answer(text, OPTIONS)
        assert outcome.answer_idx in (None, 0, 1, 2, 3)
