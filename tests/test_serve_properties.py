"""Property-based tests (hypothesis) for the serving scheduler.

Random arrival/length schedules drive the real engine on the virtual
clock.  The properties, over *every* schedule hypothesis can dream up:

* **liveness** — every submitted request reaches a terminal state and
  the simulation drains (no starvation beyond the token-budget bound:
  a request either fits the budget eventually, expires on its own
  deadline, or is dropped by its own retry budget — never stuck);
* **budget safety** — the running batch never exceeds ``max_running``
  width or ``token_budget`` reserved tokens at any step;
* **replay identity** — the same ``(schedule, seed)`` replays to a
  bit-identical event log, metrics snapshot, and per-request outputs.

The model is deliberately tiny and module-scoped: the properties are
about the scheduler, not the transformer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import ModelConfig, TransformerLM
from repro.serve import (
    InferenceRequest,
    RequestKind,
    SchedulerConfig,
    ServeConfig,
    ServeEngine,
    SimRequestSpec,
    TERMINAL_STATUSES,
    make_workload,
    simulate,
)
from repro.model.sampling import GenerationConfig

VOCAB = 48
MAX_SEQ = 64


@pytest.fixture(scope="module")
def model():
    return TransformerLM(
        ModelConfig(
            vocab_size=VOCAB, d_model=16, n_layers=1, n_heads=2,
            max_seq_len=MAX_SEQ,
        ),
        seed=0,
    )


# one scripted arrival: (gap to previous, prompt tail length, decode
# budget, kind flag, priority, sampling seed)
arrival_specs = st.lists(
    st.tuples(
        st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False),
        st.integers(1, 8),
        st.integers(1, 8),
        st.booleans(),
        st.integers(0, 2),
        st.integers(0, 2**20),
    ),
    min_size=1,
    max_size=10,
)

schedule_configs = st.tuples(
    st.integers(12, 48),  # token_budget
    st.integers(1, 4),  # max_running
    st.sampled_from(["fifo", "priority"]),
)


def build_specs(raw):
    specs = []
    t = 0.0
    for i, (gap, tail, budget, is_generate, priority, seed) in enumerate(raw):
        t += gap
        specs.append(
            SimRequestSpec(
                request_id=f"req-{i:03d}",
                arrival=t,
                # short shared scaffold + distinct tail
                prompt_ids=tuple([7, 11, 13] + [(seed + j) % VOCAB or 1
                                                for j in range(tail)]),
                kind=RequestKind.GENERATE if is_generate else RequestKind.SCORE,
                max_new_tokens=budget,
                temperature=0.9,
                seed=seed,
                priority=priority,
            )
        )
    return specs


class TestSchedulerProperties:
    @given(raw=arrival_specs, config=schedule_configs)
    @settings(max_examples=25, deadline=None)
    def test_liveness_and_replay_identity(self, model, raw, config):
        token_budget, max_running, policy = config
        serve_config = ServeConfig(
            queue_policy=policy,
            scheduler=SchedulerConfig(
                token_budget=max(token_budget, 11 + 8),  # every spec fits
                max_running=max_running,
            ),
        )
        specs = build_specs(raw)
        first = simulate(model, specs, config=serve_config, max_retries=100)
        # liveness: every request terminated, nothing dropped or stuck
        assert first.dropped == []
        assert len(first.summaries) == len(specs)
        terminal = {s.value for s in TERMINAL_STATUSES}
        assert all(s["status"] in terminal for s in first.summaries)
        assert first.metrics["finished"] == len(specs)
        # replay identity: same schedule, same everything
        second = simulate(model, specs, config=serve_config, max_retries=100)
        assert first.replay_key_view() == second.replay_key_view()

    @given(raw=arrival_specs, config=schedule_configs)
    @settings(max_examples=25, deadline=None)
    def test_budget_and_width_never_exceeded(self, model, raw, config):
        token_budget, max_running, policy = config
        budget = max(token_budget, 11 + 8)
        engine = ServeEngine(
            model,
            config=ServeConfig(
                queue_capacity=128,
                queue_policy=policy,
                scheduler=SchedulerConfig(
                    token_budget=budget, max_running=max_running
                ),
            ),
        )
        for spec in build_specs(raw):
            engine.submit(spec.to_request())
        steps = 0
        while engine.has_work:
            engine.step()
            steps += 1
            assert len(engine.scheduler.running) <= max_running
            assert engine.scheduler.reserved_tokens() <= budget
            assert steps < 10_000  # starvation bound
        assert all(s.done for s in engine.states.values())

    @given(seed=st.integers(0, 2**16), n=st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_generated_workloads_replay(self, model, seed, n):
        specs = make_workload(
            n, seed=seed, vocab_size=VOCAB, scaffold_len=4,
            prompt_len_range=(2, 6), max_new_range=(1, 6), temperature=0.7,
        )
        first = simulate(model, specs)
        second = simulate(model, specs)
        assert first.replay_key_view() == second.replay_key_view()
        assert first.metrics["submitted"] == n


class TestSamplingProperties:
    @given(
        top_p=st.floats(0.05, 1.0, allow_nan=False),
        top_k=st.integers(0, 12),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_engine_matches_generate_under_any_sampler(
        self, model, top_p, top_k, seed
    ):
        """Decode parity is sampler-independent (greedy, top-k, top-p)."""
        from repro.model.sampling import generate

        config = GenerationConfig(
            max_new_tokens=5, temperature=0.8, top_k=top_k, top_p=top_p,
            seed=seed,
        )
        prompt = [3, 5, 7, 9]
        reference = generate(model, prompt, config)
        engine = ServeEngine(model)
        engine.submit(
            InferenceRequest(
                request_id="r", prompt_ids=tuple(prompt), generation=config
            )
        )
        assert list(engine.drain()[0].output_ids) == reference
