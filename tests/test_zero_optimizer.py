"""ZeRO-1 tests: exactness vs dense AdamW, sharding memory accounting."""

import numpy as np
import pytest

from repro.model import ModelConfig, TransformerLM
from repro.parallel import Communicator, DeviceMesh
from repro.parallel.zero_optimizer import (
    Zero1AdamW,
    flatten_params,
    unflatten_into,
    zero1_memory_per_rank,
)
from repro.train.optimizer import AdamW


def make_model(seed=0):
    return TransformerLM(
        ModelConfig(vocab_size=24, d_model=16, n_layers=1, n_heads=2, max_seq_len=16),
        seed=seed,
    )


class TestFlatten:
    def test_roundtrip(self):
        model = make_model()
        params = model.named_parameters()
        flat, layout = flatten_params(params)
        assert flat.size == model.num_parameters()
        # zero out then restore
        backup = {k: v.copy() for k, v in params.items()}
        for v in params.values():
            v.fill(0.0)
        unflatten_into(flat, layout, params)
        for k in params:
            np.testing.assert_array_equal(params[k], backup[k])

    def test_layout_sorted_and_complete(self):
        model = make_model()
        _, layout = flatten_params(model.named_parameters())
        keys = [k for k, _, _ in layout]
        assert keys == sorted(keys)
        assert sum(int(np.prod(s)) for _, _, s in layout) == model.num_parameters()


class TestZero1Exactness:
    @pytest.mark.parametrize("world", [2, 4])
    def test_matches_dense_adamw(self, world):
        """ZeRO-1 over R ranks == dense AdamW on mean gradients."""
        mesh = DeviceMesh(1, world)
        comm = Communicator(mesh)

        model_zero = make_model(seed=3)
        model_dense = make_model(seed=3)
        zero = Zero1AdamW(comm, weight_decay=0.0)
        dense = AdamW(
            model_dense.named_parameters(),
            model_dense.named_gradients(),
            betas=(0.9, 0.95),
        )
        rng = np.random.default_rng(0)
        for step in range(5):
            # simulate per-rank gradients from different shards
            per_rank = []
            for r in range(world):
                model_zero.zero_grad()
                x = rng.integers(1, 24, size=(2, 8))
                model_zero.loss_and_backward(x, np.roll(x, -1, axis=1))
                per_rank.append(
                    {k: v.copy() for k, v in model_zero.named_gradients().items()}
                )
            # dense reference: mean of the rank gradients
            model_dense.zero_grad()
            for k, g in model_dense.named_gradients().items():
                g[...] = np.mean([pr[k] for pr in per_rank], axis=0)
            dense.step(1e-3)
            zero.step(model_zero.named_parameters(), per_rank, 1e-3)

            p_zero = model_zero.named_parameters()
            p_dense = model_dense.named_parameters()
            for k in p_dense:
                np.testing.assert_allclose(
                    p_zero[k], p_dense[k], rtol=1e-5, atol=1e-7
                )

    def test_weight_decay_applied(self):
        comm = Communicator(DeviceMesh(1, 2))
        model = make_model(seed=1)
        before = model.embed.params["weight"].copy()
        zero = Zero1AdamW(comm, weight_decay=0.1)
        grads = [
            {k: np.zeros_like(v) for k, v in model.named_parameters().items()}
            for _ in range(2)
        ]
        zero.step(model.named_parameters(), grads, lr=0.5)
        # zero gradients: only decay moves weights
        assert np.abs(model.embed.params["weight"]).sum() < np.abs(before).sum()

    def test_gradient_key_mismatch(self):
        comm = Communicator(DeviceMesh(1, 2))
        model = make_model()
        with pytest.raises(KeyError):
            zero = Zero1AdamW(comm)
            zero.step(
                model.named_parameters(),
                [{"bogus": np.zeros(3)} for _ in range(2)],
                1e-3,
            )

    def test_rank_count_mismatch(self):
        comm = Communicator(DeviceMesh(1, 4))
        model = make_model()
        grads = {k: np.zeros_like(v) for k, v in model.named_parameters().items()}
        with pytest.raises(ValueError):
            Zero1AdamW(comm).step(model.named_parameters(), [grads], 1e-3)


class TestZeroMemory:
    def test_state_shards_shrink_with_world(self):
        model = make_model()
        grads = {k: np.zeros_like(v) for k, v in model.named_parameters().items()}
        sizes = {}
        for world in (2, 4):
            comm = Communicator(DeviceMesh(1, world))
            zero = Zero1AdamW(comm)
            zero.step(model.named_parameters(), [grads] * world, 1e-3)
            sizes[world] = zero.state_bytes_per_rank()
        assert sizes[4] < sizes[2]

    def test_70b_optimizer_term_shards_linearly(self):
        """At 70B the two fp32 moments are 560 GB dense; ZeRO-1 across 32
        ranks cuts the per-rank optimizer term to 17.5 GB.  (Weights and
        gradients stay replicated under stage 1 — why real 70B runs pair
        ZeRO with tensor/pipeline parallelism, as the cluster model's
        multi-node threshold reflects.)"""
        one = zero1_memory_per_rank(70e9, 1)
        many = zero1_memory_per_rank(70e9, 32)
        replicated = 70e9 * 4.0  # bf16 weights + grads, both layouts
        assert one - replicated == pytest.approx(70e9 * 8.0)
        assert many - replicated == pytest.approx(70e9 * 8.0 / 32)
        assert many < one

    def test_world_validation(self):
        with pytest.raises(ValueError):
            zero1_memory_per_rank(1e9, 0)
