"""Scale surrogate tests: calibration closure, mechanism behaviour, trade-off."""

import pytest

from repro.core.zoo import get_entry, zoo_entries
from repro.scale import (
    CALIBRATED_PARAMS,
    FLAGSHIP_SCORES,
    PAPER_TABLE_ONE,
    ScorePriceFrontier,
    SurrogateModel,
    calibration_error,
    cost_ratio_for_points,
    points_for_cost_ratio,
)
from repro.scale.surrogate import knowledge_from_score, score_from_knowledge


class TestCalibration:
    def test_reproduces_every_table_one_cell(self):
        errors = calibration_error(tolerance=0.5)
        assert max(errors.values()) <= 0.5

    def test_tight_tolerance(self):
        # fitted by construction: should be far tighter than 0.5
        errors = calibration_error(tolerance=0.05)
        assert max(errors.values()) <= 0.05

    def test_paper_table_complete(self):
        for entry in zoo_entries():
            assert entry.name in PAPER_TABLE_ONE
            assert PAPER_TABLE_ONE[entry.name]["token_base"] is not None

    def test_phi_falls_with_capacity(self):
        phi = CALIBRATED_PARAMS.phi
        assert phi["tiny"] > phi["small"] > phi["large"] > 0


class TestMechanisms:
    def setup_method(self):
        self.model = SurrogateModel()

    def test_native_scores_passthrough(self):
        for name in ("LLaMA-2-7B", "LLaMA-3-8B", "LLaMA-2-70B"):
            entry = get_entry(name)
            assert self.model.token_base(entry) == pytest.approx(
                PAPER_TABLE_ONE[name]["token_base"]
            )

    def test_cpt_gain_at_70b_loss_at_7b(self):
        assert self.model.cpt_delta(get_entry("AstroLLaMA-2-70B-AIC")) > 0
        assert self.model.cpt_delta(get_entry("AstroLLaMA-2-7B-AIC")) < -5

    def test_knowledge_score_inversion(self):
        for s in (25.0, 50.0, 75.0, 100.0):
            assert score_from_knowledge(knowledge_from_score(s)) == pytest.approx(s)

    def test_knowledge_clipped(self):
        assert knowledge_from_score(10.0) == 0.0
        assert knowledge_from_score(200.0) == 1.0

    def test_better_dataset_quality_raises_score(self):
        entry = get_entry("AstroLLaMA-3-8B-AIC")
        base = self.model.token_base(entry)
        better = self.model.with_params(
            dataset_quality={"abstract": 0.45, "aic": 0.95, "summary": 0.99}
        )
        assert better.token_base(entry) > base

    def test_zero_forgetting_means_pure_gain(self):
        entry = get_entry("AstroLLaMA-2-7B-AIC")
        no_forget = self.model.with_params(
            phi={"tiny": 0.0, "small": 0.0, "large": 0.0}
        )
        assert no_forget.cpt_delta(entry) > 0

    def test_abstract_row_has_no_instruct_scores(self):
        entry = get_entry("AstroLLaMA-2-7B-Abstract")
        scores = self.model.scores(entry)
        assert scores.token_instruct is None
        assert scores.full_instruct is None
        assert scores.token_base == pytest.approx(43.5, abs=0.5)

    def test_astro_focused_sft_closes_the_gap(self):
        """The paper's remedy: a large astronomy SFT set fixes full-instruct."""
        entry = get_entry("AstroLLaMA-2-70B-AIC")
        default = self.model.full_instruct(entry)
        remedied = self.model.full_instruct(entry, sft_astro_fraction=1.0)
        assert remedied > default
        # near-closure of the gap
        ti = self.model.token_instruct(entry)
        assert ti - remedied < (ti - default) * 0.3

    def test_native_models_unaffected_by_sft_fraction(self):
        entry = get_entry("LLaMA-2-70B")
        assert self.model.full_instruct(entry, sft_astro_fraction=1.0) == (
            self.model.full_instruct(entry)
        )


class TestTradeoff:
    def test_ten_fold_rule(self):
        assert cost_ratio_for_points(3.5) == pytest.approx(10.0)
        assert points_for_cost_ratio(10.0) == pytest.approx(3.5)

    def test_roundtrip(self):
        for pts in (0.5, 2.1, 7.0):
            assert points_for_cost_ratio(cost_ratio_for_points(pts)) == pytest.approx(pts)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            points_for_cost_ratio(0.0)

    def test_paper_claims(self):
        claims = ScorePriceFrontier().paper_claims()
        assert claims["cpt_gain_points"] == pytest.approx(2.1, abs=1e-6)
        # "quite notable": ~4x value gain
        assert 3.5 < claims["cpt_gain_value_ratio"] < 4.5
        assert claims["fraction_of_class_gap"] == pytest.approx(2 / 3, abs=1e-6)

    def test_flagship_comparison(self):
        frontier = ScorePriceFrontier()
        comp = frontier.flagship_comparison(76.0)
        # AstroLLaMA-2-70B (76.0) sits between GLM-4 (75.1) and Claude-Sonnet (76.7)
        names = [name for name, _ in comp]
        assert names[0] in ("Claude-3.0-Sonnet", "GLM-4-0520")
        assert FLAGSHIP_SCORES["Gemini-1.5-Pro-001"] > 76.0

    def test_frontier_price_monotone(self):
        f = ScorePriceFrontier()
        assert f.equivalent_price(77.0) > f.equivalent_price(74.0)
