"""Unit tests for the serving subsystem (repro.serve).

Covers the clock, the bounded admission queue, request/state plumbing,
the continuous-batching scheduler's invariants, and the headline engine
contract: outputs bit-equal to sequential
:func:`repro.model.sampling.generate` regardless of batch composition.
"""

import numpy as np
import pytest

from repro.model import ModelConfig, TransformerLM
from repro.model.sampling import GenerationConfig, generate
from repro.serve import (
    AdmissionQueue,
    InferenceRequest,
    OversizedRequestError,
    QueueFullError,
    RequestKind,
    RequestState,
    RequestStatus,
    SchedulerConfig,
    ServeConfig,
    ServeEngine,
    StepCostModel,
    VirtualClock,
    WallClock,
)
from repro.serve.metrics import Counter, Histogram, ServeMetrics


def small_model(seed=0, vocab=64, max_seq_len=96):
    return TransformerLM(
        ModelConfig(
            vocab_size=vocab, d_model=32, n_layers=2, n_heads=4,
            max_seq_len=max_seq_len,
        ),
        seed=seed,
    )


@pytest.fixture(scope="module")
def model():
    return small_model()


def req(rid, prompt, kind=RequestKind.GENERATE, **kw):
    return InferenceRequest(
        request_id=rid, prompt_ids=tuple(prompt), kind=kind, **kw
    )


def queued_state(rid="r", prompt=(1, 2, 3), seq=0, **kw):
    request = req(rid, prompt, **kw)
    return RequestState(request=request, prompt=request.prompt_ids, seq=seq)


class TestClock:
    def test_virtual_clock_advances(self):
        clock = VirtualClock()
        assert clock.now() == pytest.approx(0.0)
        clock.advance(1.5)
        assert clock.now() == pytest.approx(1.5)
        clock.advance_to(4.0)
        assert clock.now() == pytest.approx(4.0)

    def test_virtual_clock_never_goes_backwards(self):
        clock = VirtualClock()
        clock.advance(2.0)
        with pytest.raises(ValueError):
            clock.advance(-0.1)
        clock.advance_to(1.0)  # behind now: no-op, not an error
        assert clock.now() == pytest.approx(2.0)

    def test_wall_clock_advance_is_noop(self):
        clock = WallClock()
        t0 = clock.now()
        clock.advance(1000.0)
        assert clock.now() - t0 < 100.0  # did not jump by the advance


class TestRequest:
    def test_prompt_must_be_nonempty(self):
        with pytest.raises(ValueError):
            req("r", ())

    def test_prompt_coerced_to_int_tuple(self):
        r = req("r", [np.int64(3), np.int64(5)])
        assert r.prompt_ids == (3, 5)
        assert all(type(t) is int for t in r.prompt_ids)

    def test_tokens_reserved_is_prompt_plus_budget(self):
        state = queued_state(prompt=(1, 2, 3))
        state.budget = 7
        assert state.tokens_reserved() == 10

    def test_result_summary_is_plain(self):
        summary = queued_state().result_summary()
        assert summary["status"] == "queued"
        assert summary["kind"] == "generate"
        assert not any(isinstance(v, np.ndarray) for v in summary.values())


class TestAdmissionQueue:
    def test_fifo_order(self):
        q = AdmissionQueue(capacity=4)
        for i in range(3):
            q.push(queued_state(rid=f"r{i}", seq=i, priority=3 - i))
        assert [q.pop().request_id for _ in range(3)] == ["r0", "r1", "r2"]

    def test_priority_order_with_fifo_ties(self):
        q = AdmissionQueue(capacity=8, policy="priority")
        q.push(queued_state(rid="low", seq=0, priority=5))
        q.push(queued_state(rid="hi-a", seq=1, priority=1))
        q.push(queued_state(rid="hi-b", seq=2, priority=1))
        order = [q.pop().request_id for _ in range(3)]
        assert order == ["hi-a", "hi-b", "low"]

    def test_capacity_rejection_carries_retry_after(self):
        q = AdmissionQueue(capacity=2, service_time_hint=0.5)
        q.push(queued_state(rid="a", seq=0))
        q.push(queued_state(rid="b", seq=1))
        with pytest.raises(QueueFullError) as exc:
            q.push(queued_state(rid="c", seq=2))
        assert exc.value.capacity == 2
        assert exc.value.retry_after == pytest.approx(1.5)  # (2+1)*0.5

    def test_expire_overdue_marks_and_removes(self):
        q = AdmissionQueue(capacity=4)
        q.push(queued_state(rid="late", seq=0, deadline=1.0))
        q.push(queued_state(rid="fine", seq=1, deadline=10.0))
        expired = q.expire_overdue(now=2.0)
        assert [s.request_id for s in expired] == ["late"]
        assert expired[0].status is RequestStatus.EXPIRED
        assert expired[0].finish_reason == "deadline"
        assert len(q) == 1 and q.peek().request_id == "fine"

    def test_deadline_is_not_expired_at_exactly_deadline(self):
        q = AdmissionQueue(capacity=2)
        q.push(queued_state(rid="edge", seq=0, deadline=1.0))
        assert q.expire_overdue(now=1.0) == []

    def test_remove_and_requeue(self):
        q = AdmissionQueue(capacity=4)
        a, b = queued_state(rid="a", seq=0), queued_state(rid="b", seq=1)
        q.push(a)
        q.push(b)
        assert q.remove(a) is True
        assert q.remove(a) is False
        q.requeue(a)  # original seq puts it back ahead of b
        assert q.pop().request_id == "a"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(policy="lifo")
        with pytest.raises(ValueError):
            AdmissionQueue(service_time_hint=0.0)


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_buckets_cumulate(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)
        assert snap["buckets"] == {"le_1": 1, "le_10": 1, "le_inf": 1}

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_snapshot_is_plain_and_sorted(self):
        metrics = ServeMetrics()
        metrics.inc("submitted", 2)
        snap = metrics.snapshot()
        counters = [k for k, v in snap.items() if isinstance(v, int)]
        assert counters == sorted(counters)
        assert snap["submitted"] == 2
        assert set(snap["queue_depth"]) == {"count", "sum", "buckets"}


class TestEngineLifecycle:
    def test_duplicate_request_id_rejected(self, model):
        engine = ServeEngine(model)
        engine.submit(req("dup", (1, 2)))
        with pytest.raises(ValueError, match="duplicate"):
            engine.submit(req("dup", (3, 4)))

    def test_oversized_request_rejected_at_submit(self, model):
        engine = ServeEngine(
            model, config=ServeConfig(scheduler=SchedulerConfig(token_budget=8))
        )
        with pytest.raises(OversizedRequestError):
            engine.submit(
                req("big", range(1, 7),
                    generation=GenerationConfig(max_new_tokens=16))
            )
        assert ("reject", 0, "big", "oversized") in engine.events
        assert engine.metrics_snapshot()["rejected"] == 1

    def test_queue_full_rejection_logged(self, model):
        engine = ServeEngine(model, config=ServeConfig(queue_capacity=1))
        engine.submit(req("a", (1, 2)))
        with pytest.raises(QueueFullError):
            engine.submit(req("b", (3, 4)))
        assert ("reject", 0, "b", "queue-full") in engine.events
        assert "b" not in engine.states  # rejected submits are not tracked

    def test_cancel_queued_only(self, model):
        engine = ServeEngine(model)
        engine.submit(req("a", (1, 2)))
        assert engine.cancel("a") is True
        assert engine.state_of("a").status is RequestStatus.CANCELLED
        assert engine.cancel("a") is False  # already terminal
        assert engine.cancel("ghost") is False
        engine.drain()
        assert engine.state_of("a").output_ids == []

    def test_drain_returns_states_in_submission_order(self, model):
        engine = ServeEngine(model)
        for rid in ("x", "y", "z"):
            engine.submit(req(rid, (1, 2, 3), kind=RequestKind.SCORE))
        states = engine.drain()
        assert [s.request_id for s in states] == ["x", "y", "z"]
        assert all(s.status is RequestStatus.FINISHED for s in states)

    def test_timestamps_progress_on_virtual_clock(self, model):
        engine = ServeEngine(model)
        engine.submit(
            req("t", (1, 2, 3), generation=GenerationConfig(max_new_tokens=4))
        )
        state = engine.drain()[0]
        assert state.submitted_at == pytest.approx(0.0)
        assert state.admitted_at is not None
        assert state.first_token_at is not None
        assert state.finished_at > state.submitted_at


class TestEngineGenerateParity:
    """Engine decode is bit-equal to sequential generate()."""

    PROMPT = (3, 5, 7, 9, 11, 13)

    @pytest.mark.parametrize(
        "config",
        [
            GenerationConfig(max_new_tokens=8, temperature=0.0),
            GenerationConfig(max_new_tokens=8, temperature=0.9, seed=7),
            GenerationConfig(
                max_new_tokens=8, temperature=0.8, top_k=8, seed=11
            ),
            GenerationConfig(
                max_new_tokens=8, temperature=0.8, top_p=0.9, seed=13
            ),
            GenerationConfig(
                max_new_tokens=8, temperature=1.1, top_k=12, top_p=0.7, seed=3
            ),
        ],
        ids=["greedy", "sampled", "top_k", "top_p", "top_k_p"],
    )
    def test_single_request_matches_generate(self, model, config):
        reference = generate(model, list(self.PROMPT), config)
        engine = ServeEngine(model)
        engine.submit(req("r", self.PROMPT, generation=config))
        state = engine.drain()[0]
        assert list(state.output_ids) == reference

    def test_batch_composition_does_not_change_outputs(self, model):
        """Each request's tokens are independent of its batchmates."""
        configs = {
            f"r{i}": GenerationConfig(
                max_new_tokens=4 + i, temperature=0.9, seed=100 + i
            )
            for i in range(5)
        }
        prompts = {
            rid: tuple(range(2 + i, 8 + i)) for i, rid in enumerate(configs)
        }
        engine = ServeEngine(model)
        for rid, config in configs.items():
            engine.submit(req(rid, prompts[rid], generation=config))
        engine.drain()
        for rid, config in configs.items():
            reference = generate(model, list(prompts[rid]), config)
            assert list(engine.state_of(rid).output_ids) == reference

    def test_overlong_prompt_left_truncates_like_generate(self, model):
        config = GenerationConfig(max_new_tokens=6, temperature=0.0)
        long_prompt = tuple((i % 50) + 1 for i in range(150))  # > max_seq_len
        reference = generate(model, list(long_prompt), config)
        engine = ServeEngine(
            model,
            config=ServeConfig(scheduler=SchedulerConfig(token_budget=4096)),
        )
        engine.submit(req("long", long_prompt, generation=config))
        state = engine.drain()[0]
        assert list(state.output_ids) == reference
        assert state.finish_reason in ("length", "context")

    def test_score_matches_prefill_boundary_logits(self, model):
        prompt = [4, 8, 15, 16, 23]
        engine = ServeEngine(model)
        engine.submit(req("s", prompt, kind=RequestKind.SCORE))
        state = engine.drain()[0]
        assert state.finish_reason == "scored"
        assert np.array_equal(
            state.final_logits, model.prefill(prompt).last_logits
        )

    def test_streaming_callback_sees_every_token(self, model):
        config = GenerationConfig(max_new_tokens=5, temperature=0.0)
        streamed = []
        engine = ServeEngine(model)
        engine.submit(
            req("s", self.PROMPT, generation=config,
                stream=lambda rid, tok, fin: streamed.append((rid, tok, fin)))
        )
        state = engine.drain()[0]
        assert [t for _, t, _ in streamed] == list(state.output_ids)
        assert [fin for _, _, fin in streamed] == [False] * 4 + [True]
        assert all(rid == "s" for rid, _, _ in streamed)


class TestContinuousBatching:
    def test_scheduler_invariants_hold_every_step(self, model):
        config = ServeConfig(
            scheduler=SchedulerConfig(token_budget=64, max_running=3)
        )
        engine = ServeEngine(model, config=config)
        for i in range(8):
            engine.submit(
                req(f"r{i}", range(1, 6 + (i % 3)),
                    generation=GenerationConfig(max_new_tokens=4 + i % 5))
            )
        while engine.has_work:
            engine.step()
            assert len(engine.scheduler.running) <= 3
            assert engine.scheduler.reserved_tokens() <= 64
        assert all(s.done for s in engine.states.values())

    def test_short_request_overtakes_long_one(self, model):
        """Continuous batching: a late short request finishes while an
        earlier long one is still decoding."""
        engine = ServeEngine(model)
        engine.submit(
            req("long", (1, 2, 3),
                generation=GenerationConfig(max_new_tokens=30))
        )
        engine.step()  # long is admitted and decoding
        engine.submit(
            req("short", (4, 5, 6),
                generation=GenerationConfig(max_new_tokens=2))
        )
        engine.drain()
        finishes = [e for e in engine.events if e[0] == "finish"]
        assert [e[2] for e in finishes] == ["short", "long"]

    def test_head_of_line_admission_is_fifo(self, model):
        """A blocked head is never overtaken by a smaller later request."""
        config = ServeConfig(
            scheduler=SchedulerConfig(token_budget=30, max_running=4)
        )
        engine = ServeEngine(model, config=config)
        gen = GenerationConfig(max_new_tokens=10)
        engine.submit(req("fat-0", range(1, 11), generation=gen))  # 20 tokens
        engine.submit(req("fat-1", range(1, 11), generation=gen))  # blocked
        engine.submit(req("thin", (1, 2), kind=RequestKind.SCORE))  # would fit
        engine.drain()
        admits = [e[2] for e in engine.events if e[0] == "admit"]
        assert admits == ["fat-0", "fat-1", "thin"]

    def test_decode_steps_counted_only_when_decoding(self, model):
        engine = ServeEngine(model)
        engine.submit(req("s", (1, 2, 3), kind=RequestKind.SCORE))
        engine.drain()
        snap = engine.metrics_snapshot()
        assert snap["engine_steps"] == 1
        assert snap["decode_steps"] == 0

    def test_prefix_store_stats_in_snapshot(self, model):
        engine = ServeEngine(model)
        scaffold = tuple(range(1, 13))
        for i in range(4):
            engine.submit(
                req(f"s{i}", scaffold + (20 + i,), kind=RequestKind.SCORE)
            )
        engine.drain()
        snap = engine.metrics_snapshot()
        store = snap["prefix_cache"]
        assert store["misses"] >= 1
        assert store["hits"] >= 3
        assert snap["prefix_hit_tokens"] >= 3 * 12

    def test_step_cost_model_drives_virtual_clock(self, model):
        cost = StepCostModel(base=2.0, per_prefill_token=0.0, per_decode_row=0.0)
        engine = ServeEngine(model, config=ServeConfig(step_cost=cost))
        engine.submit(req("r", (1, 2, 3), kind=RequestKind.SCORE))
        engine.step()
        assert engine.clock.now() == pytest.approx(2.0)

    def test_priority_policy_admits_urgent_first(self, model):
        config = ServeConfig(
            queue_policy="priority",
            scheduler=SchedulerConfig(max_running=1, token_budget=64),
        )
        engine = ServeEngine(model, config=config)
        engine.submit(
            req("bg", (1, 2), kind=RequestKind.SCORE, priority=9)
        )
        engine.submit(
            req("urgent", (3, 4), kind=RequestKind.SCORE, priority=0)
        )
        engine.drain()
        admits = [e[2] for e in engine.events if e[0] == "admit"]
        assert admits == ["urgent", "bg"]
