"""Differential tests for the fault-injection + recovery subsystem.

The headline matrix: every fault class, injected into every parallel
configuration (DP=2, TP=2, 2-stage pipeline), recovered by the
:class:`RecoveryManager` — and the recovered run must finish **bit
identical** (parameters, AdamW moments, step counters, per-step losses)
to an uninterrupted run.  A second suite asserts replayability: the same
``(plan, seed)`` reproduces the same faults and the same recovery log.
"""

import numpy as np
import pytest

from repro.faults import (
    CHECKPOINT_CORRUPTION,
    COLLECTIVE_TRANSIENT,
    DEGRADED_LINK,
    FAULT_KINDS,
    LOSS_SPIKE,
    PREEMPTION,
    DataParallelFaultLoop,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRecoveryExhausted,
    PipelineFaultLoop,
    RecoveryManager,
    RetryPolicy,
    TensorParallelFaultLoop,
    corrupt_file,
    run_clean,
    single_fault_plans,
)

TOTAL_STEPS = 6
CKPT_EVERY = 2
# Aligned with the checkpoint cadence so checkpoint-corruption events hit a
# snapshot that actually gets written (snapshots land on even steps).
FAULT_STEP = 4
LOOP_SEED = 3
PLAN_SEED = 7

LOOPS = (DataParallelFaultLoop, TensorParallelFaultLoop, PipelineFaultLoop)

# Recovery-log actions each fault class must produce (proof the scenario
# exercised its recovery path rather than passing vacuously).
EXPECTED_ACTIONS = {
    PREEMPTION: ("preemption", "resume"),
    COLLECTIVE_TRANSIENT: ("collective-retry",),
    DEGRADED_LINK: ("degraded-link",),
    CHECKPOINT_CORRUPTION: ("checkpoint-fallback", "resume"),
    LOSS_SPIKE: ("spike-discard",),
}


@pytest.fixture(scope="module")
def clean_runs():
    """Uninterrupted reference (losses, fingerprint) per parallel config."""
    return {
        cls.name: run_clean(cls(seed=LOOP_SEED), TOTAL_STEPS) for cls in LOOPS
    }


def scenario_params():
    for cls in LOOPS:
        for kind, plan in single_fault_plans(
            FAULT_STEP, seed=PLAN_SEED, ckpt_target=cls.checkpoint_target
        ):
            yield pytest.param(cls, kind, plan, id=f"{cls.name}-{kind}")


def managed_run(loop_cls, plan, root, **mgr_kwargs):
    loop = loop_cls(seed=LOOP_SEED)
    manager = RecoveryManager(
        FaultInjector(plan), root, checkpoint_every=CKPT_EVERY, **mgr_kwargs
    )
    result = manager.run(loop, TOTAL_STEPS)
    return loop, manager, result


def assert_fingerprints_equal(actual, expected):
    assert set(actual) == set(expected)
    for key in expected:
        np.testing.assert_array_equal(actual[key], expected[key], err_msg=key)


@pytest.mark.faults
class TestDifferentialRecovery:
    """Faulted-then-recovered must be bit-identical to never-faulted."""

    @pytest.mark.parametrize("loop_cls,kind,plan", scenario_params())
    def test_fault_matrix_bit_identical(self, tmp_path, clean_runs, loop_cls, kind, plan):
        clean_losses, clean_fp = clean_runs[loop_cls.name]
        loop, manager, result = managed_run(loop_cls, plan, tmp_path)

        assert manager.injector.injected, "plan injected nothing — vacuous scenario"
        actions = result.log.actions()
        for action in EXPECTED_ACTIONS[kind]:
            assert action in actions, f"{kind} recovery never did {action}"

        assert_fingerprints_equal(loop.fingerprint(), clean_fp)
        np.testing.assert_array_equal(
            np.asarray(result.losses), np.asarray(clean_losses)
        )

    @pytest.mark.parametrize("loop_cls,kind,plan", scenario_params())
    def test_fault_matrix_replays_identically(self, tmp_path, loop_cls, kind, plan):
        loop_a, mgr_a, res_a = managed_run(loop_cls, plan, tmp_path / "a")
        loop_b, mgr_b, res_b = managed_run(loop_cls, plan, tmp_path / "b")

        assert res_a.log.to_json() == res_b.log.to_json()
        assert mgr_a.injector.injected == mgr_b.injector.injected
        assert res_a.restarts == res_b.restarts
        assert_fingerprints_equal(loop_a.fingerprint(), loop_b.fingerprint())


class TestRecoveryPaths:
    """Targeted behaviors of individual recovery mechanisms (fast: TP loop)."""

    def test_preemption_resumes_from_latest_snapshot(self, tmp_path):
        plan = FaultPlan([FaultEvent(PREEMPTION, 5)], seed=PLAN_SEED)
        _, _, result = managed_run(TensorParallelFaultLoop, plan, tmp_path)
        resumes = [e for e in result.log.events if e.action == "resume"]
        assert len(resumes) == 1
        # preempted at step 5: snapshots exist for 0, 2, 4 -> resume from 4
        assert resumes[0].detail["snapshot"] == "step-00000004"
        assert result.restarts == 1

    def test_corruption_falls_back_to_previous_snapshot(self, tmp_path):
        plan = FaultPlan(
            [
                FaultEvent(
                    CHECKPOINT_CORRUPTION,
                    4,
                    target=TensorParallelFaultLoop.checkpoint_target,
                ),
                FaultEvent(PREEMPTION, 5),
            ],
            seed=PLAN_SEED,
        )
        _, _, result = managed_run(TensorParallelFaultLoop, plan, tmp_path)
        fallbacks = [e for e in result.log.events if e.action == "checkpoint-fallback"]
        resumes = [e for e in result.log.events if e.action == "resume"]
        assert [e.detail["snapshot"] for e in fallbacks] == ["step-00000004"]
        assert [e.detail["snapshot"] for e in resumes] == ["step-00000002"]

    def test_truncated_shard_also_detected(self, tmp_path, clean_runs):
        plan = FaultPlan(
            [
                FaultEvent(
                    CHECKPOINT_CORRUPTION,
                    4,
                    target=TensorParallelFaultLoop.checkpoint_target,
                    mode="truncate",
                ),
                FaultEvent(PREEMPTION, 5),
            ],
            seed=PLAN_SEED,
        )
        loop, _, result = managed_run(TensorParallelFaultLoop, plan, tmp_path)
        assert result.log.count("checkpoint-fallback") == 1
        assert_fingerprints_equal(loop.fingerprint(), clean_runs["tp"][1])

    def test_transient_retry_count_matches_plan(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(COLLECTIVE_TRANSIENT, 2, attempts=3)], seed=PLAN_SEED
        )
        _, _, result = managed_run(TensorParallelFaultLoop, plan, tmp_path)
        assert result.log.count("collective-retry") == 3
        assert result.restarts == 0
        assert result.simulated_delay_seconds > 0.0

    def test_spike_is_discarded_not_applied(self, tmp_path, clean_runs):
        plan = FaultPlan([FaultEvent(LOSS_SPIKE, 1, factor=1e8)], seed=PLAN_SEED)
        loop, _, result = managed_run(TensorParallelFaultLoop, plan, tmp_path)
        spikes = [e for e in result.log.events if e.action == "spike-discard"]
        assert len(spikes) == 1
        assert spikes[0].detail["grad_norm"] > 1e3
        assert_fingerprints_equal(loop.fingerprint(), clean_runs["tp"][1])

    def test_degraded_link_slows_comm_but_not_math(self, tmp_path):
        baseline_loop, _, _ = managed_run(
            TensorParallelFaultLoop, FaultPlan([], seed=PLAN_SEED), tmp_path / "base"
        )
        plan = FaultPlan(
            [FaultEvent(DEGRADED_LINK, 1, factor=50.0, duration=3)], seed=PLAN_SEED
        )
        degraded_loop, _, _ = managed_run(
            TensorParallelFaultLoop, plan, tmp_path / "slow"
        )
        base_s = baseline_loop.communicators()[0].stats.simulated_seconds
        slow_s = degraded_loop.communicators()[0].stats.simulated_seconds
        assert slow_s > base_s
        assert_fingerprints_equal(
            degraded_loop.fingerprint(), baseline_loop.fingerprint()
        )

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(COLLECTIVE_TRANSIENT, 1, attempts=10)], seed=PLAN_SEED
        )
        with pytest.raises(FaultRecoveryExhausted):
            managed_run(
                TensorParallelFaultLoop,
                plan,
                tmp_path,
                retry=RetryPolicy(max_attempts=3),
            )

    def test_restart_budget_exhaustion_raises(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(PREEMPTION, s) for s in (1, 2, 3)], seed=PLAN_SEED
        )
        with pytest.raises(FaultRecoveryExhausted):
            managed_run(TensorParallelFaultLoop, plan, tmp_path, max_restarts=2)


class TestPlanAndInjector:
    """Plan validation/serialization and injector determinism."""

    def test_single_fault_plans_cover_every_kind(self):
        kinds = [kind for kind, _ in single_fault_plans(FAULT_STEP)]
        assert sorted(kinds) == sorted(FAULT_KINDS)

    def test_plan_roundtrips_through_dict(self):
        for _, plan in single_fault_plans(FAULT_STEP, seed=11):
            clone = FaultPlan.from_dict(plan.to_dict())
            assert clone.seed == plan.seed
            assert clone.events == plan.events

    def test_plan_rejects_bad_events(self):
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent("meteor-strike", 0)])
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent(DEGRADED_LINK, 0, factor=0.5)])
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent(LOSS_SPIKE, 0, factor=1.0)])
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent(CHECKPOINT_CORRUPTION, 0, mode="shred")])
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent(PREEMPTION, -1)])

    def test_plan_sorts_events_by_step(self):
        plan = FaultPlan(
            [FaultEvent(LOSS_SPIKE, 5, factor=10.0), FaultEvent(PREEMPTION, 1)]
        )
        assert [e.step for e in plan.events] == [1, 5]

    def test_injector_reset_replays_same_faults(self, tmp_path):
        plan = FaultPlan(
            [
                FaultEvent(COLLECTIVE_TRANSIENT, 1, attempts=2),
                FaultEvent(LOSS_SPIKE, 2, factor=1e6),
            ],
            seed=PLAN_SEED,
        )
        injector = FaultInjector(plan)
        loop = TensorParallelFaultLoop(seed=LOOP_SEED)
        manager = RecoveryManager(injector, tmp_path / "a", checkpoint_every=CKPT_EVERY)
        manager.run(loop, TOTAL_STEPS)
        first = list(injector.injected)
        manager.checkpoint_root = tmp_path / "b"
        manager.run(TensorParallelFaultLoop(seed=LOOP_SEED), TOTAL_STEPS)
        assert injector.injected == first

    def test_events_fire_at_most_once(self, tmp_path):
        # preemption at step 2: after resume the run passes step 2 again,
        # but the event must not re-fire (else the run would never finish).
        plan = FaultPlan([FaultEvent(PREEMPTION, 2)], seed=PLAN_SEED)
        _, manager, result = managed_run(TensorParallelFaultLoop, plan, tmp_path)
        assert result.restarts == 1
        assert len(manager.injector.injected) == 1

    def test_corrupt_file_is_deterministic(self, tmp_path):
        payload = bytes(range(256)) * 4
        for mode in ("flip", "truncate"):
            # the damage offset is keyed by (seed, file name), so identical
            # names in different directories must corrupt identically
            (tmp_path / f"a-{mode}").mkdir()
            (tmp_path / f"b-{mode}").mkdir()
            a = tmp_path / f"a-{mode}" / "shard.bin"
            b = tmp_path / f"b-{mode}" / "shard.bin"
            a.write_bytes(payload)
            b.write_bytes(payload)
            corrupt_file(a, mode, seed=5)
            corrupt_file(b, mode, seed=5)
            assert a.read_bytes() == b.read_bytes()
            assert a.read_bytes() != payload

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.25)
        delays = [policy.delay(seed=9, step=3, attempt=a) for a in (1, 2, 3, 4)]
        assert delays == [policy.delay(seed=9, step=3, attempt=a) for a in (1, 2, 3, 4)]
        for attempt, delay in enumerate(delays, start=1):
            raw = min(1.0 * 2.0 ** (attempt - 1), 5.0)
            assert raw <= delay <= raw * 1.25
        assert policy.delay(seed=9, step=3, attempt=1) != pytest.approx(
            policy.delay(seed=10, step=3, attempt=1)
        )
