"""Prefix-cache / batched-scoring tests for the shared-prompt eval path."""

import numpy as np
import pytest

from repro.model import (
    GenerationConfig,
    ModelConfig,
    PrefixCache,
    PrefixCacheStore,
    TransformerLM,
    cache_length,
    common_prefix_len,
    fork_cache,
    generate,
    shared_prefix,
)


def small_model(seed=0, vocab=120, max_seq_len=96):
    return TransformerLM(
        ModelConfig(
            vocab_size=vocab, d_model=32, n_layers=2, n_heads=4,
            max_seq_len=max_seq_len,
        ),
        seed=seed,
    )


def random_ids(rng, n, vocab=120):
    return rng.integers(1, vocab, size=n).tolist()


class TestHelpers:
    def test_common_prefix_len(self):
        assert common_prefix_len([1, 2, 3], [1, 2, 9]) == 2
        assert common_prefix_len([1, 2], [1, 2, 3]) == 2
        assert common_prefix_len([5], [6]) == 0
        assert common_prefix_len([], [1]) == 0

    def test_shared_prefix(self):
        assert shared_prefix([[1, 2, 3, 4], [1, 2, 3, 9], [1, 2, 7]]) == [1, 2]
        assert shared_prefix([[1, 2], [3]]) == []
        assert shared_prefix([]) == []
        assert shared_prefix([[4, 5, 6]]) == [4, 5, 6]

    def test_cache_length(self):
        model = small_model()
        assert cache_length(model.new_cache()) == 0
        pc = model.prefill([1, 2, 3, 4, 5])
        assert cache_length(pc.cache) == 5


class TestFork:
    def test_fork_trims_and_broadcasts(self):
        model = small_model()
        pc = model.prefill([1, 2, 3, 4, 5, 6])
        forked = pc.fork(batch_size=3, length=4)
        for layer in forked:
            assert layer["k"].shape[0] == 3
            assert layer["k"].shape[2] == 4
        with pytest.raises(ValueError):
            pc.fork(length=7)

    def test_extending_fork_leaves_parent_intact(self):
        model = small_model()
        rng = np.random.default_rng(0)
        ids = random_ids(rng, 10)
        pc = model.prefill(ids)
        child = pc.fork(batch_size=1)
        model.forward(np.asarray([[7, 8]]), start_pos=pc.length, cache=child)
        assert cache_length(child) == pc.length + 2
        assert cache_length(pc.cache) == pc.length

    def test_fork_rejects_multi_row_broadcast(self):
        model = small_model()
        pc = model.prefill([1, 2, 3])
        two = pc.fork(batch_size=2)
        with pytest.raises(ValueError):
            fork_cache(two, batch_size=3)


class TestPrefillEquivalence:
    def test_prefix_plus_suffix_matches_full_forward(self):
        model = small_model(seed=1)
        rng = np.random.default_rng(2)
        prefix_ids = random_ids(rng, 30)
        pc = model.prefill(prefix_ids)
        for n in (1, 4, 9):
            suffix = random_ids(rng, n)
            full = model.next_token_logits(np.asarray(prefix_ids + suffix))
            cached = model.forward(
                np.asarray(suffix, dtype=np.int64),
                start_pos=pc.length,
                cache=pc.fork(batch_size=1),
            )[0, -1]
            np.testing.assert_allclose(cached, full, atol=1e-5)

    def test_prefill_last_logits_match(self):
        model = small_model(seed=1)
        ids = [3, 4, 5, 6]
        pc = model.prefill(ids)
        np.testing.assert_allclose(
            pc.last_logits, model.next_token_logits(np.asarray(ids)), atol=1e-6
        )

    def test_empty_prefill(self):
        model = small_model()
        pc = model.prefill([])
        assert pc.length == 0 and pc.last_logits is None


class TestBatchedNextTokenLogits:
    def test_matches_sequential_with_ragged_suffixes(self):
        model = small_model(seed=3)
        rng = np.random.default_rng(4)
        prefix_ids = random_ids(rng, 25)
        pc = model.prefill(prefix_ids)
        suffixes = [random_ids(rng, int(n)) for n in rng.integers(1, 12, size=9)]
        suffixes.append([])  # whole prompt served by the cache
        batched = model.next_token_logits_many(suffixes, prefix=pc, pad_id=0)
        assert batched.shape == (len(suffixes), model.config.vocab_size)
        for row, suffix in zip(batched, suffixes):
            seq = model.next_token_logits(np.asarray(prefix_ids + suffix))
            np.testing.assert_allclose(row, seq, atol=1e-5)

    def test_no_prefix_batch(self):
        model = small_model(seed=3)
        rng = np.random.default_rng(5)
        prompts = [random_ids(rng, int(n)) for n in rng.integers(2, 10, size=5)]
        batched = model.next_token_logits_many(prompts, pad_id=0)
        for row, prompt in zip(batched, prompts):
            np.testing.assert_allclose(
                row, model.next_token_logits(np.asarray(prompt)), atol=1e-5
            )

    def test_empty_suffix_without_prefix_raises(self):
        model = small_model()
        with pytest.raises(ValueError):
            model.next_token_logits_many([[]])

    def test_empty_batch(self):
        model = small_model()
        out = model.next_token_logits_many([])
        assert out.shape == (0, model.config.vocab_size)


class TestGenerateWithPrefix:
    def test_same_tokens_as_cold_generate(self):
        model = small_model(seed=6)
        rng = np.random.default_rng(7)
        scaffold = random_ids(rng, 20)
        pc = model.prefill(scaffold)
        for _ in range(3):
            prompt = scaffold + random_ids(rng, 6)
            cold = generate(model, prompt, GenerationConfig(max_new_tokens=8))
            warm = generate(
                model, prompt, GenerationConfig(max_new_tokens=8), prefix=pc
            )
            assert cold == warm

    def test_whole_prompt_covered_still_forwards_last_token(self):
        model = small_model(seed=6)
        prompt = [1, 2, 3, 4, 5]
        pc = model.prefill(prompt)
        cold = generate(model, prompt, GenerationConfig(max_new_tokens=5))
        warm = generate(model, prompt, GenerationConfig(max_new_tokens=5), prefix=pc)
        assert cold == warm

    def test_disjoint_prefix_is_ignored(self):
        model = small_model(seed=6)
        pc = model.prefill([50, 51, 52])
        cold = generate(model, [1, 2, 3], GenerationConfig(max_new_tokens=4))
        warm = generate(model, [1, 2, 3], GenerationConfig(max_new_tokens=4), prefix=pc)
        assert cold == warm


class TestDebugCacheGuard:
    """REPRO_DEBUG_CACHE: the runtime counterpart of lint rule R1."""

    def test_forked_views_are_read_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CACHE", "1")
        model = small_model()
        pc = model.prefill([1, 2, 3, 4])
        forked = pc.fork(batch_size=2)
        with pytest.raises(ValueError):
            # lint: disable=R1 (intentional violation: proves the guard trips)
            forked[0]["k"][..., 0] = 0.0
        # the parent's own arrays keep their flags
        assert pc.cache[0]["k"].flags.writeable

    def test_guard_is_opt_in(self, monkeypatch):
        for off in ("0", "false", "off", ""):
            monkeypatch.setenv("REPRO_DEBUG_CACHE", off)
            model = small_model()
            forked = model.prefill([1, 2]).fork()
            assert forked[0]["k"].flags.writeable

    def test_extension_still_works_under_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CACHE", "1")
        model = small_model()
        pc = model.prefill([1, 2, 3])
        child = pc.fork(batch_size=1)
        model.forward(np.asarray([[7, 8]]), start_pos=pc.length, cache=child)
        assert cache_length(child) == pc.length + 2
        assert cache_length(pc.cache) == pc.length

    def test_batched_scoring_unchanged_under_guard(self, monkeypatch):
        model = small_model(seed=3)
        rng = np.random.default_rng(11)
        prefix_ids = random_ids(rng, 12)
        suffixes = [random_ids(rng, 4), random_ids(rng, 2)]
        pc = model.prefill(prefix_ids)
        plain = model.next_token_logits_many(suffixes, prefix=pc)
        monkeypatch.setenv("REPRO_DEBUG_CACHE", "1")
        guarded = model.next_token_logits_many(suffixes, prefix=pc)
        np.testing.assert_array_equal(plain, guarded)


class TestPrefixCacheStore:
    def test_match_prefers_longest_overlap(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=4)
        short = store.put(model.prefill([1, 2]))
        long = store.put(model.prefill([1, 2, 3, 4]))
        entry, overlap = store.match([1, 2, 3, 4, 9])
        assert entry is long and overlap == 4
        entry, overlap = store.match([1, 2, 9])
        assert entry is short or overlap == 2

    def test_miss_and_eviction(self):
        model = small_model()
        store = PrefixCacheStore(max_entries=2)
        store.put(model.prefill([1]))
        store.put(model.prefill([2]))
        store.put(model.prefill([3]))
        assert len(store) == 2
        assert store.match([1, 5]) is None  # evicted
        assert store.misses == 1
        assert store.match([3, 5]) is not None
        assert store.hits == 1

    def test_min_overlap_threshold(self):
        store = PrefixCacheStore()
        store.put(PrefixCache((1, 2, 3), [], None))
        assert store.match([1, 9], min_overlap=2) is None
        assert store.match([1, 2, 9], min_overlap=2) is not None
