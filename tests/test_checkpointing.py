"""Resume-exactness and integrity tests for training-state checkpoints."""

import numpy as np
import pytest

from repro.model import ModelConfig, TransformerLM
from repro.train import AdamW, Trainer, TrainingConfig
from repro.train.checkpointing import (
    CheckpointIntegrityError,
    checkpoint_dir_for_step,
    latest_valid_checkpoint,
    list_checkpoints,
    load_state_arrays,
    load_training_state,
    save_state_arrays,
    save_training_state,
    set_post_save_hook,
    verify_checkpoint,
)


def make_model(seed=0):
    return TransformerLM(
        ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=16),
        seed=seed,
    )


def batches(n, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        x = rng.integers(1, 32, size=(4, 8))
        out.append((x, np.roll(x, -1, axis=1), None))
    return out


def run_steps(model, optimizer, batch_list, lr=1e-3):
    from repro.train.optimizer import clip_grad_norm

    for x, t, _ in batch_list:
        model.zero_grad()
        model.loss_and_backward(x, t)
        clip_grad_norm(model.named_gradients(), 1.0)
        optimizer.step(lr)


class TestResumeExactness:
    def test_resumed_run_bit_identical(self, tmp_path):
        all_batches = batches(10)

        # uninterrupted run
        m_full = make_model(seed=1)
        opt_full = AdamW(m_full.named_parameters(), m_full.named_gradients())
        run_steps(m_full, opt_full, all_batches)

        # interrupted at step 5, checkpointed, resumed in fresh objects
        m_a = make_model(seed=1)
        opt_a = AdamW(m_a.named_parameters(), m_a.named_gradients())
        run_steps(m_a, opt_a, all_batches[:5])
        save_training_state(tmp_path / "ckpt", m_a, opt_a, step=5, extra={"note": "x"})

        m_b = make_model(seed=99)  # different init: must be overwritten
        opt_b = AdamW(m_b.named_parameters(), m_b.named_gradients())
        meta = load_training_state(tmp_path / "ckpt", m_b, opt_b)
        assert meta["step"] == 5
        assert meta["extra"] == {"note": "x"}
        run_steps(m_b, opt_b, all_batches[5:])

        full = m_full.named_parameters()
        resumed = m_b.named_parameters()
        for key in full:
            np.testing.assert_array_equal(full[key], resumed[key])

    def test_optimizer_moments_restored(self, tmp_path):
        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        run_steps(m, opt, batches(3))
        save_training_state(tmp_path / "c", m, opt, step=3)

        m2 = make_model(seed=7)
        opt2 = AdamW(m2.named_parameters(), m2.named_gradients())
        load_training_state(tmp_path / "c", m2, opt2)
        assert opt2.step_count == opt.step_count
        for key in opt.m:
            np.testing.assert_array_equal(opt.m[key], opt2.m[key])
            np.testing.assert_array_equal(opt.v[key], opt2.v[key])

    def test_mismatched_model_rejected(self, tmp_path):
        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        save_training_state(tmp_path / "c", m, opt, step=0)

        other = TransformerLM(
            ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2, max_seq_len=16)
        )
        opt_other = AdamW(other.named_parameters(), other.named_gradients())
        with pytest.raises(KeyError):
            load_training_state(tmp_path / "c", other, opt_other)

    def test_format_version_checked(self, tmp_path):
        import json

        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        save_training_state(tmp_path / "c", m, opt, step=0)
        meta_path = tmp_path / "c" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_training_state(tmp_path / "c", m, opt)


class TestManifestIntegrity:
    """SHA-256 manifests: corrupt shards are detected before loading."""

    def _snapshot(self, tmp_path, name="c", step=0):
        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        run_steps(m, opt, batches(2))
        save_training_state(tmp_path / name, m, opt, step=step)
        return tmp_path / name, m, opt

    def test_intact_snapshot_verifies_clean(self, tmp_path):
        path, _, _ = self._snapshot(tmp_path)
        assert (path / "manifest.json").exists()
        assert verify_checkpoint(path) == []

    def test_flipped_byte_detected_and_load_refused(self, tmp_path):
        path, m, opt = self._snapshot(tmp_path)
        shard = path / "optimizer.npz"
        data = bytearray(shard.read_bytes())
        data[len(data) // 2] ^= 0xFF
        shard.write_bytes(bytes(data))
        assert verify_checkpoint(path) == ["optimizer.npz"]
        with pytest.raises(CheckpointIntegrityError):
            load_training_state(path, m, opt)

    def test_truncated_shard_detected(self, tmp_path):
        path, _, _ = self._snapshot(tmp_path)
        shard = path / "model.npz"
        shard.write_bytes(shard.read_bytes()[:-16])
        assert verify_checkpoint(path) == ["model.npz"]

    def test_missing_file_counts_as_corrupt(self, tmp_path):
        path, _, _ = self._snapshot(tmp_path)
        (path / "meta.json").unlink()
        assert "meta.json" in verify_checkpoint(path)

    def test_pre_manifest_snapshot_verifies_trivially(self, tmp_path):
        path, _, _ = self._snapshot(tmp_path)
        (path / "manifest.json").unlink()
        assert verify_checkpoint(path) == []

    def test_post_save_hook_fires_and_restores(self, tmp_path):
        calls = []
        previous = set_post_save_hook(lambda path, step: calls.append((path, step)))
        try:
            self._snapshot(tmp_path, step=7)
        finally:
            assert set_post_save_hook(previous) is not None
        assert [(p.name, s) for p, s in calls] == [("c", 7)]

    def test_state_arrays_roundtrip(self, tmp_path):
        arrays = {
            "rank0::w": np.arange(6.0).reshape(2, 3),
            "rank1::w": np.full((2, 3), 0.5),
        }
        save_state_arrays(tmp_path / "s", arrays, meta={"step": 3})
        loaded, extra = load_state_arrays(tmp_path / "s")
        assert extra == {"step": 3}
        for key, arr in arrays.items():
            np.testing.assert_array_equal(loaded[key], arr)
        shard = tmp_path / "s" / "state.npz"
        shard.write_bytes(shard.read_bytes()[:-8])
        with pytest.raises(CheckpointIntegrityError):
            load_state_arrays(tmp_path / "s")


class TestSnapshotDiscovery:
    """step-NNNNNNNN directory layout + newest-intact fallback walk."""

    def _write_snapshots(self, root, steps):
        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        for step in steps:
            save_training_state(checkpoint_dir_for_step(root, step), m, opt, step=step)

    def test_list_checkpoints_sorted_and_filtered(self, tmp_path):
        self._write_snapshots(tmp_path, [4, 0, 2])
        (tmp_path / "not-a-snapshot").mkdir()
        assert [s for s, _ in list_checkpoints(tmp_path)] == [0, 2, 4]

    def test_latest_valid_prefers_newest(self, tmp_path):
        self._write_snapshots(tmp_path, [0, 2, 4])
        step, path, skipped = latest_valid_checkpoint(tmp_path)
        assert step == 4
        assert path.name == "step-00000004"
        assert skipped == []

    def test_latest_valid_skips_corrupt_newest(self, tmp_path):
        self._write_snapshots(tmp_path, [0, 2, 4])
        shard = checkpoint_dir_for_step(tmp_path, 4) / "optimizer.npz"
        data = bytearray(shard.read_bytes())
        data[0] ^= 0xFF
        shard.write_bytes(bytes(data))
        step, path, skipped = latest_valid_checkpoint(tmp_path)
        assert step == 2
        assert [s for s, _ in skipped] == [4]

    def test_latest_valid_none_when_all_corrupt(self, tmp_path):
        self._write_snapshots(tmp_path, [0])
        (checkpoint_dir_for_step(tmp_path, 0) / "model.npz").unlink()
        assert latest_valid_checkpoint(tmp_path) is None

    def test_latest_valid_empty_root(self, tmp_path):
        assert latest_valid_checkpoint(tmp_path / "nowhere") is None
