"""Resume-exactness tests for training-state checkpoints."""

import numpy as np
import pytest

from repro.model import ModelConfig, TransformerLM
from repro.train import AdamW, Trainer, TrainingConfig
from repro.train.checkpointing import load_training_state, save_training_state


def make_model(seed=0):
    return TransformerLM(
        ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2, max_seq_len=16),
        seed=seed,
    )


def batches(n, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        x = rng.integers(1, 32, size=(4, 8))
        out.append((x, np.roll(x, -1, axis=1), None))
    return out


def run_steps(model, optimizer, batch_list, lr=1e-3):
    from repro.train.optimizer import clip_grad_norm

    for x, t, _ in batch_list:
        model.zero_grad()
        model.loss_and_backward(x, t)
        clip_grad_norm(model.named_gradients(), 1.0)
        optimizer.step(lr)


class TestResumeExactness:
    def test_resumed_run_bit_identical(self, tmp_path):
        all_batches = batches(10)

        # uninterrupted run
        m_full = make_model(seed=1)
        opt_full = AdamW(m_full.named_parameters(), m_full.named_gradients())
        run_steps(m_full, opt_full, all_batches)

        # interrupted at step 5, checkpointed, resumed in fresh objects
        m_a = make_model(seed=1)
        opt_a = AdamW(m_a.named_parameters(), m_a.named_gradients())
        run_steps(m_a, opt_a, all_batches[:5])
        save_training_state(tmp_path / "ckpt", m_a, opt_a, step=5, extra={"note": "x"})

        m_b = make_model(seed=99)  # different init: must be overwritten
        opt_b = AdamW(m_b.named_parameters(), m_b.named_gradients())
        meta = load_training_state(tmp_path / "ckpt", m_b, opt_b)
        assert meta["step"] == 5
        assert meta["extra"] == {"note": "x"}
        run_steps(m_b, opt_b, all_batches[5:])

        full = m_full.named_parameters()
        resumed = m_b.named_parameters()
        for key in full:
            np.testing.assert_array_equal(full[key], resumed[key])

    def test_optimizer_moments_restored(self, tmp_path):
        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        run_steps(m, opt, batches(3))
        save_training_state(tmp_path / "c", m, opt, step=3)

        m2 = make_model(seed=7)
        opt2 = AdamW(m2.named_parameters(), m2.named_gradients())
        load_training_state(tmp_path / "c", m2, opt2)
        assert opt2.step_count == opt.step_count
        for key in opt.m:
            np.testing.assert_array_equal(opt.m[key], opt2.m[key])
            np.testing.assert_array_equal(opt.v[key], opt2.v[key])

    def test_mismatched_model_rejected(self, tmp_path):
        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        save_training_state(tmp_path / "c", m, opt, step=0)

        other = TransformerLM(
            ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2, max_seq_len=16)
        )
        opt_other = AdamW(other.named_parameters(), other.named_gradients())
        with pytest.raises(KeyError):
            load_training_state(tmp_path / "c", other, opt_other)

    def test_format_version_checked(self, tmp_path):
        import json

        m = make_model()
        opt = AdamW(m.named_parameters(), m.named_gradients())
        save_training_state(tmp_path / "c", m, opt, step=0)
        meta_path = tmp_path / "c" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_training_state(tmp_path / "c", m, opt)
