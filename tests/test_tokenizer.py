"""Tokenizer tests: BPE training/round-trips, word tokenizer conventions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizer import BPETokenizer, TextNormalizer, Vocabulary, WordTokenizer
from repro.tokenizer.bpe import SPACE_MARKER, pretokenize
from repro.tokenizer.vocab import SpecialTokens

CORPUS = [
    "the star is a bright sun in the night sky",
    "the planet orbits the star every ninety two days",
    "astronomers measure the brightness of the star",
    "the night sky is full of bright stars and planets",
    "Answer : A Answer : B Answer : C Answer : D",
]


class TestVocabulary:
    def test_specials_occupy_first_ids(self):
        v = Vocabulary()
        assert v.pad_id == 0 and v.bos_id == 1 and v.eos_id == 2 and v.unk_id == 3

    def test_add_is_idempotent(self):
        v = Vocabulary()
        a = v.add("star")
        b = v.add("star")
        assert a == b and len(v) == 5

    def test_unknown_falls_back_to_unk(self):
        v = Vocabulary()
        assert v.id_of("nonexistent") == v.unk_id
        with pytest.raises(KeyError):
            v.strict_id_of("nonexistent")

    def test_roundtrip_serialization(self):
        v = Vocabulary(SpecialTokens())
        v.add_all(["alpha", "beta", "gamma"])
        v2 = Vocabulary.from_dict(v.to_dict())
        assert len(v2) == len(v)
        assert v2.strict_id_of("beta") == v.strict_id_of("beta")


class TestPretokenize:
    def test_marks_space_prefixed_words(self):
        words = pretokenize("the star shines")
        assert words[0] == "the"
        assert words[1] == SPACE_MARKER + "star"

    def test_punctuation_is_separate(self):
        words = pretokenize("star: bright")
        assert SPACE_MARKER not in words[0]
        assert words[1] == ":"

    def test_empty_text(self):
        assert pretokenize("") == []


class TestBPE:
    def test_trains_and_roundtrips(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=200)
        for text in CORPUS:
            normalized = tok.normalizer(text)
            assert tok.decode(tok.encode(text)) == normalized

    def test_merges_reduce_sequence_length(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=300)
        naive_len = len(pretokenize(CORPUS[0])) * 8  # chars-ish upper bound
        assert len(tok.encode(CORPUS[0])) < naive_len

    def test_bos_eos(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=150)
        ids = tok.encode("the star", add_bos=True, add_eos=True)
        assert ids[0] == tok.vocab.bos_id and ids[-1] == tok.vocab.eos_id

    def test_vocab_size_honoured(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=120)
        assert len(tok.vocab) <= 120

    def test_too_small_vocab_raises(self):
        with pytest.raises(ValueError):
            BPETokenizer.train(CORPUS, vocab_size=5)

    def test_serialization_roundtrip(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=150)
        tok2 = BPETokenizer.from_dict(tok.to_dict())
        text = "bright stars orbit"
        assert tok2.encode(text) == tok.encode(text)

    def test_unknown_chars_map_to_unk(self):
        tok = BPETokenizer.train(CORPUS, vocab_size=150)
        ids = tok.encode("étoile")  # 'é' absent from training corpus
        assert tok.vocab.unk_id in ids

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127), min_size=0, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_encode_never_crashes(self, text):
        tok = BPETokenizer.train(CORPUS, vocab_size=150)
        ids = tok.encode(text)
        assert all(0 <= i < len(tok.vocab) for i in ids)


class TestWordTokenizer:
    def test_roundtrip_bare(self):
        tok = WordTokenizer.train(CORPUS, vocab_size=500, space_prefix=False)
        text = "the star is bright"
        assert tok.decode(tok.encode(text)) == text

    def test_roundtrip_space_prefix(self):
        tok = WordTokenizer.train(CORPUS, vocab_size=500, space_prefix=True)
        text = "the star is bright"
        assert tok.decode(tok.encode(text)) == text

    def test_conventions_differ_in_answer_tokens(self):
        bare = WordTokenizer.train(CORPUS, vocab_size=500, space_prefix=False)
        spaced = WordTokenizer.train(CORPUS, vocab_size=500, space_prefix=True)
        assert "bare" in bare.answer_token_candidates("A")
        assert "space-prefixed" in spaced.answer_token_candidates("A")
        # the bare tokenizer has no space-prefixed letters at all
        assert "space-prefixed" not in bare.answer_token_candidates("A")

    def test_vocab_cap(self):
        tok = WordTokenizer.train(CORPUS, vocab_size=10)
        assert len(tok.vocab) <= 10

    def test_oov_maps_to_unk(self):
        tok = WordTokenizer.train(CORPUS, vocab_size=500)
        ids = tok.encode("zebra quantum")
        assert ids == [tok.vocab.unk_id, tok.vocab.unk_id]

    def test_serialization_roundtrip(self):
        tok = WordTokenizer.train(CORPUS, vocab_size=500, space_prefix=True)
        tok2 = WordTokenizer.from_dict(tok.to_dict())
        assert tok2.encode(CORPUS[0]) == tok.encode(CORPUS[0])
        assert tok2.space_prefix is True

    def test_deterministic_vocab(self):
        a = WordTokenizer.train(CORPUS, vocab_size=500)
        b = WordTokenizer.train(list(CORPUS), vocab_size=500)
        assert a.encode(CORPUS[2]) == b.encode(CORPUS[2])


class TestNormalizer:
    def test_collapse_whitespace(self):
        n = TextNormalizer()
        assert n("a   b\n\nc") == "a b c"

    def test_lowercase(self):
        n = TextNormalizer(lowercase=True)
        assert n("The STAR") == "the star"

    def test_strip_control(self):
        n = TextNormalizer()
        assert n("a\x00b") == "a b"
