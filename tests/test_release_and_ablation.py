"""Tests: benchmark release tooling, ablation sweeps, the §VII forecast."""

import json

import pytest

from repro.analysis import (
    capacity_frontier,
    dataset_quality_sweep,
    sft_remedy_sweep,
)
from repro.core import forecast_full_text_cpt
from repro.corpus import make_astro_knowledge
from repro.mcq import (
    ScoringServer,
    build_benchmark,
    export_answer_key,
    export_public,
    verify_release_integrity,
)
from repro.mcq.release import _fingerprint


@pytest.fixture(scope="module")
def bench():
    kb = make_astro_knowledge(n_facts=120, seed=13)
    return build_benchmark(kb, n_articles=12, dev_size=4, seed=14)


class TestRelease:
    def test_public_export_leaks_nothing(self, bench, tmp_path):
        n = export_public(bench, tmp_path / "public.json")
        assert n == len(bench)
        assert verify_release_integrity(tmp_path / "public.json") == []
        raw = (tmp_path / "public.json").read_text()
        assert "correct_idx" not in raw
        assert "explanation" not in raw

    def test_integrity_catches_leak(self, bench, tmp_path):
        export_public(bench, tmp_path / "p.json")
        data = json.loads((tmp_path / "p.json").read_text())
        data["questions"][0]["correct_idx"] = 2
        (tmp_path / "p.json").write_text(json.dumps(data))
        problems = verify_release_integrity(tmp_path / "p.json")
        assert any("correct_idx" in p for p in problems)

    def test_scoring_server_roundtrip(self, bench, tmp_path):
        export_answer_key(bench, tmp_path / "key.json")
        server = ScoringServer.from_key_file(tmp_path / "key.json")
        perfect = {_fingerprint(q): q.correct_idx for q in bench.questions}
        result = server.score(perfect)
        assert result["accuracy"] == 1.0
        assert result["n"] == len(bench)

    def test_scoring_counts_none_wrong(self, bench, tmp_path):
        export_answer_key(bench, tmp_path / "key.json")
        server = ScoringServer.from_key_file(tmp_path / "key.json")
        preds = {_fingerprint(q): None for q in bench.questions}
        assert server.score(preds)["accuracy"] == 0.0

    def test_scoring_refuses_probing_batches(self, bench, tmp_path):
        export_answer_key(bench, tmp_path / "key.json")
        server = ScoringServer.from_key_file(tmp_path / "key.json")
        one = {_fingerprint(bench.questions[0]): 0}
        with pytest.raises(ValueError):
            server.score(one)

    def test_scoring_rejects_unknown_fingerprints(self, bench, tmp_path):
        export_answer_key(bench, tmp_path / "key.json")
        server = ScoringServer.from_key_file(tmp_path / "key.json", min_batch=1)
        with pytest.raises(KeyError):
            server.score({"deadbeef": 0})

    def test_fingerprints_unique(self, bench):
        fps = {_fingerprint(q) for q in bench.questions}
        assert len(fps) == len(bench)


class TestAblations:
    def test_sft_remedy_monotone_and_closes_gap(self):
        sweep = sft_remedy_sweep()
        assert sweep.monotone_increasing()
        assert sweep.ys[0] == pytest.approx(64.7, abs=0.5)  # paper value
        assert sweep.ys[-1] > 72.0  # near the token-instruct ceiling

    def test_dataset_quality_monotone(self):
        sweep = dataset_quality_sweep()
        assert sweep.monotone_increasing()

    def test_capacity_frontier_break_even(self):
        sweep, breakeven = capacity_frontier()
        assert breakeven is not None
        # calibrated phis: large (3.5) is below break-even, tiny (17.4) above
        from repro.scale import CALIBRATED_PARAMS

        assert CALIBRATED_PARAMS.phi["large"] < breakeven
        assert CALIBRATED_PARAMS.phi["tiny"] > breakeven

    def test_sweep_crossing_none_when_no_cross(self):
        from repro.analysis import Sweep

        s = Sweep("x", "p")
        s.add(0.0, 1.0)
        s.add(1.0, 2.0)
        assert s.crossing(5.0) is None

    def test_sweep_render(self):
        sweep = sft_remedy_sweep()
        art = sweep.render()
        assert "sft_astro_fraction" in art
        assert "#" in art

    def test_quality_sweep_requires_cpt_entry(self):
        with pytest.raises(ValueError):
            dataset_quality_sweep("LLaMA-2-7B")


class TestForecast:
    def test_full_text_cpt_is_order_1e4(self):
        est = forecast_full_text_cpt()
        assert 1e4 <= est.gpu_hours < 1e5

    def test_beyond_astro_ph_reaches_1e5(self):
        est = forecast_full_text_cpt(corpus_multiplier=8)
        assert est.gpu_hours >= 1e5 * 0.8

    def test_8b_full_text_far_cheaper(self):
        big = forecast_full_text_cpt(n_params=70e9)
        small = forecast_full_text_cpt(n_params=8e9)
        assert small.gpu_hours < big.gpu_hours / 10
