"""ServingEvaluationRunner ≡ BatchedEvaluationRunner.

The serving engine is a throughput device, never an accuracy device:
replaying a benchmark through continuous batching, prefix reuse, and
admission backpressure must produce exactly the per-question answers
the batched evaluation engine produces — for both the next-token
(SCORE) and full-instruct (GENERATE) methodologies.
"""

import pytest

from repro.corpus import make_astro_knowledge
from repro.eval import (
    BatchedEvaluationRunner,
    FullInstructEvaluator,
    ServingEvaluationRunner,
    TokenPredictionEvaluator,
    format_micro_chat_prompt,
)
from repro.eval.prompts import format_next_token_prompt
from repro.mcq import build_benchmark
from repro.model import ModelConfig, TransformerLM
from repro.serve import SchedulerConfig, ServeConfig
from repro.tokenizer import WordTokenizer

N_QUESTIONS = 24
FEW_SHOT = 2


@pytest.fixture(scope="module")
def eval_world():
    astro = make_astro_knowledge(n_facts=80, seed=11)
    bench = build_benchmark(
        astro, n_articles=8, facts_per_article=5, dev_size=4, seed=12
    )
    texts = []
    for f in astro.facts:
        texts.extend(f.statement(i) for i in range(4))
    texts.append(
        "Question : A B C D Answer : Astrophysics and Cosmology "
        "Multiple choice questions Solution set :"
    )
    tok = WordTokenizer.train(texts, vocab_size=3000, space_prefix=False)
    longest = max(
        len(tok.encode(format_next_token_prompt(q, bench.few_shot(FEW_SHOT))))
        for q in bench.test
    )
    model = TransformerLM(
        ModelConfig(
            vocab_size=len(tok.vocab), d_model=32, n_layers=2, n_heads=4,
            max_seq_len=longest + 24,
        ),
        seed=0,
    )
    return model, tok, bench


class TestTokenPredEquivalence:
    def test_serving_answers_match_batched(self, eval_world):
        model, tok, bench = eval_world
        batched_eval = TokenPredictionEvaluator(
            model, tok, bench.few_shot(FEW_SHOT)
        )
        batched = BatchedEvaluationRunner(bench, max_questions=N_QUESTIONS).run(
            batched_eval, "next-token", "micro"
        )
        serving_eval = TokenPredictionEvaluator(
            model, tok, bench.few_shot(FEW_SHOT),
            answer_map=batched_eval.answer_map,
        )
        runner = ServingEvaluationRunner(bench, max_questions=N_QUESTIONS)
        serving = runner.run(serving_eval, "next-token", "micro")
        assert serving.predictions == batched.predictions
        assert serving.accuracy == pytest.approx(batched.accuracy)
        assert serving.per_topic == batched.per_topic

    def test_serving_reuses_shared_scaffold(self, eval_world):
        model, tok, bench = eval_world
        evaluator = TokenPredictionEvaluator(
            model, tok, bench.few_shot(FEW_SHOT)
        )
        runner = ServingEvaluationRunner(bench, max_questions=N_QUESTIONS)
        runner.run(evaluator, "next-token", "micro")
        snap = runner.last_engine.metrics_snapshot()
        # one cold prefill, then every question forks the cached scaffold
        assert snap["prefix_cache"]["misses"] == 1
        assert snap["prefix_cache"]["hits"] == N_QUESTIONS - 1
        assert snap["prefix_hit_tokens"] > 0

    def test_backpressure_does_not_change_answers(self, eval_world):
        """A tiny admission queue forces submit/step interleaving."""
        model, tok, bench = eval_world
        evaluator = TokenPredictionEvaluator(
            model, tok, bench.few_shot(FEW_SHOT)
        )
        reference = BatchedEvaluationRunner(
            bench, max_questions=N_QUESTIONS
        ).run(evaluator, "next-token", "micro")
        tight = ServeConfig(
            queue_capacity=2,
            scheduler=SchedulerConfig(
                token_budget=8192, max_running=2, store_entries=2
            ),
        )
        runner = ServingEvaluationRunner(
            bench, max_questions=N_QUESTIONS, config=tight
        )
        serving = runner.run(evaluator, "next-token", "micro")
        assert serving.predictions == reference.predictions


class TestFullInstructEquivalence:
    def test_serving_answers_and_records_match(self, eval_world):
        model, tok, bench = eval_world
        reference_eval = FullInstructEvaluator(
            model, tok, prompt_builder=format_micro_chat_prompt
        )
        reference = BatchedEvaluationRunner(bench, max_questions=12).run(
            reference_eval, "full-instruct", "micro"
        )
        serving_eval = FullInstructEvaluator(
            model, tok, prompt_builder=format_micro_chat_prompt
        )
        serving = ServingEvaluationRunner(bench, max_questions=12).run(
            serving_eval, "full-instruct", "micro"
        )
        assert serving.predictions == reference.predictions
        assert [r.response for r in serving_eval.records] == [
            r.response for r in reference_eval.records
        ]
        assert serving_eval.parse_failure_rate == pytest.approx(
            reference_eval.parse_failure_rate
        )


class TestRunnerDispatch:
    def test_unknown_evaluator_type_rejected(self, eval_world):
        _, _, bench = eval_world
        runner = ServingEvaluationRunner(bench, max_questions=2)
        with pytest.raises(TypeError, match="evaluator"):
            runner.run(object(), "m", "micro")
