"""Probe tests: knowledge recall and circuit quality on a trained toy."""

import numpy as np
import pytest

from repro.corpus import make_general_knowledge
from repro.corpus.general import render_mcq_exercise
from repro.eval import circuit_quality, knowledge_recall
from repro.model import ModelConfig, TransformerLM
from repro.tokenizer import WordTokenizer
from repro.train import Trainer, TrainingConfig, PackedDataset, pack_documents
from repro.utils.rng import new_rng

pytestmark = pytest.mark.slow  # every test trains the module-scoped toy


@pytest.fixture(scope="module")
def trained():
    """A model trained to memorize 12 facts + their quiz circuit."""
    kb = make_general_knowledge(n_facts=12, seed=21)
    texts = []
    for f in kb.facts:
        texts.extend(f.statement(i) for i in range(4))
        texts.append(render_mcq_exercise(f, np.random.default_rng(0)))
    tok = WordTokenizer.train(texts, vocab_size=2000)
    eos = tok.vocab.eos_id
    model = TransformerLM(
        ModelConfig(vocab_size=tok.vocab_size, d_model=64, n_layers=2,
                    n_heads=4, max_seq_len=96, tie_embeddings=True),
        seed=0,
    )
    epoch = [0]

    def make_batches():
        e = epoch[0]; epoch[0] += 1
        rng = new_rng(9, "epoch", e)
        docs = []
        for f in kb.facts:
            docs.append(f.statement(int(rng.integers(0, 4))))
            docs.append(render_mcq_exercise(f, rng))
        order = rng.permutation(len(docs))
        token_docs = [tok.encode(docs[i]) for i in order]
        windows = pack_documents(token_docs, 96, eos, drop_last=False)
        for x, t in PackedDataset(windows, 8, seed=e).batches():
            yield x, t, None

    trainer = Trainer(model, TrainingConfig(learning_rate=3e-3, total_steps=220))
    trainer.train(make_batches)
    return kb, tok, model


class TestKnowledgeRecall:
    def test_trained_model_recalls(self, trained):
        kb, tok, model = trained
        acc = knowledge_recall(model, tok, kb.facts, prefix_ids=[tok.vocab.eos_id])
        assert acc >= 0.6  # 220 steps: solid recall, not yet saturated

    def test_untrained_model_near_zero(self, trained):
        kb, tok, _ = trained
        fresh = TransformerLM(
            ModelConfig(vocab_size=tok.vocab_size, d_model=32, n_layers=1,
                        n_heads=2, max_seq_len=96),
            seed=3,
        )
        acc = knowledge_recall(fresh, tok, kb.facts)
        assert acc <= 0.3

    def test_empty_facts_raises(self, trained):
        _, tok, model = trained
        with pytest.raises(ValueError):
            knowledge_recall(model, tok, [])


class TestCircuitQuality:
    def test_probe_bounded_and_dissociates_from_recall(self, trained):
        """At 220 steps the circuit has not grokked (DESIGN.md §6: it
        emerges past ~700 steps) — the probe must report that honestly:
        a bounded value, with recall running ahead of circuit quality.
        That dissociation is exactly what the two probes exist to expose."""
        kb, tok, model = trained
        q = circuit_quality(model, tok, kb.facts, n_probes=36,
                            prefix_ids=[tok.vocab.eos_id])
        assert 0.0 <= q <= 1.0
        recall = knowledge_recall(
            model, tok, kb.facts, prefix_ids=[tok.vocab.eos_id]
        )
        assert recall > q

    def test_untrained_model_near_chance(self, trained):
        kb, tok, _ = trained
        fresh = TransformerLM(
            ModelConfig(vocab_size=tok.vocab_size, d_model=32, n_layers=1,
                        n_heads=2, max_seq_len=96),
            seed=3,
        )
        q = circuit_quality(fresh, tok, kb.facts, n_probes=36)
        assert q <= 0.6

    def test_deterministic(self, trained):
        kb, tok, model = trained
        a = circuit_quality(model, tok, kb.facts, n_probes=12, seed=4)
        b = circuit_quality(model, tok, kb.facts, n_probes=12, seed=4)
        assert a == b
