"""Finite-difference gradient checks for every differentiable layer.

These are the foundation tests of the whole reproduction: every training
result downstream is meaningless if backprop is wrong.  Each check perturbs
parameters (and inputs) with central differences and compares against the
analytic gradients, in float64 where possible via upcasting the loss.
"""

import numpy as np
import pytest

from repro.model.attention import MultiHeadAttention, RotaryEmbedding
from repro.model.config import ModelConfig
from repro.model.layers import Embedding, LayerNorm, Linear, RMSNorm
from repro.model.lora import LoRAConfig, LoRALinear
from repro.model.mlp import GeluMLP, SwiGLU
from repro.model.transformer import TransformerLM

RNG = np.random.default_rng(1234)
EPS = 1e-3
# float32 forward passes limit achievable agreement; 2e-2 relative error is
# a tight bound for central differences at eps=1e-3 in float32.
TOL = 2e-2


def scalar_loss(y: np.ndarray, w: np.ndarray) -> float:
    """Deterministic scalar projection of an output tensor."""
    return float(np.sum(y.astype(np.float64) * w))


def check_param_grads(module, x, extra_forward=None):
    """Compare analytic vs numeric grads for every parameter of ``module``."""
    fwd = extra_forward or (lambda: module.forward(x))
    y = fwd()
    w = np.linspace(-1.0, 1.0, y.size).reshape(y.shape).astype(np.float32)
    module.zero_grad()
    module.backward(w)
    params = module.named_parameters()
    grads = module.named_gradients()
    for name, p in params.items():
        g = grads[name]
        flat = p.reshape(-1)
        idxs = RNG.choice(flat.size, size=min(8, flat.size), replace=False)
        for i in idxs:
            orig = flat[i]
            flat[i] = orig + EPS
            lp = scalar_loss(fwd(), w)
            flat[i] = orig - EPS
            lm = scalar_loss(fwd(), w)
            flat[i] = orig
            num = (lp - lm) / (2 * EPS)
            ana = float(g.reshape(-1)[i])
            denom = max(abs(num), abs(ana), 1e-3)
            assert abs(num - ana) / denom < TOL, (
                f"{name}[{i}]: numeric={num:.6f} analytic={ana:.6f}"
            )


def check_input_grads(module, x):
    y = module.forward(x)
    w = np.linspace(-1.0, 1.0, y.size).reshape(y.shape).astype(np.float32)
    module.zero_grad()
    dx = module.backward(w)
    flat = x.reshape(-1)
    idxs = RNG.choice(flat.size, size=min(8, flat.size), replace=False)
    for i in idxs:
        orig = flat[i]
        flat[i] = orig + EPS
        lp = scalar_loss(module.forward(x), w)
        flat[i] = orig - EPS
        lm = scalar_loss(module.forward(x), w)
        flat[i] = orig
        num = (lp - lm) / (2 * EPS)
        ana = float(dx.reshape(-1)[i])
        denom = max(abs(num), abs(ana), 1e-3)
        assert abs(num - ana) / denom < TOL, (
            f"input[{i}]: numeric={num:.6f} analytic={ana:.6f}"
        )
    # restore module cache for callers that continue using it
    module.forward(x)
    module.backward(w)


@pytest.fixture
def x3d():
    return RNG.normal(size=(2, 5, 8)).astype(np.float32)


class TestLinear:
    def test_param_grads(self, x3d):
        lin = Linear(8, 6, RNG, bias=True)
        check_param_grads(lin, x3d)

    def test_input_grads(self, x3d):
        lin = Linear(8, 6, RNG, bias=True)
        check_input_grads(lin, x3d)

    def test_no_bias(self, x3d):
        lin = Linear(8, 6, RNG, bias=False)
        assert "bias" not in lin.params
        check_param_grads(lin, x3d)


class TestNorms:
    def test_rmsnorm_params(self, x3d):
        check_param_grads(RMSNorm(8), x3d)

    def test_rmsnorm_input(self, x3d):
        check_input_grads(RMSNorm(8), x3d)

    def test_layernorm_params(self, x3d):
        check_param_grads(LayerNorm(8), x3d)

    def test_layernorm_input(self, x3d):
        check_input_grads(LayerNorm(8), x3d)


class TestEmbedding:
    def test_param_grads(self):
        emb = Embedding(12, 8, RNG)
        ids = np.array([[0, 3, 3, 7], [1, 2, 11, 5]])
        check_param_grads(emb, ids)

    def test_out_of_range(self):
        emb = Embedding(12, 8, RNG)
        with pytest.raises(IndexError):
            emb.forward(np.array([[12]]))


class TestMLPs:
    def test_swiglu_params(self, x3d):
        check_param_grads(SwiGLU(8, 16, RNG, init_std=0.1), x3d)

    def test_swiglu_input(self, x3d):
        check_input_grads(SwiGLU(8, 16, RNG, init_std=0.1), x3d)

    def test_gelu_params(self, x3d):
        check_param_grads(GeluMLP(8, 16, RNG, init_std=0.1), x3d)

    def test_gelu_input(self, x3d):
        check_input_grads(GeluMLP(8, 16, RNG, init_std=0.1), x3d)


class TestAttention:
    def _attn(self):
        rope = RotaryEmbedding(head_dim=4, max_seq_len=16)
        return MultiHeadAttention(8, 2, rope, RNG, init_std=0.1)

    def test_param_grads(self, x3d):
        check_param_grads(self._attn(), x3d)

    def test_input_grads(self, x3d):
        check_input_grads(self._attn(), x3d)

    def test_causality(self):
        """Changing a future token must not affect earlier outputs."""
        attn = self._attn()
        x = RNG.normal(size=(1, 6, 8)).astype(np.float32)
        y1 = attn.forward(x)
        x2 = x.copy()
        x2[0, 5] += 10.0
        y2 = attn.forward(x2)
        np.testing.assert_allclose(y1[0, :5], y2[0, :5], atol=1e-5)
        assert not np.allclose(y1[0, 5], y2[0, 5])


class TestLoRA:
    def test_adapter_grads(self, x3d):
        base = Linear(8, 6, RNG)
        lora = LoRALinear(base, LoRAConfig(rank=2, alpha=4.0), RNG)
        # B starts at zero: nudge it so gradients flow through both factors.
        lora.params["lora_B"][...] = RNG.normal(size=(2, 6)).astype(np.float32) * 0.1
        check_param_grads(lora, x3d)

    def test_input_grads(self, x3d):
        base = Linear(8, 6, RNG)
        lora = LoRALinear(base, LoRAConfig(rank=2, alpha=4.0), RNG)
        lora.params["lora_B"][...] = RNG.normal(size=(2, 6)).astype(np.float32) * 0.1
        check_input_grads(lora, x3d)

    def test_identity_at_init(self, x3d):
        base = Linear(8, 6, RNG)
        ref = base.forward(x3d).copy()
        lora = LoRALinear(base, LoRAConfig(rank=2), RNG)
        np.testing.assert_allclose(lora.forward(x3d), ref, atol=1e-6)


class TestFullModel:
    def _model(self, **kw):
        cfg = ModelConfig(
            vocab_size=17, d_model=8, n_layers=2, n_heads=2, max_seq_len=16, **kw
        )
        return TransformerLM(cfg, seed=7)

    @pytest.mark.parametrize("tie", [False, True])
    def test_end_to_end_grads(self, tie):
        model = self._model(tie_embeddings=tie)
        tokens = np.array([[1, 4, 9, 2, 7]])
        targets = np.array([[4, 9, 2, 7, 3]])

        def loss_fn():
            logits = model.forward(tokens)
            loss, _ = model.cross_entropy(logits, targets)
            return loss

        logits = model.forward(tokens)
        loss, dlogits = model.cross_entropy(logits, targets)
        model.zero_grad()
        model.backward(dlogits)
        params = model.named_parameters()
        grads = model.named_gradients()
        checked = 0
        for name, p in params.items():
            flat = p.reshape(-1)
            idxs = RNG.choice(flat.size, size=min(3, flat.size), replace=False)
            for i in idxs:
                orig = flat[i]
                flat[i] = orig + EPS
                lp = loss_fn()
                flat[i] = orig - EPS
                lm = loss_fn()
                flat[i] = orig
                num = (lp - lm) / (2 * EPS)
                ana = float(grads[name].reshape(-1)[i])
                denom = max(abs(num), abs(ana), 1e-3)
                assert abs(num - ana) / denom < 5e-2, (
                    f"{name}[{i}]: numeric={num:.6f} analytic={ana:.6f}"
                )
                checked += 1
        assert checked > 20

    def test_masked_loss_ignores_masked_positions(self):
        model = self._model()
        tokens = np.array([[1, 4, 9, 2, 7]])
        targets_a = np.array([[4, 9, 2, 7, 3]])
        targets_b = targets_a.copy()
        targets_b[0, 0] = 16  # differs only at a masked position
        mask = np.array([[0, 1, 1, 1, 1]], dtype=np.float32)
        logits = model.forward(tokens)
        loss_a, _ = model.cross_entropy(logits, targets_a, mask)
        loss_b, _ = model.cross_entropy(logits, targets_b, mask)
        assert loss_a == pytest.approx(loss_b)

    def test_grad_accumulation_is_additive(self):
        model = self._model()
        tokens = np.array([[1, 4, 9, 2, 7]])
        targets = np.array([[4, 9, 2, 7, 3]])
        model.zero_grad()
        model.loss_and_backward(tokens, targets)
        once = {k: v.copy() for k, v in model.named_gradients().items()}
        model.loss_and_backward(tokens, targets)
        twice = model.named_gradients()
        for k in once:
            np.testing.assert_allclose(twice[k], 2 * once[k], rtol=1e-5, atol=1e-7)
