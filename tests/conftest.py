"""Shared pytest wiring: the tier marker taxonomy.

Every test belongs to exactly one tier (see ``docs/testing.md``):

* ``tier1`` — fast, deterministic; the blocking CI gate.  Applied
  automatically to any test that doesn't opt into another tier, so new
  tests are tier-1 by default and nothing silently falls out of CI;
* ``slow`` — long-running end-to-end pipelines (opt-in, per module or
  class);
* ``faults`` — the fault-injection recovery matrix (opt-in).

``--strict-markers`` (set in ``pyproject.toml``) turns marker typos into
collection errors instead of silently-unselected tests.
"""

import pytest

_EXPLICIT_TIERS = ("slow", "faults")


def pytest_collection_modifyitems(config, items):
    for item in items:
        if not any(item.get_closest_marker(name) for name in _EXPLICIT_TIERS):
            item.add_marker(pytest.mark.tier1)
