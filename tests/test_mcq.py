"""MCQ bench tests: review articles, extraction, quality rules, container."""

import numpy as np
import pytest

from repro.corpus import make_astro_knowledge
from repro.mcq import (
    MCQBenchmark,
    MCQExtractor,
    MCQuestion,
    build_benchmark,
    check_letter_balance,
    check_option_lengths,
    check_option_uniqueness,
    generate_review_articles,
    validate_benchmark,
)
from repro.mcq.quality import check_standalone


@pytest.fixture(scope="module")
def astro():
    return make_astro_knowledge(n_facts=120, seed=7)


@pytest.fixture(scope="module")
def bench(astro):
    return build_benchmark(astro, n_articles=30, dev_size=6, seed=8)


class TestReviewArticles:
    def test_count_and_topics_cycle(self, astro):
        articles = generate_review_articles(astro, n_articles=16, seed=1)
        assert len(articles) == 16
        topics = [a.topic for a in articles]
        assert topics[: len(astro.topics)] == sorted(astro.topics)

    def test_text_realizes_facts(self, astro):
        articles = generate_review_articles(astro, n_articles=4, seed=1)
        fact_by_id = {f.fact_id: f for f in astro.facts}
        for a in articles:
            for fid in a.fact_ids:
                assert fact_by_id[fid].correct in a.text

    def test_deterministic(self, astro):
        a = generate_review_articles(astro, n_articles=5, seed=3)
        b = generate_review_articles(astro, n_articles=5, seed=3)
        assert [x.text for x in a] == [y.text for y in b]

    def test_article_id_format(self, astro):
        articles = generate_review_articles(astro, n_articles=2, seed=1)
        assert "ARAA" in articles[0].article_id


class TestExtraction:
    def test_five_per_article(self, astro):
        articles = generate_review_articles(astro, n_articles=6, facts_per_article=8, seed=1)
        questions = MCQExtractor(astro, questions_per_article=5, seed=2).extract(articles)
        assert len(questions) == 30
        per_article = {}
        for q in questions:
            per_article[q.article_id] = per_article.get(q.article_id, 0) + 1
        assert all(v == 5 for v in per_article.values())

    def test_correct_option_is_fact_value(self, astro, bench):
        fact_by_id = {f.fact_id: f for f in astro.facts}
        for q in bench.questions[:50]:
            assert q.options[q.correct_idx] == fact_by_id[q.fact_id].correct

    def test_no_duplicate_fact_within_article(self, bench):
        by_article = {}
        for q in bench.questions:
            by_article.setdefault(q.article_id, []).append(q.fact_id)
        for fids in by_article.values():
            assert len(fids) == len(set(fids))

    def test_insufficient_facts_raises(self, astro):
        articles = generate_review_articles(astro, n_articles=2, facts_per_article=3, seed=1)
        with pytest.raises(ValueError):
            MCQExtractor(astro, questions_per_article=5).extract(articles)

    def test_question_serialization_roundtrip(self, bench):
        q = bench.questions[0]
        q2 = MCQuestion.from_dict(q.as_dict())
        assert q2 == q


class TestQuality:
    def test_full_validation_passes(self, bench):
        report = validate_benchmark(bench.questions)
        assert report.passed
        assert report.n_questions == len(bench.questions)

    def test_letter_balance(self, bench):
        assert check_letter_balance(bench.questions, max_skew=0.15)

    def test_option_length_check_flags_outliers(self):
        q = MCQuestion(
            question_id=0,
            article_id="x",
            topic="t",
            fact_id=0,
            question="the mass of x is",
            options=("1 kg", "2 kg", "3 kg", "an extremely long answer option with many words"),
            correct_idx=0,
            explanation="",
        )
        assert not check_option_lengths(q)

    def test_uniqueness_check(self):
        q = MCQuestion(0, "x", "t", 0, "q", ("a", "a", "b", "c"), 0, "")
        assert not check_option_uniqueness(q)

    def test_standalone_check(self):
        q = MCQuestion(0, "x", "t", 0, "as shown in this article the mass is", ("a", "b", "c", "d"), 0, "")
        assert not check_standalone(q)


class TestBenchmarkContainer:
    def test_dev_test_disjoint(self, bench):
        dev_ids = {q.question_id for q in bench.dev}
        test_ids = {q.question_id for q in bench.test}
        assert not dev_ids & test_ids
        assert len(dev_ids) == 6
        assert len(dev_ids) + len(test_ids) == len(bench)

    def test_few_shot_limits(self, bench):
        assert len(bench.few_shot(2)) == 2
        with pytest.raises(ValueError):
            bench.few_shot(100)

    def test_accuracy_counts_none_as_wrong(self, bench):
        qs = bench.test[:4]
        preds = [qs[0].correct_idx, None, None, None]
        assert MCQBenchmark.accuracy(qs, preds) == pytest.approx(0.25)

    def test_accuracy_validates_lengths(self, bench):
        with pytest.raises(ValueError):
            MCQBenchmark.accuracy(bench.test[:3], [0, 1])

    def test_save_load_roundtrip(self, bench, tmp_path):
        path = tmp_path / "bench.json"
        bench.save(path)
        loaded = MCQBenchmark.load(path)
        assert len(loaded) == len(bench)
        assert loaded.questions[0] == bench.questions[0]
        assert {q.question_id for q in loaded.dev} == {
            q.question_id for q in bench.dev
        }

    def test_by_topic_partitions_test_split(self, bench):
        grouped = bench.by_topic()
        total = sum(len(v) for v in grouped.values())
        assert total == len(bench.test)

    def test_paper_scale_build(self, astro):
        bench = build_benchmark(astro, n_articles=885, dev_size=8, seed=0)
        assert len(bench) == 4425  # 885 articles x 5 questions

    def test_dev_size_validation(self, bench):
        with pytest.raises(ValueError):
            MCQBenchmark(bench.questions[:3], dev_size=3)
