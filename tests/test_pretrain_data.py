"""Base-pretraining data-stream tests (no training)."""

import numpy as np
import pytest

from repro.core.pretrain import BasePretrainConfig, BasePretrainer
from repro.core.world import MicroWorld
from repro.core.zoo import get_entry


@pytest.fixture(scope="module")
def world():
    return MicroWorld.build_test(seed=0)


@pytest.fixture(scope="module")
def pretrainer(world):
    return BasePretrainer(world, BasePretrainConfig())


class TestEpochDocuments:
    def _docs(self, pretrainer, world, epoch=0, entry_name="LLaMA-2-7B"):
        entry = get_entry(entry_name)
        covered = set(world.covered_fact_ids(entry.base_astro_coverage, entry.family.name))
        return pretrainer._epoch_documents(entry, covered, epoch), covered

    def test_fresh_shuffles_each_epoch(self, pretrainer, world):
        docs0, _ = self._docs(pretrainer, world, epoch=0)
        docs1, _ = self._docs(pretrainer, world, epoch=1)
        assert docs0 != docs1  # option shuffles and order regenerate

    def test_same_epoch_deterministic(self, pretrainer, world):
        docs_a, _ = self._docs(pretrainer, world, epoch=3)
        docs_b, _ = self._docs(pretrainer, world, epoch=3)
        assert docs_a == docs_b

    def test_uncovered_facts_absent(self, pretrainer, world):
        docs, covered = self._docs(pretrainer, world)
        blob = "\n".join(docs)
        uncovered = [f for f in world.astro.facts if f.fact_id not in covered]
        for fact in uncovered:
            assert fact.question() not in blob

    def test_covered_facts_present(self, pretrainer, world):
        docs, covered = self._docs(pretrainer, world)
        blob = "\n".join(docs)
        covered_facts = [f for f in world.astro.facts if f.fact_id in covered]
        present = sum(1 for f in covered_facts if f.subject in blob)
        assert present == len(covered_facts)

    def test_quiz_documents_use_eval_header(self, pretrainer, world):
        docs, _ = self._docs(pretrainer, world)
        with_header = [d for d in docs if d.startswith(BasePretrainer.QUIZ_HEADER)]
        assert with_header, "no astro quiz documents carry the eval header"
        multi_question = [d for d in docs if d.count("Question :") >= 2]
        assert multi_question, "no multi-question quiz documents generated"

    def test_general_and_astro_headers_distinct(self, pretrainer, world):
        docs, _ = self._docs(pretrainer, world)
        blob = "\n".join(docs)
        assert BasePretrainer.GENERAL_HEADER in blob
        assert BasePretrainer.QUIZ_HEADER in blob

    def test_documents_tokenize_without_unk(self, pretrainer, world):
        docs, _ = self._docs(pretrainer, world)
        for family in ("llama-2", "llama-3"):
            tok = world.tokenizer_for(family)
            unk = tok.vocab.unk_id
            bad = [d for d in docs if unk in tok.encode(d)]
            assert not bad, f"{family}: {len(bad)} docs contain <unk>: {bad[:1]}"

    def test_higher_coverage_adds_documents(self, pretrainer, world):
        entry_small = get_entry("LLaMA-2-7B")  # coverage 0.35
        entry_large = get_entry("LLaMA-2-70B")  # coverage 0.55
        docs_small = pretrainer._epoch_documents(
            entry_small,
            set(world.covered_fact_ids(entry_small.base_astro_coverage, "llama-2")),
            0,
        )
        docs_large = pretrainer._epoch_documents(
            entry_large,
            set(world.covered_fact_ids(entry_large.base_astro_coverage, "llama-2")),
            0,
        )
        assert len(docs_large) > len(docs_small)


class TestQuizGrouping:
    def test_groups_cover_all_exercises(self):
        rng = np.random.default_rng(0)
        exercises = [f"Question : q{i}\nAnswer : A" for i in range(20)]
        docs = BasePretrainer._quiz_documents(exercises, "HDR", rng)
        blob = "\n".join(docs)
        for i in range(20):
            assert f"q{i}" in blob

    def test_group_sizes_bounded(self):
        rng = np.random.default_rng(1)
        exercises = [f"Question : q{i}\nAnswer : A" for i in range(30)]
        docs = BasePretrainer._quiz_documents(exercises, "HDR", rng)
        for d in docs:
            assert 1 <= d.count("Question :") <= 3

    def test_empty_input(self):
        rng = np.random.default_rng(0)
        assert BasePretrainer._quiz_documents([], "HDR", rng) == []


class TestModelConfigSelection:
    def test_tier_to_config(self, pretrainer):
        cfg_tiny = pretrainer.model_config(get_entry("LLaMA-2-7B"))
        cfg_large = pretrainer.model_config(get_entry("LLaMA-2-70B"))
        assert cfg_large.num_parameters() > cfg_tiny.num_parameters()

    def test_vocab_follows_family_tokenizer(self, pretrainer, world):
        cfg2 = pretrainer.model_config(get_entry("LLaMA-2-7B"))
        cfg3 = pretrainer.model_config(get_entry("LLaMA-3-8B"))
        assert cfg2.vocab_size == world.tokenizer_for("llama-2").vocab_size
        assert cfg3.vocab_size == world.tokenizer_for("llama-3").vocab_size
        # space-prefix roughly doubles the word vocabulary
        assert cfg3.vocab_size > cfg2.vocab_size
