"""Edge-case tests across subsystems (run after the main suites)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.datasets import CorpusDataset
from repro.eval.runner import EvaluationRunner
from repro.mcq import build_benchmark
from repro.corpus import make_astro_knowledge
from repro.model import ModelConfig, TransformerLM
from repro.tokenizer import BPETokenizer
from repro.tokenizer.bpe import SPACE_MARKER


class TestBPEInvariants:
    CORPUS = [
        "the star formation rate of the galaxy is high",
        "the galaxy rotation curve is flat in the outskirts",
        "star formation in the galaxy follows the gas surface density",
    ] * 3

    def test_merges_are_prefix_consistent(self):
        """Every merged symbol must be the concatenation of its pair."""
        tok = BPETokenizer.train(self.CORPUS, vocab_size=200)
        for a, b in tok.merges:
            assert (a + b) in tok.vocab

    def test_encoding_is_deterministic_function_of_text(self):
        tok = BPETokenizer.train(self.CORPUS, vocab_size=200)
        a = tok.encode("the galaxy rotation")
        b = tok.encode("the galaxy rotation")
        assert a == b

    def test_cache_does_not_change_results(self):
        tok1 = BPETokenizer.train(self.CORPUS, vocab_size=200)
        tok2 = BPETokenizer.from_dict(tok1.to_dict())  # cold cache
        text = "star formation rate curve"
        warm = tok1.encode(text)
        warm_again = tok1.encode(text)  # now cached
        cold = tok2.encode(text)
        assert warm == warm_again == cold

    def test_space_marker_roundtrip_boundary(self):
        tok = BPETokenizer.train(self.CORPUS, vocab_size=200)
        # marker must never leak into decoded text
        assert SPACE_MARKER not in tok.decode(tok.encode("the star is far"))


class TestChunkedPrefill:
    def test_cache_prefill_in_chunks_matches_monolithic(self):
        """Prefill the KV cache in two chunks; logits must match a single
        full-sequence forward (the serving-stack invariant)."""
        cfg = ModelConfig(vocab_size=40, d_model=16, n_layers=2, n_heads=2, max_seq_len=32)
        model = TransformerLM(cfg, seed=4)
        tokens = np.array([1, 7, 3, 9, 2, 8, 5])

        full_logits = model.forward(tokens[None, :])[0, -1]

        cache = model.new_cache()
        model.forward(tokens[None, :4], start_pos=0, cache=cache)
        chunk_logits = model.forward(tokens[None, 4:], start_pos=4, cache=cache)[0, -1]
        np.testing.assert_allclose(chunk_logits, full_logits, atol=1e-4)

    def test_single_token_steps_match(self):
        cfg = ModelConfig(vocab_size=40, d_model=16, n_layers=2, n_heads=2, max_seq_len=32)
        model = TransformerLM(cfg, seed=4)
        tokens = [3, 11, 5, 22]
        cache = model.new_cache()
        last = None
        for pos, tok in enumerate(tokens):
            last = model.forward(np.array([[tok]]), start_pos=pos, cache=cache)
        full = model.forward(np.array([tokens]))
        np.testing.assert_allclose(last[0, -1], full[0, -1], atol=1e-4)


class TestRunnerEdges:
    @pytest.fixture(scope="class")
    def bench(self):
        kb = make_astro_knowledge(n_facts=120, seed=31)
        return build_benchmark(kb, n_articles=6, dev_size=4, seed=32)

    def test_all_none_predictions_score_zero(self, bench):
        runner = EvaluationRunner(bench, max_questions=10)
        result = runner.run(lambda q: None, "m", "null-model")
        assert result.accuracy == 0.0
        assert result.parse_failures == 10

    def test_perfect_predictor(self, bench):
        runner = EvaluationRunner(bench)
        result = runner.run(lambda q: q.correct_idx, "m", "oracle")
        assert result.accuracy == 1.0
        assert result.parse_failures == 0

    def test_constant_predictor_near_letter_frequency(self, bench):
        runner = EvaluationRunner(bench)
        result = runner.run(lambda q: 0, "m", "always-A")
        # should be near 25% by letter balance
        assert 0.0 <= result.accuracy <= 0.6


class TestCorpusDatasetProperties:
    @given(
        st.lists(
            st.tuples(
                st.text("abcde ", min_size=1, max_size=30),
                st.sets(st.integers(0, 20), max_size=4),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_gains_coverage(self, docs_and_ids):
        docs = [d for d, _ in docs_and_ids]
        ids = [set(i) for _, i in docs_and_ids]
        dataset = CorpusDataset("x", docs, ids, total_facts_in_world=21)
        for budget in (1, 5, 50):
            t = dataset.truncate_words(budget)
            assert t.coverage <= dataset.coverage + 1e-12
            assert len(t) <= len(dataset)

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            CorpusDataset("x", ["a", "b"], [set()], 5)


class TestTrainerWarmup:
    def test_first_step_uses_warmup_lr(self):
        from repro.train import Trainer, TrainingConfig

        model = TransformerLM(
            ModelConfig(vocab_size=16, d_model=16, n_layers=1, n_heads=2, max_seq_len=8)
        )
        trainer = Trainer(
            model,
            TrainingConfig(learning_rate=1.0, total_steps=100, warmup_ratio=0.1),
        )
        x = np.ones((2, 4), dtype=np.int64)
        hist = trainer.train(lambda: iter([(x, x, None)] * 1000))
        assert hist.lrs[0] == pytest.approx(0.1)  # 1/10th of peak on step 0
        assert max(hist.lrs) == pytest.approx(1.0)
        assert hist.lrs[-1] < 0.01
