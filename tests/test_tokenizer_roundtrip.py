"""Property-based tokenizer round-trip tests (stdlib randomness only).

Seeded :class:`random.Random` drives text generation — no third-party
property-testing dependency — so every failure reproduces from its seed.
Three property families:

* **round-trip idempotence** — for any generated text, the ids produced by
  ``encode`` survive a decode/re-encode cycle bit-identically
  (``encode(decode(ids)) == ids``) for BPE and both word conventions;
* **merge-boundary stability** — word-internal BPE merges never cross a
  whitespace boundary, so encoding a concatenation equals concatenating
  encodings (exactly for the bare-word convention; up to the leading space
  marker otherwise), which is the property the batched evaluator's
  scaffold/suffix split depends on;
* **scaffold/suffix split coverage** — ``TokenPredictionEvaluator
  ._split_prompts`` takes its verified fast path for concat-stable
  tokenizers and falls back to the exact longest-common-prefix split when
  the space marker breaks concat-stability, and in both branches
  ``shared + suffix`` reconstructs every full prompt encoding.
"""

import random

import pytest

from repro.corpus import make_astro_knowledge
from repro.eval.prompts import (
    format_next_token_prompt,
    format_next_token_scaffold,
    format_next_token_suffix,
)
from repro.eval.token_pred import AnswerTokenMap, TokenPredictionEvaluator
from repro.mcq import build_benchmark
from repro.tokenizer import BPETokenizer, WordTokenizer
from repro.tokenizer.bpe import SPACE_MARKER, pretokenize

N_CASES = 40  # generated texts per property

WORD_POOL = (
    "the quasar redshift of spectrum galaxy emits at luminosity answer "
    "question dark matter halo virial mass accretion disk supernova "
    "remnant neutron star pulsar period cosmology baryon acoustic "
    "oscillation inflation epoch reionization metallicity dust torus "
    "0 1 2 3 42 1999 Answer Question A B C D : . , ? ( )"
).split()


def make_text(rng: random.Random, max_words: int = 24) -> str:
    """A random astronomy-flavoured text with mixed separators."""
    n = rng.randint(1, max_words)
    words = [rng.choice(WORD_POOL) for _ in range(n)]
    seps = [rng.choice([" ", " ", " ", "\n", "  "]) for _ in range(n - 1)]
    out = words[0]
    for sep, word in zip(seps, words[1:]):
        out += sep + word
    return out


@pytest.fixture(scope="module")
def training_corpus():
    rng = random.Random(1234)
    return [make_text(rng) for _ in range(200)] + [" ".join(WORD_POOL)]


@pytest.fixture(scope="module")
def bpe(training_corpus):
    return BPETokenizer.train(training_corpus, vocab_size=400)


@pytest.fixture(scope="module")
def word_bare(training_corpus):
    return WordTokenizer.train(training_corpus, vocab_size=4000, space_prefix=False)


@pytest.fixture(scope="module")
def word_marked(training_corpus):
    return WordTokenizer.train(training_corpus, vocab_size=4000, space_prefix=True)


def all_tokenizers(bpe, word_bare, word_marked):
    return [("bpe", bpe), ("word-bare", word_bare), ("word-marked", word_marked)]


class TestRoundTripIdempotence:
    def test_encode_decode_encode_is_identity(self, bpe, word_bare, word_marked):
        rng = random.Random(7)
        for name, tok in all_tokenizers(bpe, word_bare, word_marked):
            for case in range(N_CASES):
                text = make_text(rng)
                ids = tok.encode(text)
                again = tok.encode(tok.decode(ids))
                assert again == ids, f"{name} case {case}: {text!r}"

    def test_decode_restores_normalized_text(self, bpe, word_bare, word_marked):
        # vocabularies cover the whole pool, so decode must reproduce the
        # normalizer's view of the text (whitespace collapsed) exactly
        rng = random.Random(11)
        for name, tok in all_tokenizers(bpe, word_bare, word_marked):
            for case in range(N_CASES):
                text = make_text(rng)
                expected = tok.normalizer(text)
                assert tok.decode(tok.encode(text)) == expected, f"{name} case {case}"

    def test_unknown_ids_do_not_crash_decode(self, word_bare):
        ids = word_bare.encode("quasar redshift")
        assert word_bare.decode(ids + [word_bare.vocab.unk_id])

    def test_specials_skipped_on_decode(self, bpe):
        text = "dark matter halo"
        ids = bpe.encode(text, add_bos=True, add_eos=True)
        assert bpe.decode(ids) == text
        assert bpe.encode(bpe.decode(ids)) == bpe.encode(text)


class TestMergeBoundaryStability:
    """Token sequences split/concat stably at whitespace boundaries."""

    def _split_case(self, rng):
        left = make_text(rng, max_words=10)
        right = make_text(rng, max_words=10)
        return left, right

    def test_bare_words_concat_exact(self, word_bare):
        rng = random.Random(23)
        for case in range(N_CASES):
            left, right = self._split_case(rng)
            joined = word_bare.encode(left + " " + right)
            assert joined == word_bare.encode(left) + word_bare.encode(right), (
                f"case {case}: {left!r} + {right!r}"
            )

    @pytest.mark.parametrize("tok_name", ["bpe", "word_marked"])
    def test_marked_concat_differs_only_in_space_marker(self, request, tok_name):
        # With the GPT-2 space marker the suffix's first word encodes
        # differently in isolation (no preceding space) — exactly the case
        # the evaluator's fast-path verification must catch.  Re-encoding
        # the suffix behind a sentinel word restores concat-exactness.
        tok = request.getfixturevalue(tok_name)
        rng = random.Random(29)
        sentinel = "the"
        sentinel_len = len(tok.encode(sentinel))
        for case in range(N_CASES):
            left, right = self._split_case(rng)
            joined = tok.encode(left + " " + right)
            marked_right = tok.encode(sentinel + " " + right)[sentinel_len:]
            assert joined == tok.encode(left) + marked_right, f"case {case}"

    def test_bpe_merges_stay_word_internal(self, bpe):
        # no learned merge may span a word boundary: the space marker only
        # ever appears glued to a word start, so a merged symbol may carry
        # it at position 0 and nowhere else
        assert bpe.merges, "training produced no merges — property vacuous"
        for a, b in bpe.merges:
            merged = a + b
            assert SPACE_MARKER not in merged[1:], (a, b)

    def test_bpe_word_tokens_reconstruct_each_word(self, bpe):
        rng = random.Random(31)
        for _ in range(N_CASES):
            text = make_text(rng)
            for word in pretokenize(bpe.normalizer(text)):
                symbols = bpe._bpe_word(word)
                assert "".join(symbols) == word


class TestScaffoldSuffixSplit:
    """Both branches of TokenPredictionEvaluator._split_prompts."""

    @pytest.fixture(scope="class")
    def bench(self):
        astro = make_astro_knowledge(n_facts=60, seed=5)
        return build_benchmark(
            astro, n_articles=4, facts_per_article=5, dev_size=2, seed=6
        )

    def _evaluator(self, tokenizer, bench):
        letters = "ABCD"
        ids = {
            letter: tokenizer.vocab.id_of(letter) for letter in letters
        }
        return TokenPredictionEvaluator(
            model=object(),  # predict() never called in these tests
            tokenizer=tokenizer,
            few_shot=bench.dev[:2],
            answer_map=AnswerTokenMap(ids=ids, convention="bare"),
        )

    def _corpus_tokenizer(self, bench, space_prefix):
        texts = [format_next_token_prompt(q, bench.dev[:2]) for q in bench.test]
        return WordTokenizer.train(texts, vocab_size=4000, space_prefix=space_prefix)

    def test_fast_path_taken_when_concat_stable(self, bench):
        tok = self._corpus_tokenizer(bench, space_prefix=False)
        ev = self._evaluator(tok, bench)
        questions = bench.test[:6]
        shared, suffixes = ev._split_prompts(questions)
        scaffold_ids = tok.encode(format_next_token_scaffold(bench.dev[:2]))
        assert shared == scaffold_ids  # fast path: shared IS the scaffold
        for q, suffix in zip(questions, suffixes):
            assert shared + suffix == ev._prompt_ids(q)

    def test_fallback_taken_when_marker_breaks_concat(self, bench):
        tok = self._corpus_tokenizer(bench, space_prefix=True)
        ev = self._evaluator(tok, bench)
        questions = bench.test[:6]
        scaffold_ids = tok.encode(format_next_token_scaffold(bench.dev[:2]))
        naive = scaffold_ids + tok.encode(format_next_token_suffix(questions[0]))
        assert naive != ev._prompt_ids(questions[0])  # fast path must reject
        shared, suffixes = ev._split_prompts(questions)
        # fallback uses the exact longest common prefix, which extends past
        # the scaffold into the shared "Question :" tokens
        assert len(shared) > len(scaffold_ids)
        for q, suffix in zip(questions, suffixes):
            assert shared + suffix == ev._prompt_ids(q)

    def test_fallback_split_is_exact_for_bpe(self, bench):
        texts = [format_next_token_prompt(q, bench.dev[:2]) for q in bench.test]
        tok = BPETokenizer.train(texts, vocab_size=600)
        ev = self._evaluator(tok, bench)
        questions = bench.test[:6]
        shared, suffixes = ev._split_prompts(questions)
        for q, suffix in zip(questions, suffixes):
            assert shared + suffix == ev._prompt_ids(q)
