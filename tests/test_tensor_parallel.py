"""Tensor-parallel sharding tests: exactness against dense computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import Communicator, DeviceMesh, mlp_tp_forward
from repro.parallel.tensor_parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    attention_heads_tp_split,
    shard_columns,
    shard_rows,
    tp_memory_per_rank,
)

RNG = np.random.default_rng(0)


@pytest.fixture(params=[2, 4])
def comm(request):
    return Communicator(DeviceMesh(1, request.param))


class TestSharding:
    def test_column_shards_reassemble(self):
        w = RNG.normal(size=(8, 12))
        shards = shard_columns(w, 4)
        np.testing.assert_array_equal(np.concatenate(shards, axis=1), w)

    def test_row_shards_reassemble(self):
        w = RNG.normal(size=(8, 12))
        shards = shard_rows(w, 4)
        np.testing.assert_array_equal(np.concatenate(shards, axis=0), w)

    def test_indivisible_raises(self):
        w = RNG.normal(size=(8, 10))
        with pytest.raises(ValueError):
            shard_columns(w, 4)
        with pytest.raises(ValueError):
            shard_rows(RNG.normal(size=(10, 8)), 4)


class TestColumnParallel:
    def test_matches_dense(self, comm):
        w = RNG.normal(size=(6, 8)).astype(np.float64)
        x = RNG.normal(size=(3, 6))
        layer = ColumnParallelLinear.from_dense(w, comm)
        np.testing.assert_allclose(layer.forward(x), x @ w, atol=1e-12)

    def test_sharded_outputs_concatenate(self, comm):
        w = RNG.normal(size=(6, 8))
        x = RNG.normal(size=(3, 6))
        layer = ColumnParallelLinear.from_dense(w, comm)
        slices = layer.forward_sharded(x)
        np.testing.assert_allclose(
            np.concatenate(slices, axis=-1), x @ w, atol=1e-12
        )

    def test_batched_inputs(self, comm):
        w = RNG.normal(size=(6, 8))
        x = RNG.normal(size=(2, 5, 6))
        layer = ColumnParallelLinear.from_dense(w, comm)
        np.testing.assert_allclose(layer.forward(x), x @ w, atol=1e-12)


class TestRowParallel:
    def test_matches_dense(self, comm):
        w = RNG.normal(size=(8, 6)).astype(np.float64)
        x = RNG.normal(size=(3, 8))
        layer = RowParallelLinear.from_dense(w, comm)
        np.testing.assert_allclose(layer.forward(x), x @ w, atol=1e-10)

    def test_input_dim_validated(self, comm):
        layer = RowParallelLinear.from_dense(RNG.normal(size=(8, 6)), comm)
        with pytest.raises(ValueError):
            layer.forward(RNG.normal(size=(3, 10)))

    def test_shard_count_validated(self, comm):
        layer = RowParallelLinear.from_dense(RNG.normal(size=(8, 6)), comm)
        with pytest.raises(ValueError):
            layer.forward_from_sharded([RNG.normal(size=(3, 2))])


class TestMLPTP:
    def test_matches_dense_mlp(self, comm):
        d, h = 8, 16
        w_up = RNG.normal(size=(d, h))
        w_down = RNG.normal(size=(h, d))
        x = RNG.normal(size=(4, d))

        def relu(v):
            return np.maximum(v, 0.0)

        dense = relu(x @ w_up) @ w_down
        tp = mlp_tp_forward(x, w_up, w_down, comm, activation=relu)
        np.testing.assert_allclose(tp, dense, atol=1e-10)

    def test_single_all_reduce_only(self, comm):
        d, h = 8, 16
        before = dict(comm.stats.per_op_calls)
        mlp_tp_forward(
            RNG.normal(size=(2, d)),
            RNG.normal(size=(d, h)),
            RNG.normal(size=(h, d)),
            comm,
        )
        after = comm.stats.per_op_calls
        assert after.get("all_reduce", 0) - before.get("all_reduce", 0) == 1
        assert after.get("all_gather", 0) == before.get("all_gather", 0)


class TestHeadSplit:
    def test_partition(self):
        groups = attention_heads_tp_split(8, 4)
        assert groups == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_indivisible(self):
        with pytest.raises(ValueError):
            attention_heads_tp_split(6, 4)


class TestMemory:
    def test_70b_serving_footprint(self):
        """The cost model's TP=4 choice: 70B bf16 fits 4 x A100-40GB."""
        per_rank_gb = tp_memory_per_rank(70e9, 4) / 1e9
        assert per_rank_gb == pytest.approx(35.0)
        assert per_rank_gb < 40.0

    @given(st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_memory_conserved(self, parts):
        total = tp_memory_per_rank(1e9, parts) * parts
        assert total == pytest.approx(2e9)
