"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.model.attention import RotaryEmbedding, causal_mask
from repro.model.layers import log_softmax, softmax
from repro.parallel import Communicator, DeviceMesh
from repro.parallel.pipeline_parallel import gpipe_schedule, one_f_one_b_schedule
from repro.tokenizer import Vocabulary, WordTokenizer
from repro.train.dataloader import pack_documents
from repro.train.schedule import CosineSchedule


finite_floats = hnp.arrays(
    np.float32,
    st.tuples(st.integers(1, 4), st.integers(1, 6)),
    elements=st.floats(-50, 50, width=32),
)


class TestSoftmaxProperties:
    @given(finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_rows_sum_to_one(self, x):
        p = softmax(x)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-5)
        assert (p >= 0).all()

    @given(finite_floats, st.floats(-30, 30, width=32))
    @settings(max_examples=100, deadline=None)
    def test_shift_invariance(self, x, c):
        np.testing.assert_allclose(softmax(x + c), softmax(x), atol=1e-5)

    @given(finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_log_softmax_consistent(self, x):
        np.testing.assert_allclose(
            np.exp(log_softmax(x)), softmax(x), atol=1e-5
        )


class TestRoPEProperties:
    @given(
        hnp.arrays(
            np.float32,
            st.tuples(st.integers(1, 3), st.integers(1, 8), st.just(8)),
            elements=st.floats(-5, 5, width=32),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rotation_preserves_norm(self, x):
        """RoPE is orthogonal: token vectors keep their L2 norm."""
        rope = RotaryEmbedding(head_dim=8, max_seq_len=16)
        rotated = rope.apply(x)
        # atol floor: relative error is unbounded for subnormal-magnitude
        # vectors (hypothesis generates e.g. 8e-23), where float32
        # cos/sin arithmetic loses all relative precision
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1),
            np.linalg.norm(x, axis=-1),
            rtol=1e-4,
            atol=1e-6,
        )

    @given(st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_backward_inverts_forward_direction(self, start):
        """apply_backward(apply(x)) == x (R^T R = I)."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 4, 8)).astype(np.float32)
        rope = RotaryEmbedding(head_dim=8, max_seq_len=16)
        back = rope.apply_backward(rope.apply(x, start), start)
        np.testing.assert_allclose(back, x, atol=1e-5)

    def test_position_zero_is_identity(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 1, 8)).astype(np.float32)
        rope = RotaryEmbedding(head_dim=8, max_seq_len=16)
        np.testing.assert_allclose(rope.apply(x, 0), x, atol=1e-6)


class TestCausalMaskProperties:
    @given(st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_strictly_upper_triangular(self, T):
        mask = causal_mask(T)
        for i in range(T):
            for j in range(T):
                if j > i:
                    assert mask[i, j] < -1e8
                else:
                    assert mask[i, j] == 0.0


class TestPackingProperties:
    @given(
        st.lists(
            st.lists(st.integers(1, 50), min_size=0, max_size=12),
            min_size=1,
            max_size=8,
        ),
        st.integers(2, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_token_conservation(self, docs, seq_len):
        """Without dropping, every non-EOS token of every doc survives."""
        windows = pack_documents(docs, seq_len, eos_id=0, drop_last=False)
        flat = windows.reshape(-1).tolist()
        total_in = sum(len(d) for d in docs)
        assert len([t for t in flat if t != 0]) == total_in

    @given(
        st.lists(
            st.lists(st.integers(1, 50), min_size=1, max_size=12),
            min_size=1,
            max_size=8,
        ),
        st.integers(2, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_shape(self, docs, seq_len):
        windows = pack_documents(docs, seq_len, eos_id=0, drop_last=False)
        assert windows.shape[1] == seq_len + 1


class TestScheduleProperties:
    @given(st.integers(2, 1000), st.floats(0.0, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_peak_reached_and_never_exceeded(self, total, warmup):
        s = CosineSchedule(peak_lr=1.0, total_steps=total, warmup_ratio=warmup)
        lrs = [s.lr(i) for i in range(total)]
        assert max(lrs) <= 1.0 + 1e-9
        assert max(lrs) >= 0.99 or s.warmup_steps >= total


class TestCollectiveProperties:
    @given(
        st.integers(2, 6),
        hnp.arrays(np.float64, st.integers(1, 20), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_reduce_mean_matches_numpy(self, world, base):
        mesh = DeviceMesh(1, world)
        comm = Communicator(mesh)
        buffers = [base + r for r in range(world)]
        out = comm.all_reduce(buffers, "mean")
        expected = np.mean(buffers, axis=0)
        for o in out:
            np.testing.assert_allclose(o, expected, atol=1e-9)

    @given(st.integers(2, 6), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_reduce_scatter_then_gather_is_all_reduce(self, world, shard):
        mesh = DeviceMesh(1, world)
        comm = Communicator(mesh)
        rng = np.random.default_rng(world)
        buffers = [rng.normal(size=world * shard) for _ in range(world)]
        rs = comm.reduce_scatter(buffers, "sum")
        gathered = comm.all_gather(rs)
        ar = comm.all_reduce(buffers, "sum")
        np.testing.assert_allclose(gathered[0], ar[0], atol=1e-9)


class TestScheduleValidity:
    @given(st.integers(1, 6), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_schedules_always_valid(self, stages, microbatches):
        gpipe_schedule(stages, microbatches).validate()
        one_f_one_b_schedule(stages, microbatches).validate()

    @given(st.integers(1, 6), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_1f1b_memory_bounded_by_stages(self, stages, microbatches):
        f = one_f_one_b_schedule(stages, microbatches)
        assert f.peak_in_flight() <= min(stages, microbatches) + 0


class TestVocabularyProperties:
    @given(st.lists(st.text(min_size=1, max_size=8), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_ids_dense_and_stable(self, tokens):
        v = Vocabulary()
        for t in tokens:
            v.add(t)
        assert len(v) == 4 + len(set(tokens) - set(v.specials.as_list()))
        for t in tokens:
            assert v.token_of(v.id_of(t)) == t

    @given(st.lists(st.text("abcdefgh ", min_size=1, max_size=30), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_word_tokenizer_roundtrip_known_text(self, texts):
        tok = WordTokenizer.train(texts, vocab_size=10000)
        for text in texts:
            normalized = tok.normalizer(text)
            assume(normalized)
            assert tok.decode(tok.encode(text)) == normalized
