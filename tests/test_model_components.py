"""Model component tests: config, generation/KV-cache, checkpoints, bf16, LoRA."""

import numpy as np
import pytest

from repro.model import (
    GenerationConfig,
    LoRAConfig,
    ModelConfig,
    TransformerLM,
    apply_lora,
    bf16_round,
    generate,
    greedy_decode,
    load_model,
    merge_lora,
    save_model,
)
from repro.model.config import scaled_config
from repro.model.precision import bf16_ulp


def small_model(seed=0, **kw):
    cfg = ModelConfig(
        vocab_size=40, d_model=16, n_layers=2, n_heads=2, max_seq_len=32, **kw
    )
    return TransformerLM(cfg, seed=seed)


class TestConfig:
    def test_d_ff_derived(self):
        cfg = ModelConfig(vocab_size=10, d_model=48)
        assert cfg.d_ff >= 48 * 8 // 3
        assert cfg.d_ff % 8 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=10, d_model=30, n_heads=4)  # not divisible
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=10, d_model=18, n_heads=6)  # odd head dim
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=0)
        with pytest.raises(ValueError):
            ModelConfig(vocab_size=10, norm_type="bogus")

    def test_num_parameters_matches_model(self):
        for tie in (True, False):
            for act in ("swiglu", "gelu"):
                cfg = ModelConfig(
                    vocab_size=33,
                    d_model=16,
                    n_layers=2,
                    n_heads=2,
                    max_seq_len=16,
                    tie_embeddings=tie,
                    activation=act,
                )
                assert TransformerLM(cfg).num_parameters() == cfg.num_parameters()

    def test_scaled_config_ladder(self):
        sizes = [
            scaled_config(100, tier).num_parameters()
            for tier in ("tiny", "small", "medium", "large")
        ]
        assert sizes == sorted(sizes)

    def test_scaled_config_unknown(self):
        with pytest.raises(ValueError):
            scaled_config(100, "gigantic")

    def test_roundtrip(self):
        cfg = ModelConfig(vocab_size=10, d_model=16, n_heads=2)
        assert ModelConfig.from_dict(cfg.to_dict()) == cfg


class TestGeneration:
    def test_kv_cache_matches_full_forward(self):
        """Incremental decoding must agree with the full-sequence forward."""
        model = small_model(seed=2)
        prompt = [1, 5, 9, 3]
        out = greedy_decode(model, prompt, max_new_tokens=6)
        # recompute each step with a full forward
        seq = list(prompt)
        expected = []
        for _ in range(6):
            logits = model.forward(np.asarray([seq]))
            tok = int(np.argmax(logits[0, -1]))
            expected.append(tok)
            seq.append(tok)
        assert out == expected

    def test_greedy_deterministic(self):
        model = small_model(seed=2)
        a = greedy_decode(model, [1, 2, 3], max_new_tokens=5)
        b = greedy_decode(model, [1, 2, 3], max_new_tokens=5)
        assert a == b

    def test_stop_tokens(self):
        model = small_model(seed=2)
        first = greedy_decode(model, [1, 2, 3], max_new_tokens=10)
        stopped = greedy_decode(
            model, [1, 2, 3], max_new_tokens=10, stop_token_ids=(first[0],)
        )
        assert stopped == [first[0]]

    def test_temperature_sampling_seeded(self):
        model = small_model(seed=2)
        cfg = GenerationConfig(max_new_tokens=5, temperature=1.0, seed=4)
        a = generate(model, [1, 2], cfg)
        b = generate(model, [1, 2], cfg)
        assert a == b

    def test_top_k_restricts(self):
        model = small_model(seed=2)
        greedy = greedy_decode(model, [1, 2], max_new_tokens=1)
        top1 = generate(
            model, [1, 2], GenerationConfig(max_new_tokens=1, temperature=2.0, top_k=1)
        )
        assert top1 == greedy

    def test_top_k_exact_under_tied_logits(self):
        """Regression: ties at the k-th logit used to survive truncation,
        inflating the candidate set beyond top_k."""
        from repro.model.sampling import _select_token

        logits = np.zeros(12, dtype=np.float32)
        logits[3] = 5.0
        logits[[5, 7, 9]] = 2.0  # three-way tie for 2nd place
        cfg = GenerationConfig(max_new_tokens=1, temperature=1.0, top_k=2, seed=0)
        rng = np.random.default_rng(0)
        picks = {
            _select_token(logits, cfg, np.random.default_rng(s))
            for s in range(200)
        }
        # exactly k=2 candidates: the max plus the lowest-index tied token
        assert picks == {3, 5}

    def test_top_k_all_tied_keeps_lowest_indices(self):
        from repro.model.sampling import _select_token

        logits = np.ones(8, dtype=np.float32)
        cfg = GenerationConfig(max_new_tokens=1, temperature=1.0, top_k=3, seed=0)
        picks = {
            _select_token(logits, cfg, np.random.default_rng(s))
            for s in range(200)
        }
        assert picks == {0, 1, 2}

    def test_top_p_one_is_identity(self):
        """top_p=1.0 (the default) must not change the sampled stream."""
        model = small_model(seed=2)
        base = generate(
            model, [1, 2], GenerationConfig(max_new_tokens=6, temperature=1.0, seed=9)
        )
        nucleus = generate(
            model,
            [1, 2],
            GenerationConfig(max_new_tokens=6, temperature=1.0, top_p=1.0, seed=9),
        )
        assert nucleus == base

    def test_top_p_tiny_nucleus_is_greedy(self):
        model = small_model(seed=2)
        greedy = greedy_decode(model, [1, 2], max_new_tokens=3)
        nucleus = generate(
            model,
            [1, 2],
            GenerationConfig(max_new_tokens=3, temperature=2.0, top_p=1e-9, seed=5),
        )
        assert nucleus == greedy

    def test_top_p_restricts_candidate_set(self):
        from repro.model.sampling import _select_token

        logits = np.full(10, -20.0, dtype=np.float32)
        logits[2] = 3.0  # ~73% of the mass
        logits[6] = 2.0  # next ~27%; together ~100%
        cfg = GenerationConfig(
            max_new_tokens=1, temperature=1.0, top_p=0.9, seed=0
        )
        picks = {
            _select_token(logits, cfg, np.random.default_rng(s))
            for s in range(300)
        }
        assert picks == {2, 6}

    def test_top_p_tie_breaks_toward_lower_ids(self):
        """Tied logits at the nucleus boundary keep lower token ids, the
        same discipline as the top_k path."""
        from repro.model.sampling import _select_token

        logits = np.ones(8, dtype=np.float32)  # uniform: each token is 1/8
        cfg = GenerationConfig(
            max_new_tokens=1, temperature=1.0, top_p=0.25, seed=0
        )
        picks = {
            _select_token(logits, cfg, np.random.default_rng(s))
            for s in range(300)
        }
        assert picks == {0, 1}

    def test_top_p_composes_with_top_k(self):
        from repro.model.sampling import _select_token

        logits = np.asarray([4.0, 4.0, 4.0, 4.0, -9.0], dtype=np.float32)
        # top_k keeps {0,1,2,3}; top_p=0.5 then keeps the first two of them
        cfg = GenerationConfig(
            max_new_tokens=1, temperature=1.0, top_k=4, top_p=0.5, seed=0
        )
        picks = {
            _select_token(logits, cfg, np.random.default_rng(s))
            for s in range(300)
        }
        assert picks == {0, 1}

    def test_top_p_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(top_p=0.0)
        with pytest.raises(ValueError):
            GenerationConfig(top_p=-0.5)
        with pytest.raises(ValueError):
            GenerationConfig(top_p=1.5)

    def test_long_prompt_left_truncated(self):
        model = small_model(seed=2)
        long_prompt = list(np.random.default_rng(0).integers(1, 40, size=100))
        out = generate(model, long_prompt, GenerationConfig(max_new_tokens=4))
        assert len(out) == 4

    def test_empty_prompt_raises(self):
        model = small_model()
        with pytest.raises(ValueError):
            generate(model, [], GenerationConfig(max_new_tokens=2))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(max_new_tokens=-1)
        with pytest.raises(ValueError):
            GenerationConfig(temperature=-0.1)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        model = small_model(seed=9)
        save_model(model, tmp_path / "ckpt")
        loaded = load_model(tmp_path / "ckpt")
        assert loaded.config == model.config
        x = np.asarray([[1, 2, 3]])
        np.testing.assert_allclose(model.forward(x), loaded.forward(x), atol=1e-6)

    def test_state_mismatch_detected(self):
        a = small_model()
        b = TransformerLM(
            ModelConfig(vocab_size=40, d_model=16, n_layers=1, n_heads=2, max_seq_len=32)
        )
        with pytest.raises(KeyError):
            b.load_state(a.state_copy())


class TestPrecision:
    def test_bf16_idempotent(self):
        x = np.random.default_rng(0).normal(size=100).astype(np.float32)
        once = bf16_round(x)
        np.testing.assert_array_equal(once, bf16_round(once))

    def test_bf16_error_bounded(self):
        x = np.random.default_rng(0).normal(size=1000).astype(np.float32)
        err = np.abs(bf16_round(x) - x)
        # relative error bounded by half ulp ~ 2^-8
        assert np.all(err <= np.abs(x) * 2.0**-8 + 1e-30)

    def test_bf16_representable_values_unchanged(self):
        vals = np.array([1.0, 0.5, -2.0, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(bf16_round(vals), vals)

    def test_ulp(self):
        assert bf16_ulp(1.0) == pytest.approx(2.0**-7)
        assert bf16_ulp(2.0) == pytest.approx(2.0**-6)
        assert bf16_ulp(0.0) > 0


class TestLoRAIntegration:
    def test_apply_restricts_trainable_params(self):
        model = small_model()
        n_before = model.num_parameters()
        apply_lora(model, LoRAConfig(rank=2), seed=0)
        names = list(model.named_parameters())
        wrapped = [n for n in names if "lora_" in n]
        assert wrapped  # adapters present
        # wq/wv frozen weights no longer exposed
        assert not any(n.endswith("attn.wq.weight") for n in names)
        assert any(n.endswith("attn.wk.weight") for n in names)  # wk untouched
        assert model.num_parameters() < n_before

    def test_apply_preserves_forward(self):
        model = small_model(seed=3)
        x = np.asarray([[1, 2, 3, 4]])
        ref = model.forward(x).copy()
        apply_lora(model, LoRAConfig(rank=2), seed=0)
        np.testing.assert_allclose(model.forward(x), ref, atol=1e-5)

    def test_merge_restores_plain_linears(self):
        model = small_model(seed=3)
        x = np.asarray([[1, 2, 3, 4]])
        adapters = apply_lora(model, LoRAConfig(rank=2), seed=0)
        # perturb adapters so the merge is non-trivial
        for ad in adapters:
            ad.params["lora_B"][...] = 0.01
        adapted = model.forward(x).copy()
        merged = merge_lora(model)
        assert merged == len(adapters)
        np.testing.assert_allclose(model.forward(x), adapted, atol=1e-5)
        # merged model exposes full parameters again
        assert any(
            n.endswith("attn.wq.weight") for n in model.named_parameters()
        )

    def test_unknown_projection_raises(self):
        model = small_model()
        with pytest.raises(ValueError):
            apply_lora(model, LoRAConfig(target_projections=("bogus",)))
