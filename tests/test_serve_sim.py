"""Deterministic-simulation tests: replay identity, faults, overload.

The replay contract: ``(workload args, seed)`` fully determines the
event log, the metrics snapshot, every request's output tokens, and the
end-of-simulation virtual time — with or without an injected fault plan.
Faults may cost work (preemption restarts) and time (degraded links) but
never change any request's final output.
"""

import dataclasses

import pytest

from repro.faults import (
    DEGRADED_LINK,
    LOSS_SPIKE,
    PREEMPTION,
    FaultEvent,
    FaultPlan,
    SERVE_FAULT_KINDS,
    ServeFaultInjector,
)
from repro.model import ModelConfig, TransformerLM
from repro.serve import (
    RequestStatus,
    SchedulerConfig,
    ServeConfig,
    make_workload,
    simulate,
)

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    return TransformerLM(
        ModelConfig(
            vocab_size=VOCAB, d_model=32, n_layers=2, n_heads=4, max_seq_len=96
        ),
        seed=0,
    )


def workload(n=12, seed=7, **kw):
    return make_workload(n, seed=seed, vocab_size=VOCAB, **kw)


class TestWorkload:
    def test_same_seed_same_workload(self):
        assert workload() == workload()

    def test_different_seed_different_workload(self):
        assert workload(seed=7) != workload(seed=8)

    def test_arrivals_increase_and_share_scaffold(self):
        specs = workload(n=6, scaffold_len=10)
        arrivals = [s.arrival for s in specs]
        assert arrivals == sorted(arrivals)
        scaffold = specs[0].prompt_ids[:10]
        assert all(s.prompt_ids[:10] == scaffold for s in specs)

    def test_vocab_floor(self):
        with pytest.raises(ValueError):
            make_workload(3, seed=0, vocab_size=3)


class TestReplayIdentity:
    def test_clean_replay_is_bit_identical(self, model):
        specs = workload(temperature=0.8)
        first = simulate(model, specs)
        second = simulate(model, specs)
        assert first.replay_key_view() == second.replay_key_view()

    def test_every_request_reaches_a_terminal_state(self, model):
        specs = workload(n=16, temperature=0.8)
        result = simulate(model, specs)
        assert len(result.summaries) == len(specs)
        terminal = {"finished", "expired", "cancelled", "rejected"}
        assert all(s["status"] in terminal for s in result.summaries)

    def test_generate_and_score_both_present(self, model):
        result = simulate(model, workload(n=16))
        kinds = {s["kind"] for s in result.summaries}
        assert kinds == {"generate", "score"}

    def test_metrics_account_for_all_requests(self, model):
        specs = workload(n=10)
        result = simulate(model, specs)
        m = result.metrics
        assert m["submitted"] == len(specs)
        assert (
            m["finished"] + m["expired"] == m["submitted"]
        )  # nothing lost, nothing stuck


class TestFaultedReplay:
    PLAN = FaultPlan(
        events=(
            FaultEvent(kind=PREEMPTION, step=2, rank=0),
            FaultEvent(kind=PREEMPTION, step=5, rank=1),
            FaultEvent(kind=DEGRADED_LINK, step=4, duration=6, factor=4.0),
        ),
        seed=9,
    )

    def test_faults_never_change_outputs(self, model):
        specs = workload(temperature=0.9)
        clean = simulate(model, specs)
        faulted = simulate(model, specs, fault_hook=ServeFaultInjector(self.PLAN))
        assert faulted.outputs == clean.outputs
        assert any(e[0] == "preempt" for e in faulted.events)

    def test_faulted_replay_is_bit_identical(self, model):
        specs = workload(temperature=0.9)
        first = simulate(model, specs, fault_hook=ServeFaultInjector(self.PLAN))
        second = simulate(model, specs, fault_hook=ServeFaultInjector(self.PLAN))
        assert first.replay_key_view() == second.replay_key_view()

    def test_injected_record_replays_identically(self, model):
        specs = workload()
        injector = ServeFaultInjector(self.PLAN)
        simulate(model, specs, fault_hook=injector)
        recorded = list(injector.injected)
        assert recorded  # the plan actually fired
        injector.reset()
        assert injector.injected == []
        simulate(model, specs, fault_hook=injector)
        assert injector.injected == recorded

    def test_degraded_link_slows_virtual_time_only(self, model):
        specs = workload()
        clean = simulate(model, specs)
        slow_plan = FaultPlan(
            events=(FaultEvent(kind=DEGRADED_LINK, step=0, duration=50, factor=10.0),),
            seed=1,
        )
        degraded = simulate(
            model, specs, fault_hook=ServeFaultInjector(slow_plan)
        )
        assert degraded.end_time > clean.end_time
        assert degraded.outputs == clean.outputs

    def test_preemption_is_recorded_per_request(self, model):
        # all-GENERATE traffic so a decoding request is running at step 2
        specs = workload(temperature=0.9, generate_fraction=1.0)
        plan = FaultPlan(
            events=(FaultEvent(kind=PREEMPTION, step=2, rank=0),), seed=3
        )
        result = simulate(model, specs, fault_hook=ServeFaultInjector(plan))
        assert sum(s["preemptions"] for s in result.summaries) == 1
        assert result.metrics["preempted"] == 1

    def test_unsupported_fault_kind_rejected(self):
        plan = FaultPlan(
            events=(FaultEvent(kind=LOSS_SPIKE, step=1, factor=2.0),), seed=0
        )
        with pytest.raises(ValueError, match="cannot inject"):
            ServeFaultInjector(plan)
        assert PREEMPTION in SERVE_FAULT_KINDS


class TestOverloadAndDeadlines:
    TIGHT = ServeConfig(
        queue_capacity=2,
        scheduler=SchedulerConfig(token_budget=96, max_running=1),
    )

    def test_burst_overload_drops_deterministically(self, model):
        specs = workload(n=16, mean_gap=0.0)  # everything arrives at once
        first = simulate(model, specs, config=self.TIGHT, max_retries=0)
        second = simulate(model, specs, config=self.TIGHT, max_retries=0)
        assert first.dropped  # the burst exceeded capacity
        assert first.dropped == second.dropped
        assert first.metrics["rejected"] >= len(first.dropped)

    def test_retry_after_hint_eventually_admits(self, model):
        specs = workload(n=16, mean_gap=0.0)
        result = simulate(model, specs, config=self.TIGHT, max_retries=50)
        assert result.dropped == []
        assert result.metrics["finished"] == len(specs)

    def test_deadlines_expire_queued_requests(self, model):
        specs = workload(n=16, mean_gap=0.0, deadline_offset=0.5)
        result = simulate(model, specs, config=self.TIGHT, max_retries=50)
        assert result.metrics["expired"] > 0
        expired = [s for s in result.summaries if s["status"] == "expired"]
        assert expired
        assert all(s["finish_reason"] == "deadline" for s in expired)
        assert all(s["n_output"] == 0 for s in expired)

    def test_expired_requests_never_decode(self, model):
        specs = [
            dataclasses.replace(s, deadline_offset=0.01)
            for s in workload(n=8, mean_gap=0.0)
        ]
        result = simulate(model, specs, config=self.TIGHT)
        statuses = {s["request_id"]: s["status"] for s in result.summaries}
        # the first admitted request runs; late ones expire while queued
        assert statuses["req-0000"] == RequestStatus.FINISHED.value
        assert "expired" in statuses.values()
