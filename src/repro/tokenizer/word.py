"""Word-level tokenizer for the micro model zoo.

Tiny transformers learn knowledge-recall tasks far more readily over a
compact semantic vocabulary than over subwords, so the micro zoo trains on
word tokens.  Two *conventions* are supported to mirror the real-world
tokenizer variation the paper's evaluation must cope with:

* ``space_prefix=False`` ("llama-2 style" here): every word is a bare token;
  the answer letter after ``Answer:`` is the token ``"A"``.
* ``space_prefix=True`` ("llama-3 style" here): words that follow whitespace
  are distinct, marker-prefixed tokens; the answer letter is ``"ĠA"``
  (rendered ``" A"``).

The evaluation harness must discover which convention a model uses by
probing the logits (paper Section V-B); these two modes give that code a
real behavioural difference to discover.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.tokenizer.bpe import SPACE_MARKER, pretokenize
from repro.tokenizer.normalize import TextNormalizer
from repro.tokenizer.vocab import SpecialTokens, Vocabulary


class WordTokenizer:
    """Frequency-capped word-level tokenizer."""

    def __init__(
        self,
        vocab: Vocabulary,
        normalizer: Optional[TextNormalizer] = None,
        space_prefix: bool = False,
    ) -> None:
        self.vocab = vocab
        self.normalizer = normalizer or TextNormalizer()
        self.space_prefix = space_prefix

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        texts: Iterable[str],
        vocab_size: int = 8192,
        normalizer: Optional[TextNormalizer] = None,
        specials: Optional[SpecialTokens] = None,
        space_prefix: bool = False,
        min_freq: int = 1,
    ) -> "WordTokenizer":
        """Build a vocabulary from the ``vocab_size`` most frequent words.

        Ties are broken lexicographically so training is deterministic for a
        given corpus regardless of iteration order.
        """
        normalizer = normalizer or TextNormalizer()
        freq: Dict[str, int] = {}
        for text in texts:
            for word in cls._split(normalizer(text), space_prefix):
                freq[word] = freq.get(word, 0) + 1
        vocab = Vocabulary(specials)
        budget = vocab_size - len(vocab)
        if budget < 0:
            raise ValueError(f"vocab_size={vocab_size} cannot hold specials")
        ranked = sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))
        for word, count in ranked[:budget]:
            if count < min_freq:
                break
            vocab.add(word)
        return cls(vocab, normalizer, space_prefix)

    @staticmethod
    def _split(text: str, space_prefix: bool) -> List[str]:
        words = pretokenize(text)
        if space_prefix:
            return words
        return [w[len(SPACE_MARKER) :] if w.startswith(SPACE_MARKER) else w for w in words]

    # ------------------------------------------------------------------
    def encode(
        self, text: str, add_bos: bool = False, add_eos: bool = False
    ) -> List[int]:
        ids: List[int] = []
        if add_bos:
            ids.append(self.vocab.bos_id)
        for word in self._split(self.normalizer(text), self.space_prefix):
            ids.append(self.vocab.id_of(word))
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        special = set(self.vocab.special_ids)
        parts: List[str] = []
        for idx in ids:
            if skip_special and idx in special:
                continue
            parts.append(self.vocab.token_of(idx))
        if self.space_prefix:
            return "".join(parts).replace(SPACE_MARKER, " ").strip()
        return " ".join(parts)

    # ------------------------------------------------------------------
    def token_ids_for_answer_letter(self, letter: str) -> List[int]:
        """Candidate ids rendering as ``letter`` under this convention."""
        return list(self.answer_token_candidates(letter).values())

    def answer_token_candidates(self, letter: str) -> Dict[str, int]:
        """Map convention name -> token id for ``letter``, when in vocab."""
        out: Dict[str, int] = {}
        if letter in self.vocab:
            out["bare"] = self.vocab.strict_id_of(letter)
        if SPACE_MARKER + letter in self.vocab:
            out["space-prefixed"] = self.vocab.strict_id_of(SPACE_MARKER + letter)
        return out

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "word",
            "vocab": self.vocab.to_dict(),
            "space_prefix": self.space_prefix,
            "normalizer": {
                "lowercase": self.normalizer.lowercase,
                "collapse_whitespace": self.normalizer.collapse_whitespace,
                "strip_control": self.normalizer.strip_control,
                "nfc": self.normalizer.nfc,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WordTokenizer":
        vocab = Vocabulary.from_dict(data["vocab"])  # type: ignore[arg-type]
        norm = TextNormalizer(**data["normalizer"])  # type: ignore[arg-type]
        return cls(vocab, norm, bool(data["space_prefix"]))
