"""Tokenization substrate.

Two tokenizer families are provided:

* :class:`~repro.tokenizer.bpe.BPETokenizer` — a from-scratch byte-pair
  encoding tokenizer (trainable), mirroring the subword tokenizers of the
  LLaMA family.
* :class:`~repro.tokenizer.word.WordTokenizer` — a word-level tokenizer used
  by the micro model zoo, where a compact semantic vocabulary lets tiny
  models learn knowledge-recall tasks.

Both expose the same protocol (``encode`` / ``decode`` / ``vocab``) and both
support two *answer-token conventions*: some families emit option letters as
bare tokens (``"A"``) and some as space-prefixed tokens (``" A"``).  The
paper's next-token benchmarking method discovers the convention dynamically
(Section V-B); we reproduce that variation here so the discovery code path is
exercised for real.
"""

from repro.tokenizer.vocab import SpecialTokens, Vocabulary
from repro.tokenizer.normalize import TextNormalizer
from repro.tokenizer.bpe import BPETokenizer
from repro.tokenizer.word import WordTokenizer

__all__ = [
    "SpecialTokens",
    "Vocabulary",
    "TextNormalizer",
    "BPETokenizer",
    "WordTokenizer",
]
