"""Text normalization applied before tokenization."""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass

_WS_RE = re.compile(r"\s+")
_CONTROL_RE = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f\x7f]")


@dataclass(frozen=True)
class TextNormalizer:
    """Configurable normalizer.

    ``lowercase`` folds case (the micro zoo uses this to shrink the word
    vocabulary); ``collapse_whitespace`` maps all whitespace runs to single
    spaces; ``strip_control`` removes C0 control characters that the OCR
    noise model can inject.
    """

    lowercase: bool = False
    collapse_whitespace: bool = True
    strip_control: bool = True
    nfc: bool = True

    def __call__(self, text: str) -> str:
        if self.nfc:
            text = unicodedata.normalize("NFC", text)
        if self.strip_control:
            text = _CONTROL_RE.sub(" ", text)
        if self.lowercase:
            text = text.lower()
        if self.collapse_whitespace:
            text = _WS_RE.sub(" ", text).strip()
        return text
