"""Vocabulary: bidirectional token <-> id mapping with reserved specials."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class SpecialTokens:
    """Reserved control tokens.

    ``pad`` is used for batch padding (and is always id 0 so that padded
    positions can be masked by comparing against a constant), ``bos``/``eos``
    delimit documents, and ``unk`` absorbs out-of-vocabulary symbols.
    """

    pad: str = "<pad>"
    bos: str = "<bos>"
    eos: str = "<eos>"
    unk: str = "<unk>"

    def as_list(self) -> List[str]:
        return [self.pad, self.bos, self.eos, self.unk]


class Vocabulary:
    """Append-only token table.

    Tokens are assigned consecutive ids in insertion order; the four special
    tokens always occupy ids 0..3.  The table is append-only: removing or
    renumbering tokens would silently invalidate any trained model that
    embeds ids, so that operation simply does not exist.
    """

    def __init__(self, specials: Optional[SpecialTokens] = None) -> None:
        self.specials = specials or SpecialTokens()
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for tok in self.specials.as_list():
            self.add(tok)

    # -- construction -----------------------------------------------------
    def add(self, token: str) -> int:
        """Add ``token`` if absent; return its id either way."""
        if token in self._token_to_id:
            return self._token_to_id[token]
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def add_all(self, tokens: Iterable[str]) -> None:
        for tok in tokens:
            self.add(tok)

    # -- lookup -----------------------------------------------------------
    def id_of(self, token: str) -> int:
        """Return the id of ``token``, falling back to ``<unk>``."""
        return self._token_to_id.get(token, self.unk_id)

    def strict_id_of(self, token: str) -> int:
        """Return the id of ``token``; raise ``KeyError`` if unknown."""
        return self._token_to_id[token]

    def token_of(self, idx: int) -> str:
        return self._id_to_token[idx]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    # -- special ids --------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.specials.pad]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[self.specials.bos]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[self.specials.eos]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.specials.unk]

    @property
    def special_ids(self) -> List[int]:
        return [self.pad_id, self.bos_id, self.eos_id, self.unk_id]

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "specials": self.specials.as_list(),
            "tokens": list(self._id_to_token),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Vocabulary":
        specials_list = list(data["specials"])  # type: ignore[arg-type]
        specials = SpecialTokens(*specials_list)
        vocab = cls(specials)
        for tok in data["tokens"]:  # type: ignore[union-attr]
            vocab.add(str(tok))
        return vocab
