"""Byte-pair encoding tokenizer, trained from scratch.

The implementation follows the classic Sennrich-style word-internal BPE:

1. Pre-tokenize text into "words" (maximal runs of letters/digits, or single
   punctuation marks).  A word that was preceded by a space is prefixed with
   the space marker ``Ġ`` (the GPT-2 convention), so that spacing
   survives a decode round-trip and so that ``"A"`` and ``" A"`` are distinct
   tokens — the property the paper's answer-token discovery relies on.
2. Each word starts as a sequence of characters; training repeatedly merges
   the most frequent adjacent symbol pair until the vocabulary budget is
   reached.
3. Encoding applies the learned merges in rank order (lowest rank first),
   then maps symbols to vocabulary ids.

Training complexity is kept manageable by operating on the *word frequency
table* rather than the raw corpus, and by incrementally updating pair counts
after each merge (only words containing the merged pair are touched).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.tokenizer.normalize import TextNormalizer
from repro.tokenizer.vocab import SpecialTokens, Vocabulary

SPACE_MARKER = "Ġ"  # 'Ġ', marks a word that follows a space

_WORD_RE = re.compile(r"[A-Za-z0-9]+|[^\sA-Za-z0-9]")

Pair = Tuple[str, str]


def pretokenize(text: str) -> List[str]:
    """Split text into marker-prefixed words.

    The first word of the text carries no marker; every word that follows
    whitespace is prefixed with :data:`SPACE_MARKER`.
    """
    words: List[str] = []
    for match in _WORD_RE.finditer(text):
        word = match.group(0)
        preceded_by_space = match.start() > 0 and text[match.start() - 1].isspace()
        if preceded_by_space:
            word = SPACE_MARKER + word
        words.append(word)
    return words


def _count_pairs(
    word_symbols: Dict[str, List[str]], word_freq: Dict[str, int]
) -> Dict[Pair, int]:
    counts: Dict[Pair, int] = {}
    for word, freq in word_freq.items():
        symbols = word_symbols[word]
        for a, b in zip(symbols, symbols[1:]):
            counts[(a, b)] = counts.get((a, b), 0) + freq
    return counts


def _merge_word(symbols: List[str], pair: Pair, merged: str) -> List[str]:
    out: List[str] = []
    i = 0
    n = len(symbols)
    while i < n:
        if i + 1 < n and symbols[i] == pair[0] and symbols[i + 1] == pair[1]:
            out.append(merged)
            i += 2
        else:
            out.append(symbols[i])
            i += 1
    return out


class BPETokenizer:
    """Trainable BPE tokenizer.

    Parameters
    ----------
    vocab:
        Vocabulary holding specials + characters + merged symbols.
    merges:
        Ordered list of merge pairs; the index is the merge rank.
    normalizer:
        Applied to every input text before pre-tokenization.
    """

    def __init__(
        self,
        vocab: Vocabulary,
        merges: Sequence[Pair],
        normalizer: Optional[TextNormalizer] = None,
    ) -> None:
        self.vocab = vocab
        self.merges: List[Pair] = list(merges)
        self.merge_ranks: Dict[Pair, int] = {p: i for i, p in enumerate(self.merges)}
        self.normalizer = normalizer or TextNormalizer()
        self._encode_cache: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        texts: Iterable[str],
        vocab_size: int,
        normalizer: Optional[TextNormalizer] = None,
        specials: Optional[SpecialTokens] = None,
        min_pair_freq: int = 2,
    ) -> "BPETokenizer":
        """Learn merges from ``texts`` until ``len(vocab) == vocab_size``.

        ``vocab_size`` must leave room for the specials and the base
        character alphabet; training stops early if no pair reaches
        ``min_pair_freq``.
        """
        normalizer = normalizer or TextNormalizer()
        word_freq: Dict[str, int] = {}
        for text in texts:
            for word in pretokenize(normalizer(text)):
                word_freq[word] = word_freq.get(word, 0) + 1

        vocab = Vocabulary(specials)
        alphabet = sorted({ch for word in word_freq for ch in word})
        vocab.add_all(alphabet)
        if vocab_size < len(vocab):
            raise ValueError(
                f"vocab_size={vocab_size} is smaller than specials+alphabet "
                f"({len(vocab)})"
            )

        word_symbols: Dict[str, List[str]] = {w: list(w) for w in word_freq}
        pair_counts = _count_pairs(word_symbols, word_freq)
        # Words indexed by the symbols they contain, so a merge only revisits
        # words that could change.
        words_with_symbol: Dict[str, set] = {}
        for word, symbols in word_symbols.items():
            for s in symbols:
                words_with_symbol.setdefault(s, set()).add(word)

        merges: List[Pair] = []
        while len(vocab) < vocab_size and pair_counts:
            # Deterministic tie-break: highest count, then lexicographic.
            best = max(pair_counts.items(), key=lambda kv: (kv[1], kv[0]))
            (a, b), freq = best
            if freq < min_pair_freq:
                break
            merged = a + b
            merges.append((a, b))
            vocab.add(merged)

            candidates = words_with_symbol.get(a, set()) & words_with_symbol.get(
                b, set()
            )
            for word in candidates:
                old = word_symbols[word]
                new = _merge_word(old, (a, b), merged)
                if new == old:
                    continue
                f = word_freq[word]
                for p in zip(old, old[1:]):
                    pair_counts[p] -= f
                    if pair_counts[p] <= 0:
                        del pair_counts[p]
                for p in zip(new, new[1:]):
                    pair_counts[p] = pair_counts.get(p, 0) + f
                word_symbols[word] = new
                for s in new:
                    words_with_symbol.setdefault(s, set()).add(word)
        return cls(vocab, merges, normalizer)

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def _bpe_word(self, word: str) -> List[str]:
        cached = self._encode_cache.get(word)
        if cached is not None:
            return cached
        symbols = list(word)
        while len(symbols) > 1:
            ranked = [
                (self.merge_ranks.get((a, b)), i)
                for i, (a, b) in enumerate(zip(symbols, symbols[1:]))
            ]
            ranked = [(r, i) for r, i in ranked if r is not None]
            if not ranked:
                break
            rank, i = min(ranked)
            symbols = (
                symbols[:i] + [symbols[i] + symbols[i + 1]] + symbols[i + 2 :]
            )
        self._encode_cache[word] = symbols
        return symbols

    def encode(
        self, text: str, add_bos: bool = False, add_eos: bool = False
    ) -> List[int]:
        """Tokenize ``text`` into vocabulary ids (unknown symbols -> unk)."""
        ids: List[int] = []
        if add_bos:
            ids.append(self.vocab.bos_id)
        for word in pretokenize(self.normalizer(text)):
            for symbol in self._bpe_word(word):
                ids.append(self.vocab.id_of(symbol))
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        """Map ids back to text, turning space markers into spaces."""
        special = set(self.vocab.special_ids)
        parts: List[str] = []
        for idx in ids:
            if skip_special and idx in special:
                continue
            parts.append(self.vocab.token_of(idx))
        text = "".join(parts)
        return text.replace(SPACE_MARKER, " ").strip()

    # ------------------------------------------------------------------
    # introspection used by the evaluation harness
    # ------------------------------------------------------------------
    def token_ids_for_answer_letter(self, letter: str) -> List[int]:
        """Ids whose token renders as ``letter`` (bare or space-prefixed).

        The next-token benchmarking method scans these candidates when it
        discovers the model's answer-token convention.
        """
        return list(self.answer_token_candidates(letter).values())

    def answer_token_candidates(self, letter: str) -> Dict[str, int]:
        """Map convention name -> token id for ``letter``, when in vocab."""
        out: Dict[str, int] = {}
        if letter in self.vocab:
            out["bare"] = self.vocab.strict_id_of(letter)
        if SPACE_MARKER + letter in self.vocab:
            out["space-prefixed"] = self.vocab.strict_id_of(SPACE_MARKER + letter)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "bpe",
            "vocab": self.vocab.to_dict(),
            "merges": [list(p) for p in self.merges],
            "normalizer": {
                "lowercase": self.normalizer.lowercase,
                "collapse_whitespace": self.normalizer.collapse_whitespace,
                "strip_control": self.normalizer.strip_control,
                "nfc": self.normalizer.nfc,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BPETokenizer":
        vocab = Vocabulary.from_dict(data["vocab"])  # type: ignore[arg-type]
        merges = [tuple(p) for p in data["merges"]]  # type: ignore[union-attr]
        norm = TextNormalizer(**data["normalizer"])  # type: ignore[arg-type]
        return cls(vocab, merges, norm)
