"""Simulated HPC substrate.

The paper's training runs used multi-GPU A100 nodes (OLCF Frontier
allocation) through LMFlow's distributed backends.  Without GPUs, this
package reproduces the *system* layer in simulation:

* :mod:`repro.parallel.mesh` — device/rank topology (nodes x GPUs);
* :mod:`repro.parallel.collectives` — MPI-style collectives over simulated
  ranks with a ring-algorithm alpha-beta cost model;
* :mod:`repro.parallel.data_parallel` — DDP training: sharded batches,
  gradient all-reduce, replica-consistency invariants;
* :mod:`repro.parallel.pipeline_parallel` — GPipe/1F1B schedules with
  bubble accounting, plus a numerically exact pipelined executor;
* :mod:`repro.parallel.cluster` — A100 cluster model with FLOP-rule
  GPU-hour estimation (regenerates the paper's cost accounting).

Collectives run all ranks in one process (the host has one core); the cost
model supplies the *timing* a real cluster would exhibit, which is what the
scaling benchmarks measure.
"""

from repro.parallel.mesh import Device, DeviceMesh
from repro.parallel.collectives import (
    CollectiveHook,
    CollectiveStats,
    Communicator,
    RingCostModel,
)
from repro.parallel.data_parallel import DataParallelTrainer, DDPConfig, DDPResult
from repro.parallel.pipeline_parallel import (
    PipelineOp,
    PipelineSchedule,
    PipelinedModel,
    gpipe_schedule,
    one_f_one_b_schedule,
)
from repro.parallel.tensor_parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLPTrainer,
    mlp_tp_forward,
    tp_memory_per_rank,
)
from repro.parallel.zero_optimizer import Zero1AdamW, zero1_memory_per_rank
from repro.parallel.cluster import (
    A100_40GB,
    A100_80GB,
    ClusterModel,
    GPUSpec,
    TrainingCostEstimate,
)

__all__ = [
    "Device",
    "DeviceMesh",
    "Communicator",
    "CollectiveHook",
    "RingCostModel",
    "CollectiveStats",
    "DataParallelTrainer",
    "DDPConfig",
    "DDPResult",
    "PipelineOp",
    "PipelineSchedule",
    "PipelinedModel",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "Zero1AdamW",
    "zero1_memory_per_rank",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLPTrainer",
    "mlp_tp_forward",
    "tp_memory_per_rank",
    "GPUSpec",
    "A100_40GB",
    "A100_80GB",
    "ClusterModel",
    "TrainingCostEstimate",
]
