"""GPU cluster cost model.

Regenerates the paper's Section III cost accounting (32 / ~2,000 A100-hours
for CPT of the 8B / 70B models, 12 / 100 for SFT, 64 for full-instruct
inference over 4,425 MCQs) from first-principles FLOP rules:

* training FLOPs ~= ``6 * N * T`` (N parameters, T tokens), plus the
  attention term ``12 * L * d * s`` per token;
* prefill inference FLOPs ~= ``2 * N`` per token (compute-bound);
* decode is memory-bandwidth-bound: each generated token streams the full
  parameter set, amortized over the serving batch.

Model FLOPs utilization (MFU) is a per-phase calibration constant: single
-node 8B runs reach ~0.45, multi-node sharded 70B training in an academic
setting reaches far less (the paper's own 2,000 GPU-hour figure implies
~0.06); SFT efficiency is lower still because short padded conversations
waste compute.  The calibrated presets and their provenance are documented
in EXPERIMENTS.md (experiment C1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class GPUSpec:
    """One accelerator model."""

    name: str
    peak_bf16_tflops: float
    memory_gb: float
    memory_bandwidth_gbs: float
    hourly_cost_usd: float = 2.0


A100_40GB = GPUSpec("A100-40GB", 312.0, 40.0, 1555.0, 2.0)
A100_80GB = GPUSpec("A100-80GB", 312.0, 80.0, 2039.0, 2.5)


@dataclass
class TrainingCostEstimate:
    """Output of a cost estimation call."""

    flops: float
    gpu_hours: float
    wall_hours: float
    gpus_used: int
    usd: float
    mfu: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "flops": self.flops,
            "gpu_hours": self.gpu_hours,
            "wall_hours": self.wall_hours,
            "gpus_used": float(self.gpus_used),
            "usd": self.usd,
            "mfu": self.mfu,
        }


def transformer_train_flops_per_token(
    n_params: float, n_layers: int = 0, d_model: int = 0, seq_len: int = 0
) -> float:
    """``6N`` plus the quadratic-attention correction ``12 L d s``."""
    flops = 6.0 * n_params
    if n_layers and d_model and seq_len:
        flops += 12.0 * n_layers * d_model * seq_len
    return flops


@dataclass
class ClusterModel:
    """A homogeneous GPU cluster with phase-specific efficiency constants.

    ``train_mfu_single_node`` applies to models that fit on one node;
    ``train_mfu_multi_node`` to models whose optimizer state exceeds node
    memory and must shard across nodes (the 70B case); ``sft_efficiency``
    multiplies training MFU during SFT (padding waste on short
    conversations); ``decode_batch`` and ``tensor_parallel`` shape the
    inference estimate.
    """

    gpu: GPUSpec = A100_40GB
    gpus_per_node: int = 8
    train_mfu_single_node: float = 0.45
    train_mfu_multi_node: float = 0.065
    sft_efficiency: float = 0.5
    decode_batch: int = 1
    tensor_parallel_70b: int = 4
    # bytes per parameter for train-state sizing: bf16 weights + grads +
    # fp32 Adam moments ~= 16 bytes/param
    train_bytes_per_param: float = 16.0

    # ------------------------------------------------------------------
    def fits_single_node(self, n_params: float) -> bool:
        need_gb = n_params * self.train_bytes_per_param / 1e9
        return need_gb <= self.gpu.memory_gb * self.gpus_per_node

    def training_mfu(self, n_params: float) -> float:
        return (
            self.train_mfu_single_node
            if self.fits_single_node(n_params)
            else self.train_mfu_multi_node
        )

    def min_training_gpus(self, n_params: float) -> int:
        need_gb = n_params * self.train_bytes_per_param / 1e9
        gpus = max(1, int(-(-need_gb // self.gpu.memory_gb)))  # ceil
        # round up to whole nodes once sharding is required
        if gpus > 1:
            nodes = -(-gpus // self.gpus_per_node)
            gpus = nodes * self.gpus_per_node
        return gpus

    # ------------------------------------------------------------------
    def estimate_cpt(
        self,
        n_params: float,
        tokens: float,
        n_layers: int = 0,
        d_model: int = 0,
        seq_len: int = 0,
        mfu: Optional[float] = None,
    ) -> TrainingCostEstimate:
        """GPU-hours to continually pretrain ``n_params`` on ``tokens``."""
        mfu = mfu if mfu is not None else self.training_mfu(n_params)
        flops = tokens * transformer_train_flops_per_token(
            n_params, n_layers, d_model, seq_len
        )
        effective = self.gpu.peak_bf16_tflops * 1e12 * mfu
        gpu_seconds = flops / effective
        gpu_hours = gpu_seconds / 3600.0
        gpus = self.min_training_gpus(n_params)
        return TrainingCostEstimate(
            flops=flops,
            gpu_hours=gpu_hours,
            wall_hours=gpu_hours / gpus,
            gpus_used=gpus,
            usd=gpu_hours * self.gpu.hourly_cost_usd,
            mfu=mfu,
        )

    def estimate_sft(
        self,
        n_params: float,
        samples: int,
        padded_seq_len: int,
        mfu: Optional[float] = None,
    ) -> TrainingCostEstimate:
        """GPU-hours for SFT: every sample is padded to ``padded_seq_len``.

        Unlike CPT, SFT uses the single-node MFU for all model sizes: the
        paper's reported 12h/100h pair scales almost exactly with the
        parameter ratio (8.3x vs 8.75x), implying its 70B SFT did not pay
        the multi-node penalty the long CPT run did (short jobs can use
        offload-friendly schedules).  ``sft_efficiency`` covers padding
        waste on short conversations.
        """
        base_mfu = mfu if mfu is not None else self.train_mfu_single_node
        eff_mfu = base_mfu * self.sft_efficiency
        tokens = float(samples) * padded_seq_len
        flops = tokens * transformer_train_flops_per_token(n_params)
        effective = self.gpu.peak_bf16_tflops * 1e12 * eff_mfu
        gpu_hours = flops / effective / 3600.0
        gpus = self.min_training_gpus(n_params)
        return TrainingCostEstimate(
            flops=flops,
            gpu_hours=gpu_hours,
            wall_hours=gpu_hours / gpus,
            gpus_used=gpus,
            usd=gpu_hours * self.gpu.hourly_cost_usd,
            mfu=eff_mfu,
        )

    def estimate_inference(
        self,
        n_params: float,
        n_requests: int,
        prompt_tokens: int,
        gen_tokens: int,
        weight_bytes_per_param: float = 2.0,
    ) -> TrainingCostEstimate:
        """GPU-hours to serve ``n_requests`` chat completions.

        Prefill is compute-bound at training-grade MFU; decode is
        memory-bound: each token streams the weights once per serving
        batch of ``decode_batch`` concurrent requests.
        """
        serve_gb = n_params * weight_bytes_per_param / 1e9
        tp = max(1, int(-(-serve_gb // self.gpu.memory_gb)))
        if n_params >= 3e10:
            tp = max(tp, self.tensor_parallel_70b)
        prefill_flops = 2.0 * n_params * prompt_tokens * n_requests
        prefill_gpu_s = prefill_flops / (
            self.gpu.peak_bf16_tflops * 1e12 * self.train_mfu_single_node
        )
        weight_bytes = n_params * weight_bytes_per_param
        decode_s_per_tok = weight_bytes / (
            self.gpu.memory_bandwidth_gbs * 1e9 * tp
        )
        decode_wall_s = n_requests * gen_tokens * decode_s_per_tok / self.decode_batch
        decode_gpu_s = decode_wall_s * tp
        gpu_hours = (prefill_gpu_s + decode_gpu_s) / 3600.0
        return TrainingCostEstimate(
            flops=prefill_flops + 2.0 * n_params * gen_tokens * n_requests,
            gpu_hours=gpu_hours,
            wall_hours=gpu_hours / tp,
            gpus_used=tp,
            usd=gpu_hours * self.gpu.hourly_cost_usd,
            mfu=self.train_mfu_single_node,
        )
