"""Data-parallel (DDP) training over simulated ranks.

Each rank holds a full model replica; every global batch is split into
per-rank shards, each replica computes gradients on its shard, gradients
are averaged with an all-reduce, and each replica applies the identical
optimizer step.  The implementation preserves DDP's defining invariant —
**replicas never diverge** — which the test suite asserts bit-exactly.

Because the host is single-core, replicas execute sequentially; the
communicator's cost model supplies the timing a real cluster would see,
from which the scaling benchmarks compute parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.model.config import ModelConfig
from repro.model.transformer import TransformerLM
from repro.parallel.collectives import Communicator, RingCostModel
from repro.parallel.mesh import DeviceMesh
from repro.train.optimizer import AdamW, clip_grad_norm
from repro.train.schedule import make_schedule


@dataclass
class DDPConfig:
    learning_rate: float = 1e-3
    total_steps: int = 10
    warmup_ratio: float = 0.03
    schedule: str = "cosine"
    clip_norm: float = 1.0
    weight_decay: float = 0.0
    betas: Tuple[float, float] = (0.9, 0.95)
    # Simulated per-rank compute throughput used for the timing model
    # (seconds per token of forward+backward); calibrated per GPU spec.
    seconds_per_token: float = 1e-6


@dataclass
class DDPResult:
    losses: List[float] = field(default_factory=list)
    steps: int = 0
    simulated_compute_seconds: float = 0.0
    simulated_comm_seconds: float = 0.0

    @property
    def simulated_total_seconds(self) -> float:
        return self.simulated_compute_seconds + self.simulated_comm_seconds

    def parallel_efficiency(self, serial_seconds: float, world_size: int) -> float:
        """Speedup / world_size against a serial baseline time."""
        if self.simulated_total_seconds <= 0:
            return 1.0
        speedup = serial_seconds / self.simulated_total_seconds
        return speedup / world_size


class DataParallelTrainer:
    """Synchronous DDP across all ranks of a mesh."""

    def __init__(
        self,
        mesh: DeviceMesh,
        model_config: ModelConfig,
        config: Optional[DDPConfig] = None,
        cost_model: Optional[RingCostModel] = None,
        seed: int = 0,
    ) -> None:
        self.mesh = mesh
        self.config = config or DDPConfig()
        self.comm = Communicator(mesh, cost_model=cost_model)
        # All replicas start from the same initialization — equivalent to
        # rank-0 init + broadcast, which is how real DDP bootstraps.
        self.replicas = [
            TransformerLM(model_config, seed=seed) for _ in range(mesh.world_size)
        ]
        init = self.replicas[0].state_copy()
        for replica in self.replicas[1:]:
            replica.load_state(init)
        self.optimizers = [
            AdamW(
                r.named_parameters(),
                r.named_gradients(),
                betas=self.config.betas,
                weight_decay=self.config.weight_decay,
            )
            for r in self.replicas
        ]
        self.schedule = make_schedule(
            self.config.schedule,
            self.config.learning_rate,
            self.config.total_steps,
            self.config.warmup_ratio,
        )

    # ------------------------------------------------------------------
    def shard_batch(
        self, inputs: np.ndarray, targets: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Split a global batch into one contiguous shard per rank."""
        world = self.mesh.world_size
        if inputs.shape[0] % world != 0:
            raise ValueError(
                f"global batch {inputs.shape[0]} not divisible by world size {world}"
            )
        return [
            (shard_in, shard_t)
            for shard_in, shard_t in zip(
                np.split(inputs, world), np.split(targets, world)
            )
        ]

    def compute_gradients(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Forward/backward on every shard + gradient all-reduce.

        Leaves the mean gradient in every replica (unclipped) and returns
        the mean loss.  Safe to re-run: it starts from ``zero_grad`` and
        performs no optimizer update, which is what lets the recovery
        layer discard an anomalous (fault-injected) gradient and recompute
        the step exactly.
        """
        shards = self.shard_batch(inputs, targets)
        losses = []
        flat_grads: List[np.ndarray] = []
        for replica, (x, t) in zip(self.replicas, shards):
            replica.zero_grad()
            losses.append(replica.loss_and_backward(x, t))
            grads = replica.named_gradients()
            flat_grads.append(
                np.concatenate([g.reshape(-1) for g in grads.values()])
            )
        reduced = self.comm.all_reduce(flat_grads, op="mean")
        for replica, flat in zip(self.replicas, reduced):
            grads = replica.named_gradients()
            offset = 0
            for g in grads.values():
                g[...] = flat[offset : offset + g.size].reshape(g.shape)
                offset += g.size
        return float(np.mean(losses))

    def grad_norm(self) -> float:
        """Global L2 norm of the (reduced, identical) rank-0 gradients."""
        total = 0.0
        for g in self.replicas[0].named_gradients().values():
            total += float(np.sum(g.astype(np.float64) ** 2))
        return float(np.sqrt(total))

    def apply_gradients(self) -> float:
        """Clip and apply the identical optimizer step on every replica;
        returns the learning rate used."""
        cfg = self.config
        step_idx = self.optimizers[0].step_count
        lr = self.schedule.lr(step_idx)
        for replica, optimizer in zip(self.replicas, self.optimizers):
            clip_grad_norm(replica.named_gradients(), cfg.clip_norm)
            optimizer.step(lr)
        return lr

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One synchronous DDP step on a global batch; returns mean loss."""
        loss = self.compute_gradients(inputs, targets)
        self.apply_gradients()
        return loss

    def train(
        self, batches: Iterable[Tuple[np.ndarray, np.ndarray]]
    ) -> DDPResult:
        """Run up to ``total_steps`` global-batch steps."""
        cfg = self.config
        result = DDPResult()
        comm_before = self.comm.stats.simulated_seconds
        for step, (inputs, targets) in enumerate(batches):
            if step >= cfg.total_steps:
                break
            loss = self.train_step(inputs, targets)
            result.losses.append(loss)
            result.steps += 1
            # per-rank compute: a rank processes batch/world tokens; ranks
            # run concurrently so wall time is one shard's time.
            shard_tokens = inputs.size / self.mesh.world_size
            result.simulated_compute_seconds += (
                shard_tokens * cfg.seconds_per_token
            )
        result.simulated_comm_seconds = (
            self.comm.stats.simulated_seconds - comm_before
        )
        return result

    # ------------------------------------------------------------------
    def replicas_in_sync(self) -> bool:
        """DDP invariant: all replicas hold bit-identical parameters."""
        ref = self.replicas[0].named_parameters()
        for replica in self.replicas[1:]:
            other = replica.named_parameters()
            for key, arr in ref.items():
                if not np.array_equal(arr, other[key]):
                    return False
        return True

    @property
    def model(self) -> TransformerLM:
        """The rank-0 replica (canonical model after training)."""
        return self.replicas[0]
