"""Pipeline parallelism: schedules with bubble accounting + an exact executor.

Two layers:

1. **Schedule simulation** — :func:`gpipe_schedule` and
   :func:`one_f_one_b_schedule` build per-stage timelines of forward/backward
   ops for ``m`` microbatches over ``s`` stages, verify dependency
   correctness, and compute makespan/bubble fraction under unit op costs
   (backward = 2x forward, the usual accounting).  This regenerates the
   classic results: GPipe bubble ``(s-1)/(m+s-1)``; 1F1B has the same bubble
   but bounded activation memory (``s`` in-flight microbatches instead of
   ``m``).

2. **Exact executor** — :class:`PipelinedModel` partitions a trained
   :class:`~repro.model.transformer.TransformerLM` into stage submodules and
   runs microbatched forward/backward whose accumulated gradients are
   numerically identical to monolithic training (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.transformer import TransformerLM


@dataclass(frozen=True)
class PipelineOp:
    """One scheduled cell: stage executes fwd/bwd of one microbatch."""

    stage: int
    microbatch: int
    kind: str  # "F" or "B"


@dataclass
class PipelineSchedule:
    """A per-stage ordered op list plus derived timing quantities."""

    n_stages: int
    n_microbatches: int
    per_stage_ops: List[List[PipelineOp]]
    name: str

    def validate(self) -> None:
        """Check precedence: F(s,i) needs F(s-1,i); B(s,i) needs B(s+1,i)
        and F(s,i); each stage runs each op exactly once."""
        seen: Dict[Tuple[int, int, str], int] = {}
        # assign global time slots: simulate greedy execution
        times = self._op_completion_slots()
        for (stage, mb, kind), t in times.items():
            seen[(stage, mb, kind)] = t
        for s in range(self.n_stages):
            for i in range(self.n_microbatches):
                if (s, i, "F") not in seen or (s, i, "B") not in seen:
                    raise AssertionError(f"missing op at stage {s} microbatch {i}")
                if s > 0 and seen[(s, i, "F")] <= seen[(s - 1, i, "F")]:
                    raise AssertionError(
                        f"F({s},{i}) ran before its upstream F({s - 1},{i})"
                    )
                if s < self.n_stages - 1 and seen[(s, i, "B")] <= seen[(s + 1, i, "B")]:
                    raise AssertionError(
                        f"B({s},{i}) ran before its downstream B({s + 1},{i})"
                    )
                if seen[(s, i, "B")] <= seen[(s, i, "F")]:
                    raise AssertionError(f"B({s},{i}) ran before F({s},{i})")

    def _op_completion_slots(
        self, fwd_cost: float = 1.0, bwd_cost: float = 2.0
    ) -> Dict[Tuple[int, int, str], float]:
        """Event-driven simulation: each stage executes its op list in order,
        waiting for cross-stage dependencies; returns completion times."""
        done: Dict[Tuple[int, int, str], float] = {}
        stage_time = [0.0] * self.n_stages
        cursors = [0] * self.n_stages
        total_ops = sum(len(ops) for ops in self.per_stage_ops)
        executed = 0
        while executed < total_ops:
            progressed = False
            for s in range(self.n_stages):
                while cursors[s] < len(self.per_stage_ops[s]):
                    op = self.per_stage_ops[s][cursors[s]]
                    dep: Optional[Tuple[int, int, str]] = None
                    if op.kind == "F" and s > 0:
                        dep = (s - 1, op.microbatch, "F")
                    elif op.kind == "B":
                        if s < self.n_stages - 1:
                            dep = (s + 1, op.microbatch, "B")
                    ready_at = stage_time[s]
                    if dep is not None:
                        if dep not in done:
                            break  # blocked; try other stages
                        ready_at = max(ready_at, done[dep])
                    if op.kind == "B" and (s, op.microbatch, "F") in done:
                        ready_at = max(ready_at, done[(s, op.microbatch, "F")])
                    cost = fwd_cost if op.kind == "F" else bwd_cost
                    finish = ready_at + cost
                    done[(s, op.microbatch, op.kind)] = finish
                    stage_time[s] = finish
                    cursors[s] += 1
                    executed += 1
                    progressed = True
            if not progressed:
                raise AssertionError("schedule deadlocked (circular dependency)")
        return done

    def makespan(self, fwd_cost: float = 1.0, bwd_cost: float = 2.0) -> float:
        """Completion time of the last op under the unit-cost model."""
        done = self._op_completion_slots(fwd_cost, bwd_cost)
        return max(done.values())

    def bubble_fraction(self, fwd_cost: float = 1.0, bwd_cost: float = 2.0) -> float:
        """Idle fraction: 1 - (ideal busy time) / (stages * makespan)."""
        busy_per_stage = self.n_microbatches * (fwd_cost + bwd_cost)
        span = self.makespan(fwd_cost, bwd_cost)
        return 1.0 - busy_per_stage / span

    def peak_in_flight(self) -> int:
        """Max number of microbatches any stage holds activations for.

        A stage accumulates an activation at each F and releases it at the
        matching B; the peak of that counter is the activation-memory
        watermark that distinguishes 1F1B from GPipe.
        """
        peak = 0
        for ops in self.per_stage_ops:
            held = 0
            for op in ops:
                held += 1 if op.kind == "F" else -1
                peak = max(peak, held)
        return peak


def gpipe_schedule(n_stages: int, n_microbatches: int) -> PipelineSchedule:
    """GPipe: all forwards, then all backwards."""
    if n_stages < 1 or n_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    per_stage: List[List[PipelineOp]] = []
    for s in range(n_stages):
        ops = [PipelineOp(s, i, "F") for i in range(n_microbatches)]
        ops += [PipelineOp(s, i, "B") for i in range(n_microbatches)]
        per_stage.append(ops)
    return PipelineSchedule(n_stages, n_microbatches, per_stage, "gpipe")


def one_f_one_b_schedule(n_stages: int, n_microbatches: int) -> PipelineSchedule:
    """1F1B (PipeDream-flush): warmup forwards, steady 1F1B, cooldown."""
    if n_stages < 1 or n_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    per_stage: List[List[PipelineOp]] = []
    for s in range(n_stages):
        warmup = min(n_stages - s - 1, n_microbatches)
        ops: List[PipelineOp] = [PipelineOp(s, i, "F") for i in range(warmup)]
        next_f, next_b = warmup, 0
        while next_b < n_microbatches:
            if next_f < n_microbatches:
                ops.append(PipelineOp(s, next_f, "F"))
                next_f += 1
            ops.append(PipelineOp(s, next_b, "B"))
            next_b += 1
        per_stage.append(ops)
    return PipelineSchedule(n_stages, n_microbatches, per_stage, "1f1b")


class PipelinedModel:
    """Partition a ``TransformerLM`` into stages and train microbatched.

    Stage 0 owns the embedding plus its block span; the last stage owns the
    final norm and LM head.  ``train_step`` accumulates gradients across
    microbatches exactly as the monolithic model would (each microbatch's
    forward is immediately followed by its backward so single-slot layer
    caches remain valid; the *schedule* objects above model the concurrent
    timeline a real pipeline would achieve).
    """

    def __init__(self, model: TransformerLM, n_stages: int) -> None:
        if n_stages < 1 or n_stages > len(model.blocks):
            raise ValueError(
                f"n_stages must be in 1..{len(model.blocks)} (one block min per stage)"
            )
        self.model = model
        self.n_stages = n_stages
        n_blocks = len(model.blocks)
        base, extra = divmod(n_blocks, n_stages)
        self.stage_spans: List[Tuple[int, int]] = []
        start = 0
        for s in range(n_stages):
            size = base + (1 if s < extra else 0)
            self.stage_spans.append((start, start + size))
            start += size

    def stage_parameter_counts(self) -> List[int]:
        """Parameters per stage (embedding on stage 0, head on last)."""
        counts = []
        for s, (lo, hi) in enumerate(self.stage_spans):
            n = sum(self.model.blocks[b].num_parameters() for b in range(lo, hi))
            if s == 0:
                n += self.model.embed.num_parameters()
            if s == self.n_stages - 1:
                n += self.model.final_norm.num_parameters()
                if self.model.lm_head is not None:
                    n += self.model.lm_head.num_parameters()
            counts.append(n)
        return counts

    def _forward_stage(self, s: int, x: np.ndarray) -> np.ndarray:
        lo, hi = self.stage_spans[s]
        if s == 0:
            x = self.model.embed.forward(x)
        for b in range(lo, hi):
            x = self.model.blocks[b].forward(x)
        if s == self.n_stages - 1:
            x = self.model.final_norm.forward(x)
            if self.model.lm_head is not None:
                x = self.model.lm_head.forward(x)
            else:
                self.model._tied_cache = x
                x = x @ self.model.embed.params["weight"].T
        return x

    def _backward_stage(self, s: int, dout: np.ndarray) -> Optional[np.ndarray]:
        lo, hi = self.stage_spans[s]
        dx = dout
        if s == self.n_stages - 1:
            if self.model.lm_head is not None:
                dx = self.model.lm_head.backward(dx)
            else:
                W = self.model.embed.params["weight"]
                cached = self.model._tied_cache
                self.model.embed.grads["weight"] += (
                    dx.reshape(-1, dx.shape[-1]).T @ cached.reshape(-1, cached.shape[-1])
                )
                dx = dx @ W
            dx = self.model.final_norm.backward(dx)
        for b in reversed(range(lo, hi)):
            dx = self.model.blocks[b].backward(dx)
        if s == 0:
            self.model.embed.backward(dx)
            return None
        return dx

    def train_step(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        n_microbatches: int,
    ) -> float:
        """Gradient-accumulating microbatched step; returns mean loss.

        Gradients are left in the model (caller applies the optimizer), and
        are scaled as the mean over microbatches, matching the trainer's
        gradient-accumulation convention.
        """
        if inputs.shape[0] % n_microbatches != 0:
            raise ValueError("batch not divisible by n_microbatches")
        micro_in = np.split(inputs, n_microbatches)
        micro_t = np.split(targets, n_microbatches)
        total_loss = 0.0
        for x, t in zip(micro_in, micro_t):
            act = x
            for s in range(self.n_stages):
                act = self._forward_stage(s, act)
            loss, dlogits = self.model.cross_entropy(act, t)
            total_loss += loss / n_microbatches
            grad = dlogits / n_microbatches
            for s in reversed(range(self.n_stages)):
                grad = self._backward_stage(s, grad)
        return total_loss
