"""Tensor (intra-layer) parallelism: Megatron-style sharded linears.

The 70B model cannot fit one GPU; serving it (the paper's 64-GPU-hour
inference bill) shards every weight matrix across a tensor-parallel group.
This module implements the two canonical shardings over simulated ranks:

* :class:`ColumnParallelLinear` — weight split along the *output* axis;
  each rank computes a slice of the outputs, combined by all-gather (or
  left sharded for a following row-parallel layer);
* :class:`RowParallelLinear` — weight split along the *input* axis; each
  rank computes a partial product over its input slice, combined by
  all-reduce.

The classic transformer placement (column-parallel up-projection feeding a
row-parallel down-projection) needs exactly one all-reduce per MLP, which
:func:`mlp_tp_forward` demonstrates.  All shardings are *exact*: tests
assert bit-level agreement (up to float addition order) with the dense
computation.

Like the rest of :mod:`repro.parallel`, arithmetic is real and timing is
simulated via the communicator's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.collectives import Communicator
from repro.train.optimizer import AdamW
from repro.utils.rng import new_rng


def shard_columns(weight: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split a (d_in, d_out) weight into ``parts`` output-column shards."""
    if weight.shape[1] % parts != 0:
        raise ValueError(
            f"output dim {weight.shape[1]} not divisible by {parts}"
        )
    return [s.copy() for s in np.split(weight, parts, axis=1)]


def shard_rows(weight: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split a (d_in, d_out) weight into ``parts`` input-row shards."""
    if weight.shape[0] % parts != 0:
        raise ValueError(f"input dim {weight.shape[0]} not divisible by {parts}")
    return [s.copy() for s in np.split(weight, parts, axis=0)]


@dataclass
class ColumnParallelLinear:
    """``y = x W`` with W column-sharded; outputs concatenate across ranks."""

    shards: List[np.ndarray]
    comm: Communicator

    @classmethod
    def from_dense(cls, weight: np.ndarray, comm: Communicator) -> "ColumnParallelLinear":
        return cls(shard_columns(weight, comm.size), comm)

    def forward_sharded(self, x: np.ndarray) -> List[np.ndarray]:
        """Each rank's output slice (no communication)."""
        return [x @ w for w in self.shards]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full output on every rank (one all-gather over the last axis)."""
        slices = self.forward_sharded(x)
        # all_gather concatenates on axis 0; move the feature axis out front
        moved = [np.moveaxis(s, -1, 0) for s in slices]
        gathered = self.comm.all_gather(moved)
        return np.moveaxis(gathered[0], 0, -1)


@dataclass
class RowParallelLinear:
    """``y = x W`` with W row-sharded; partial sums all-reduce across ranks."""

    shards: List[np.ndarray]
    comm: Communicator

    @classmethod
    def from_dense(cls, weight: np.ndarray, comm: Communicator) -> "RowParallelLinear":
        return cls(shard_rows(weight, comm.size), comm)

    def forward_from_sharded(self, x_shards: Sequence[np.ndarray]) -> np.ndarray:
        """Consume per-rank input slices (the natural follow-up to a
        column-parallel layer); one all-reduce combines partials."""
        if len(x_shards) != self.comm.size:
            raise ValueError("need one input shard per rank")
        partials = [x @ w for x, w in zip(x_shards, self.shards)]
        return self.comm.all_reduce(partials, "sum")[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full (replicated) input: each rank slices its columns locally."""
        d_in = sum(w.shape[0] for w in self.shards)
        if x.shape[-1] != d_in:
            raise ValueError(f"input dim {x.shape[-1]} != {d_in}")
        splits = np.split(x, self.comm.size, axis=-1)
        return self.forward_from_sharded(splits)


def mlp_tp_forward(
    x: np.ndarray,
    w_up: np.ndarray,
    w_down: np.ndarray,
    comm: Communicator,
    activation=None,
) -> np.ndarray:
    """The canonical TP MLP: column-parallel up, row-parallel down.

    Exactly one all-reduce of the output activations; the intermediate
    stays sharded end to end (the Megatron trick).
    """
    col = ColumnParallelLinear.from_dense(w_up, comm)
    row = RowParallelLinear.from_dense(w_down, comm)
    hidden_shards = col.forward_sharded(x)
    if activation is not None:
        hidden_shards = [activation(h) for h in hidden_shards]
    return row.forward_from_sharded(hidden_shards)


class TensorParallelMLPTrainer:
    """Trains the canonical TP MLP (``relu(x W_up) W_down``) end to end.

    The forward is :func:`mlp_tp_forward`'s sharding with an exact analytic
    backward: every rank holds one column shard of ``W_up`` and the
    matching row shard of ``W_down`` plus its own AdamW moment shards.
    Two collectives sit in the numeric path — the all-reduce of output
    partials in the forward, and the all-reduce of per-rank squared
    gradient sums that produces the *global* clip norm — which is exactly
    where the fault injector hooks transient collective failures.

    Gradients (MSE loss, mean over elements)::

        h_r = x @ Wup_r          a_r = relu(h_r)
        y   = sum_r a_r @ Wdown_r                (all-reduce)
        dWdown_r = a_r^T @ dy                    (local)
        dh_r = (dy @ Wdown_r^T) * [h_r > 0]      (local)
        dWup_r = x^T @ dh_r                      (local)
    """

    def __init__(
        self,
        d_in: int,
        d_hidden: int,
        d_out: int,
        comm: Communicator,
        seed: int = 0,
        clip_norm: float = 1.0,
        betas: Tuple[float, float] = (0.9, 0.95),
        weight_decay: float = 0.0,
    ) -> None:
        if d_hidden % comm.size != 0:
            raise ValueError(
                f"d_hidden {d_hidden} not divisible by tp={comm.size}"
            )
        self.comm = comm
        self.clip_norm = clip_norm
        rng = new_rng(seed, "tp_mlp")
        w_up = rng.standard_normal((d_in, d_hidden)) * (1.0 / np.sqrt(d_in))
        w_down = rng.standard_normal((d_hidden, d_out)) * (1.0 / np.sqrt(d_hidden))
        up_shards = shard_columns(w_up, comm.size)
        down_shards = shard_rows(w_down, comm.size)
        self.shard_params: List[Dict[str, np.ndarray]] = [
            {"w_up": u, "w_down": d} for u, d in zip(up_shards, down_shards)
        ]
        self.shard_grads: List[Dict[str, np.ndarray]] = [
            {k: np.zeros_like(v) for k, v in p.items()} for p in self.shard_params
        ]
        self.optimizers: List[AdamW] = [
            AdamW(p, g, betas=betas, weight_decay=weight_decay)
            for p, g in zip(self.shard_params, self.shard_grads)
        ]
        self._pre: List[np.ndarray] = []
        self._act: List[np.ndarray] = []
        self._x: Optional[np.ndarray] = None

    @property
    def step_count(self) -> int:
        return self.optimizers[0].step_count

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Replicated output; one all-reduce of the rank partial products."""
        self._x = x
        self._pre = [x @ p["w_up"] for p in self.shard_params]
        self._act = [np.maximum(h, 0.0) for h in self._pre]
        partials = [a @ p["w_down"] for a, p in zip(self._act, self.shard_params)]
        return self.comm.all_reduce(partials, "sum")[0]

    def compute_gradients(self, x: np.ndarray, target: np.ndarray) -> float:
        """MSE loss + exact sharded backward; grads left in the shards."""
        y = self.forward(x)
        diff = y - target
        loss = float(np.mean(diff**2))
        dy = 2.0 * diff / diff.size
        for pre, act, params, grads in zip(
            self._pre, self._act, self.shard_params, self.shard_grads
        ):
            grads["w_down"][...] = act.reshape(-1, act.shape[-1]).T @ dy.reshape(
                -1, dy.shape[-1]
            )
            dh = (dy @ params["w_down"].T) * (pre > 0)
            grads["w_up"][...] = x.reshape(-1, x.shape[-1]).T @ dh.reshape(
                -1, dh.shape[-1]
            )
        return loss

    def grad_norm(self) -> float:
        """Global L2 norm over every shard (one scalar all-reduce)."""
        sq_sums = [
            np.array(
                [sum(float(np.sum(g.astype(np.float64) ** 2)) for g in grads.values())]
            )
            for grads in self.shard_grads
        ]
        total = self.comm.all_reduce(sq_sums, "sum")[0]
        return float(np.sqrt(total[0]))

    def apply_gradients(self, lr: float) -> float:
        """Global-norm clip then the per-shard AdamW step; returns the norm."""
        norm = self.grad_norm()
        if self.clip_norm > 0 and norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for grads in self.shard_grads:
                for g in grads.values():
                    g *= scale
        for optimizer in self.optimizers:
            optimizer.step(lr)
        return norm

    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Flat named-array snapshot: shard params + AdamW moments."""
        out: Dict[str, np.ndarray] = {}
        for r, (params, opt) in enumerate(zip(self.shard_params, self.optimizers)):
            for key, arr in params.items():
                out[f"rank{r}::param::{key}"] = arr
            for key, arr in opt.m.items():
                out[f"rank{r}::m::{key}"] = arr
            for key, arr in opt.v.items():
                out[f"rank{r}::v::{key}"] = arr
        return out

    def load_state_arrays(self, arrays: Dict[str, np.ndarray], step_count: int) -> None:
        """Restore a :meth:`state_arrays` snapshot bit-exactly."""
        for r, (params, opt) in enumerate(zip(self.shard_params, self.optimizers)):
            for key in params:
                params[key][...] = arrays[f"rank{r}::param::{key}"]
                opt.m[key][...] = arrays[f"rank{r}::m::{key}"]
                opt.v[key][...] = arrays[f"rank{r}::v::{key}"]
            opt.step_count = int(step_count)


def attention_heads_tp_split(n_heads: int, parts: int) -> List[List[int]]:
    """Head assignment for TP attention: contiguous head blocks per rank."""
    if n_heads % parts != 0:
        raise ValueError(f"{n_heads} heads not divisible by tp={parts}")
    per = n_heads // parts
    return [list(range(r * per, (r + 1) * per)) for r in range(parts)]


def tp_memory_per_rank(
    n_params: float, parts: int, bytes_per_param: float = 2.0
) -> float:
    """Serving memory per rank in bytes (weights only, evenly sharded)."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    return n_params * bytes_per_param / parts
