"""Tensor (intra-layer) parallelism: Megatron-style sharded linears.

The 70B model cannot fit one GPU; serving it (the paper's 64-GPU-hour
inference bill) shards every weight matrix across a tensor-parallel group.
This module implements the two canonical shardings over simulated ranks:

* :class:`ColumnParallelLinear` — weight split along the *output* axis;
  each rank computes a slice of the outputs, combined by all-gather (or
  left sharded for a following row-parallel layer);
* :class:`RowParallelLinear` — weight split along the *input* axis; each
  rank computes a partial product over its input slice, combined by
  all-reduce.

The classic transformer placement (column-parallel up-projection feeding a
row-parallel down-projection) needs exactly one all-reduce per MLP, which
:func:`mlp_tp_forward` demonstrates.  All shardings are *exact*: tests
assert bit-level agreement (up to float addition order) with the dense
computation.

Like the rest of :mod:`repro.parallel`, arithmetic is real and timing is
simulated via the communicator's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.parallel.collectives import Communicator


def shard_columns(weight: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split a (d_in, d_out) weight into ``parts`` output-column shards."""
    if weight.shape[1] % parts != 0:
        raise ValueError(
            f"output dim {weight.shape[1]} not divisible by {parts}"
        )
    return [s.copy() for s in np.split(weight, parts, axis=1)]


def shard_rows(weight: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split a (d_in, d_out) weight into ``parts`` input-row shards."""
    if weight.shape[0] % parts != 0:
        raise ValueError(f"input dim {weight.shape[0]} not divisible by {parts}")
    return [s.copy() for s in np.split(weight, parts, axis=0)]


@dataclass
class ColumnParallelLinear:
    """``y = x W`` with W column-sharded; outputs concatenate across ranks."""

    shards: List[np.ndarray]
    comm: Communicator

    @classmethod
    def from_dense(cls, weight: np.ndarray, comm: Communicator) -> "ColumnParallelLinear":
        return cls(shard_columns(weight, comm.size), comm)

    def forward_sharded(self, x: np.ndarray) -> List[np.ndarray]:
        """Each rank's output slice (no communication)."""
        return [x @ w for w in self.shards]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full output on every rank (one all-gather over the last axis)."""
        slices = self.forward_sharded(x)
        # all_gather concatenates on axis 0; move the feature axis out front
        moved = [np.moveaxis(s, -1, 0) for s in slices]
        gathered = self.comm.all_gather(moved)
        return np.moveaxis(gathered[0], 0, -1)


@dataclass
class RowParallelLinear:
    """``y = x W`` with W row-sharded; partial sums all-reduce across ranks."""

    shards: List[np.ndarray]
    comm: Communicator

    @classmethod
    def from_dense(cls, weight: np.ndarray, comm: Communicator) -> "RowParallelLinear":
        return cls(shard_rows(weight, comm.size), comm)

    def forward_from_sharded(self, x_shards: Sequence[np.ndarray]) -> np.ndarray:
        """Consume per-rank input slices (the natural follow-up to a
        column-parallel layer); one all-reduce combines partials."""
        if len(x_shards) != self.comm.size:
            raise ValueError("need one input shard per rank")
        partials = [x @ w for x, w in zip(x_shards, self.shards)]
        return self.comm.all_reduce(partials, "sum")[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full (replicated) input: each rank slices its columns locally."""
        d_in = sum(w.shape[0] for w in self.shards)
        if x.shape[-1] != d_in:
            raise ValueError(f"input dim {x.shape[-1]} != {d_in}")
        splits = np.split(x, self.comm.size, axis=-1)
        return self.forward_from_sharded(splits)


def mlp_tp_forward(
    x: np.ndarray,
    w_up: np.ndarray,
    w_down: np.ndarray,
    comm: Communicator,
    activation=None,
) -> np.ndarray:
    """The canonical TP MLP: column-parallel up, row-parallel down.

    Exactly one all-reduce of the output activations; the intermediate
    stays sharded end to end (the Megatron trick).
    """
    col = ColumnParallelLinear.from_dense(w_up, comm)
    row = RowParallelLinear.from_dense(w_down, comm)
    hidden_shards = col.forward_sharded(x)
    if activation is not None:
        hidden_shards = [activation(h) for h in hidden_shards]
    return row.forward_from_sharded(hidden_shards)


def attention_heads_tp_split(n_heads: int, parts: int) -> List[List[int]]:
    """Head assignment for TP attention: contiguous head blocks per rank."""
    if n_heads % parts != 0:
        raise ValueError(f"{n_heads} heads not divisible by tp={parts}")
    per = n_heads // parts
    return [list(range(r * per, (r + 1) * per)) for r in range(parts)]


def tp_memory_per_rank(
    n_params: float, parts: int, bytes_per_param: float = 2.0
) -> float:
    """Serving memory per rank in bytes (weights only, evenly sharded)."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    return n_params * bytes_per_param / parts
