"""Device mesh: the rank topology of a simulated GPU cluster."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Device:
    """One simulated accelerator."""

    rank: int  # global rank
    node: int
    local_rank: int  # index within the node

    @property
    def name(self) -> str:
        return f"node{self.node}/gpu{self.local_rank}"


class DeviceMesh:
    """A ``nodes x gpus_per_node`` grid of simulated devices.

    Provides the standard 2-D factorization used for hybrid parallelism:
    ``dp_groups(dp) x pp_groups(pp)`` where ``dp * pp == world_size``.
    Group layout follows the usual convention: pipeline stages are strided
    (consecutive ranks share a data-parallel group), which maps pipeline
    traffic onto the fast intra-node links.
    """

    def __init__(self, nodes: int, gpus_per_node: int) -> None:
        if nodes < 1 or gpus_per_node < 1:
            raise ValueError("nodes and gpus_per_node must be >= 1")
        self.nodes = nodes
        self.gpus_per_node = gpus_per_node
        self.devices: List[Device] = [
            Device(rank=n * gpus_per_node + g, node=n, local_rank=g)
            for n in range(nodes)
            for g in range(gpus_per_node)
        ]

    @property
    def world_size(self) -> int:
        return len(self.devices)

    def device(self, rank: int) -> Device:
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range 0..{self.world_size - 1}")
        return self.devices[rank]

    def ranks_on_node(self, node: int) -> List[int]:
        return [d.rank for d in self.devices if d.node == node]

    def dp_pp_groups(self, dp: int, pp: int) -> tuple:
        """Factor the mesh into data-parallel and pipeline-parallel groups.

        Returns ``(dp_groups, pp_groups)`` where each is a list of rank
        lists.  ``dp_groups[i]`` holds the ranks that replicate pipeline
        stage ``i``; ``pp_groups[j]`` holds the ranks forming pipeline ``j``.
        """
        if dp * pp != self.world_size:
            raise ValueError(
                f"dp*pp={dp * pp} must equal world_size={self.world_size}"
            )
        dp_groups = [
            [stage * dp + replica for replica in range(dp)] for stage in range(pp)
        ]
        pp_groups = [
            [stage * dp + replica for stage in range(pp)] for replica in range(dp)
        ]
        return dp_groups, pp_groups

    def is_cross_node(self, rank_a: int, rank_b: int) -> bool:
        return self.device(rank_a).node != self.device(rank_b).node

    def __repr__(self) -> str:
        return f"DeviceMesh(nodes={self.nodes}, gpus_per_node={self.gpus_per_node})"
