"""ZeRO stage-1 optimizer-state sharding (DeepSpeed-style).

Full-parameter AdamW keeps ~16 bytes of state per parameter — the reason a
70B model cannot train on one node and the reason frameworks like the
paper's LMFlow delegate to ZeRO.  Stage 1 shards the *optimizer state*
(moments + master update) across data-parallel ranks:

1. every rank holds full parameters and computes full gradients;
2. gradients are **reduce-scattered**: rank ``r`` receives the averaged
   gradient for its parameter shard only;
3. each rank applies AdamW to its shard (1/R of the moment memory);
4. updated shards are **all-gathered** back into full parameters.

The result is numerically identical to plain data-parallel AdamW (the
tests assert bit-level agreement up to float summation order) with the
optimizer memory divided by the rank count — which
:func:`zero1_memory_per_rank` quantifies against the cluster model's
node-memory threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.collectives import Communicator

ParamDict = Dict[str, np.ndarray]


def flatten_params(params: ParamDict) -> Tuple[np.ndarray, List[Tuple[str, int, tuple]]]:
    """Concatenate parameters into one vector + a layout for unflattening."""
    layout: List[Tuple[str, int, tuple]] = []
    chunks: List[np.ndarray] = []
    offset = 0
    for key in sorted(params):
        arr = params[key]
        layout.append((key, offset, arr.shape))
        chunks.append(arr.reshape(-1))
        offset += arr.size
    flat = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.float32)
    return flat.astype(np.float32), layout


def unflatten_into(flat: np.ndarray, layout: Sequence[Tuple[str, int, tuple]], params: ParamDict) -> None:
    """Write a flat vector back into the parameter arrays, in place."""
    for key, offset, shape in layout:
        size = int(np.prod(shape))
        params[key][...] = flat[offset : offset + size].reshape(shape)


@dataclass
class Zero1AdamW:
    """Sharded AdamW over a communicator's ranks.

    Shards are equal-size contiguous slices of the flattened parameter
    vector (padded to a multiple of the world size).  The object owns the
    per-rank moment buffers; parameters live with the caller.
    """

    comm: Communicator
    betas: Tuple[float, float] = (0.9, 0.95)
    eps: float = 1e-8
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        self.step_count = 0
        self._m_shards: Optional[List[np.ndarray]] = None
        self._v_shards: Optional[List[np.ndarray]] = None
        self._padded = 0

    # ------------------------------------------------------------------
    def _ensure_state(self, n: int) -> None:
        world = self.comm.size
        self._padded = ((n + world - 1) // world) * world
        shard = self._padded // world
        if self._m_shards is None:
            self._m_shards = [np.zeros(shard, dtype=np.float32) for _ in range(world)]
            self._v_shards = [np.zeros(shard, dtype=np.float32) for _ in range(world)]

    def _pad(self, flat: np.ndarray) -> np.ndarray:
        if flat.size == self._padded:
            return flat
        out = np.zeros(self._padded, dtype=np.float32)
        out[: flat.size] = flat
        return out

    # ------------------------------------------------------------------
    def step(
        self,
        params: ParamDict,
        per_rank_grads: Sequence[ParamDict],
        lr: float,
    ) -> None:
        """One sharded step.

        ``per_rank_grads`` holds each simulated rank's local gradients
        (same keys/shapes as ``params``); they are averaged via
        reduce-scatter, shards updated locally, and parameters rebuilt via
        all-gather — every rank ends with identical full parameters.
        """
        if len(per_rank_grads) != self.comm.size:
            raise ValueError("need one gradient dict per rank")
        flat_param, layout = flatten_params(params)
        self._ensure_state(flat_param.size)
        padded_grads = []
        for grads in per_rank_grads:
            flat_grad, grad_layout = flatten_params(grads)
            if [k for k, _, _ in grad_layout] != [k for k, _, _ in layout]:
                raise KeyError("gradient keys do not match parameters")
            padded_grads.append(self._pad(flat_grad))
        grad_shards = self.comm.reduce_scatter(padded_grads, op="mean")

        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.betas[0] ** t
        bc2 = 1.0 - self.betas[1] ** t
        world = self.comm.size
        shard_size = self._padded // world
        param_padded = self._pad(flat_param)
        updated_shards: List[np.ndarray] = []
        for r in range(world):
            lo = r * shard_size
            p = param_padded[lo : lo + shard_size].copy()
            g = grad_shards[r]
            m, v = self._m_shards[r], self._v_shards[r]
            m *= self.betas[0]
            m += (1 - self.betas[0]) * g
            v *= self.betas[1]
            v += (1 - self.betas[1]) * (g * g)
            if self.weight_decay > 0:
                p -= lr * self.weight_decay * p
            p -= lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            updated_shards.append(p)
        gathered = self.comm.all_gather(updated_shards)[0]
        unflatten_into(gathered[: flat_param.size], layout, params)

    # ------------------------------------------------------------------
    def state_bytes_per_rank(self) -> int:
        """Moment memory each rank holds (the ZeRO-1 saving)."""
        if self._m_shards is None:
            return 0
        return int(self._m_shards[0].nbytes + self._v_shards[0].nbytes)


def zero1_memory_per_rank(
    n_params: float, world: int, bytes_weights: float = 2.0, bytes_moments: float = 8.0
) -> float:
    """Training-state bytes per rank under ZeRO-1.

    Weights (and gradients) stay replicated; the two fp32 Adam moments
    shard.  Compare against the dense 16 bytes/param that the cluster
    model's single-node threshold uses.
    """
    if world < 1:
        raise ValueError("world must be >= 1")
    replicated = n_params * (bytes_weights * 2)  # weights + grads
    sharded = n_params * bytes_moments / world
    return replicated + sharded
