"""MPI-style collectives over simulated ranks.

Each collective takes *per-rank arrays* (a list indexed by group rank) and
returns per-rank results, computed exactly — the simulation is in the
*timing*, not the arithmetic.  Timing follows the standard alpha-beta model
for ring algorithms:

* all-reduce: ``2 (p-1)/p * n/B + 2 (p-1) * alpha`` (reduce-scatter +
  all-gather rings);
* all-gather / reduce-scatter: ``(p-1)/p * n/B + (p-1) * alpha``;
* broadcast (binomial tree): ``ceil(log2 p) * (alpha + n/B)``.

``n`` is the message size in bytes, ``B`` the per-link bandwidth and
``alpha`` the per-message latency.  Cross-node bandwidth can differ from
intra-node (NVLink vs InfiniBand); the communicator picks the slower link
present in its group, as a synchronous ring would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.parallel.mesh import DeviceMesh

ReduceOp = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Pre-op hook signature: ``hook(op_name, nbytes) -> time_multiplier``.
#: The hook runs *before* any arithmetic or ledger recording, so it may
#: raise (fault injection) without leaving a half-recorded operation; the
#: returned multiplier scales the simulated time of the op (degraded
#: links).  ``None`` (the default) keeps the happy path branch-free.
CollectiveHook = Callable[[str, int], float]

_OPS = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
}


@dataclass
class RingCostModel:
    """Alpha-beta timing parameters.

    Defaults approximate an A100 cluster: 300 GB/s effective NVLink
    intra-node, 25 GB/s per-GPU InfiniBand cross-node, 10 us latency.
    """

    intra_node_bandwidth: float = 300e9  # bytes / second
    cross_node_bandwidth: float = 25e9
    latency: float = 10e-6  # seconds per message

    def link_bandwidth(self, cross_node: bool) -> float:
        return self.cross_node_bandwidth if cross_node else self.intra_node_bandwidth

    def all_reduce_time(self, nbytes: int, p: int, cross_node: bool) -> float:
        if p <= 1:
            return 0.0
        B = self.link_bandwidth(cross_node)
        return 2 * (p - 1) / p * nbytes / B + 2 * (p - 1) * self.latency

    def all_gather_time(self, nbytes: int, p: int, cross_node: bool) -> float:
        if p <= 1:
            return 0.0
        B = self.link_bandwidth(cross_node)
        return (p - 1) / p * nbytes / B + (p - 1) * self.latency

    reduce_scatter_time = all_gather_time

    def broadcast_time(self, nbytes: int, p: int, cross_node: bool) -> float:
        if p <= 1:
            return 0.0
        B = self.link_bandwidth(cross_node)
        hops = math.ceil(math.log2(p))
        return hops * (self.latency + nbytes / B)

    def point_to_point_time(self, nbytes: int, cross_node: bool) -> float:
        return self.latency + nbytes / self.link_bandwidth(cross_node)


@dataclass
class CollectiveStats:
    """Accumulated traffic/timing ledger for one communicator."""

    calls: int = 0
    bytes_moved: int = 0
    simulated_seconds: float = 0.0
    per_op_calls: dict = field(default_factory=dict)

    def record(self, op: str, nbytes: int, seconds: float) -> None:
        self.calls += 1
        self.bytes_moved += nbytes
        self.simulated_seconds += seconds
        self.per_op_calls[op] = self.per_op_calls.get(op, 0) + 1


class Communicator:
    """A collective group over a subset of mesh ranks."""

    def __init__(
        self,
        mesh: DeviceMesh,
        ranks: Optional[Sequence[int]] = None,
        cost_model: Optional[RingCostModel] = None,
    ) -> None:
        self.mesh = mesh
        self.ranks = list(ranks) if ranks is not None else list(range(mesh.world_size))
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError("duplicate ranks in group")
        for r in self.ranks:
            mesh.device(r)  # validates
        self.cost_model = cost_model or RingCostModel()
        self.stats = CollectiveStats()
        self.hook: Optional[CollectiveHook] = None
        nodes = {mesh.device(r).node for r in self.ranks}
        self._cross_node = len(nodes) > 1

    @property
    def size(self) -> int:
        return len(self.ranks)

    def install_hook(self, hook: Optional[CollectiveHook]) -> Optional[CollectiveHook]:
        """Install (or clear) the pre-op hook; returns the previous one."""
        previous = self.hook
        self.hook = hook
        return previous

    def _consult_hook(self, op: str, nbytes: int) -> float:
        """Time multiplier from the hook; called before any computation."""
        if self.hook is None:
            return 1.0
        return float(self.hook(op, nbytes))

    # ------------------------------------------------------------------
    def _check(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.size:
            raise ValueError(
                f"expected one buffer per rank ({self.size}), got {len(buffers)}"
            )
        shape = buffers[0].shape
        for b in buffers[1:]:
            if b.shape != shape:
                raise ValueError("all rank buffers must share a shape")

    # ------------------------------------------------------------------
    def all_reduce(
        self, buffers: Sequence[np.ndarray], op: str = "sum"
    ) -> List[np.ndarray]:
        """Reduce across ranks; every rank receives the full result.

        ``op`` is ``sum`` | ``mean`` | ``max`` | ``min``.
        """
        self._check(buffers)
        mult = self._consult_hook("all_reduce", int(buffers[0].nbytes))
        if op == "mean":
            reduced = np.sum(buffers, axis=0) / self.size
        elif op in _OPS:
            reduced = buffers[0].copy()
            for b in buffers[1:]:
                reduced = _OPS[op](reduced, b)
        else:
            raise ValueError(f"unknown reduce op {op!r}")
        nbytes = int(buffers[0].nbytes)
        t = self.cost_model.all_reduce_time(nbytes, self.size, self._cross_node)
        self.stats.record("all_reduce", nbytes * self.size, t * mult)
        return [reduced.copy() for _ in range(self.size)]

    def all_gather(self, buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Every rank receives the concatenation of all rank buffers (axis 0)."""
        self._check(buffers)
        mult = self._consult_hook("all_gather", int(buffers[0].nbytes) * self.size)
        gathered = np.concatenate([np.atleast_1d(b) for b in buffers], axis=0)
        nbytes = int(gathered.nbytes)
        t = self.cost_model.all_gather_time(nbytes, self.size, self._cross_node)
        self.stats.record("all_gather", nbytes * self.size, t * mult)
        return [gathered.copy() for _ in range(self.size)]

    def reduce_scatter(
        self, buffers: Sequence[np.ndarray], op: str = "sum"
    ) -> List[np.ndarray]:
        """Reduce then scatter equal shards; rank i receives shard i.

        The leading axis of each buffer must be divisible by the group size.
        """
        self._check(buffers)
        mult = self._consult_hook("reduce_scatter", int(buffers[0].nbytes))
        first = buffers[0]
        if first.shape[0] % self.size != 0:
            raise ValueError(
                f"leading axis {first.shape[0]} not divisible by group size "
                f"{self.size}"
            )
        if op == "mean":
            reduced = np.sum(buffers, axis=0) / self.size
        elif op in _OPS:
            reduced = buffers[0].copy()
            for b in buffers[1:]:
                reduced = _OPS[op](reduced, b)
        else:
            raise ValueError(f"unknown reduce op {op!r}")
        shards = np.split(reduced, self.size, axis=0)
        nbytes = int(first.nbytes)
        t = self.cost_model.reduce_scatter_time(nbytes, self.size, self._cross_node)
        self.stats.record("reduce_scatter", nbytes * self.size, t * mult)
        return [s.copy() for s in shards]

    def broadcast(self, buffer: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Rank ``root``'s buffer is copied to every rank."""
        if not 0 <= root < self.size:
            raise IndexError(f"root {root} out of group range")
        nbytes = int(buffer.nbytes)
        mult = self._consult_hook("broadcast", nbytes)
        t = self.cost_model.broadcast_time(nbytes, self.size, self._cross_node)
        self.stats.record("broadcast", nbytes * (self.size - 1), t * mult)
        return [buffer.copy() for _ in range(self.size)]

    def barrier(self) -> None:
        """Synchronization point: costs one zero-byte all-reduce."""
        mult = self._consult_hook("barrier", 0)
        t = self.cost_model.all_reduce_time(0, self.size, self._cross_node)
        self.stats.record("barrier", 0, t * mult)

    def point_to_point(
        self, buffer: np.ndarray, src: int, dst: int
    ) -> np.ndarray:
        """Send ``buffer`` from group rank ``src`` to ``dst``; returns the
        received copy.

        The pipeline executor moves stage-boundary activations through this
        primitive so that link faults and degraded bandwidth have a single
        injection point; the cost model charges one latency + ``n/B``
        message.
        """
        for r in (src, dst):
            if not 0 <= r < self.size:
                raise IndexError(f"rank {r} out of group range 0..{self.size - 1}")
        nbytes = int(buffer.nbytes)
        mult = self._consult_hook("point_to_point", nbytes)
        cross = self.mesh.is_cross_node(self.ranks[src], self.ranks[dst])
        t = self.cost_model.point_to_point_time(nbytes, cross)
        self.stats.record("point_to_point", nbytes, t * mult)
        return buffer.copy()
