"""Deterministic fault injection + recovery for the simulated cluster.

The subsystem has four layers, lowest to highest:

* :mod:`repro.faults.errors` — the injected-fault exception taxonomy;
* :mod:`repro.faults.plan` — declarative, seeded fault schedules
  (:class:`FaultPlan` / :class:`FaultEvent`);
* :mod:`repro.faults.injector` — the sole component that fires faults,
  via hooks in collectives, the trainer and checkpointing (lint rule R6
  keeps ad-hoc raises out of ``parallel/`` and ``train/``);
* :mod:`repro.faults.recovery` + :mod:`repro.faults.harness` — the
  recovery policy (:class:`RecoveryManager`) and the DP/TP/pipeline loop
  adapters it drives.

The headline guarantee, asserted by ``tests/test_faults.py``: a run that
faults and recovers finishes with **bit-identical** parameters, AdamW
moments and step counters to a run that never faulted — and the same
``(plan, seed)`` replays the same faults and the same recovery log.
"""

from repro.faults.errors import (
    FaultInjectionError,
    FaultRecoveryExhausted,
    PreemptionError,
    TransientCollectiveError,
)
from repro.faults.plan import (
    CHECKPOINT_CORRUPTION,
    COLLECTIVE_TRANSIENT,
    DEGRADED_LINK,
    FAULT_KINDS,
    LOSS_SPIKE,
    PREEMPTION,
    FaultEvent,
    FaultPlan,
    single_fault_plans,
)
from repro.faults.injector import FaultInjector, corrupt_file
from repro.faults.recovery import (
    FaultableLoop,
    RecoveryEvent,
    RecoveryLog,
    RecoveryManager,
    RecoveryResult,
    RetryPolicy,
)
from repro.faults.harness import (
    ALL_LOOPS,
    DataParallelFaultLoop,
    PipelineFaultLoop,
    TensorParallelFaultLoop,
    run_clean,
)
from repro.faults.serve import SERVE_FAULT_KINDS, ServeFaultInjector

__all__ = [
    "FaultInjectionError",
    "PreemptionError",
    "TransientCollectiveError",
    "FaultRecoveryExhausted",
    "PREEMPTION",
    "COLLECTIVE_TRANSIENT",
    "DEGRADED_LINK",
    "CHECKPOINT_CORRUPTION",
    "LOSS_SPIKE",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "single_fault_plans",
    "FaultInjector",
    "corrupt_file",
    "FaultableLoop",
    "RetryPolicy",
    "RecoveryEvent",
    "RecoveryLog",
    "RecoveryManager",
    "RecoveryResult",
    "DataParallelFaultLoop",
    "TensorParallelFaultLoop",
    "PipelineFaultLoop",
    "ALL_LOOPS",
    "run_clean",
    "SERVE_FAULT_KINDS",
    "ServeFaultInjector",
]
