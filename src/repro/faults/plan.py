"""Declarative, replayable fault schedules.

A :class:`FaultPlan` is data, not behavior: an ordered list of
:class:`FaultEvent`\\ s saying *what* goes wrong and *when* (in optimizer
steps).  The :class:`~repro.faults.injector.FaultInjector` interprets the
plan against live hook points; because the plan plus the injector seed
fully determine every fault, a faulted run replays bit-identically —
which is what makes the differential recovery suite possible.

Fault classes
-------------
``preemption``
    The job loses its allocation at the start of step ``step``;
    recovery restores the newest intact checkpoint.
``collective-transient``
    The next ``attempts`` matching collective calls at step ``step``
    raise :class:`~repro.faults.errors.TransientCollectiveError`;
    recovery retries with exponential backoff.
``degraded-link``
    Collective/point-to-point time is multiplied by ``factor`` for
    ``duration`` steps starting at ``step`` (timing only — arithmetic,
    and therefore the trained parameters, are unaffected).
``checkpoint-corruption``
    The snapshot written at step ``step`` has one shard corrupted
    (``mode``: ``"flip"`` a byte or ``"truncate"`` the tail); recovery
    falls back to the previous intact snapshot at restore time.
``loss-spike``
    Accumulated gradients at step ``step`` are scaled by ``factor``
    once, emulating a data/hardware glitch; recovery detects the norm
    anomaly, discards the update, and recomputes the step.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

PREEMPTION = "preemption"
COLLECTIVE_TRANSIENT = "collective-transient"
DEGRADED_LINK = "degraded-link"
CHECKPOINT_CORRUPTION = "checkpoint-corruption"
LOSS_SPIKE = "loss-spike"

FAULT_KINDS = (
    PREEMPTION,
    COLLECTIVE_TRANSIENT,
    DEGRADED_LINK,
    CHECKPOINT_CORRUPTION,
    LOSS_SPIKE,
)

_CORRUPTION_MODES = ("flip", "truncate")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Only the fields relevant to ``kind`` are interpreted; the rest keep
    their defaults so every event serializes to the same flat schema.
    """

    kind: str
    step: int
    rank: int = 0
    op: Optional[str] = None  # collective-transient: restrict to one op name
    attempts: int = 1  # collective-transient: consecutive failing calls
    factor: float = 1.0  # degraded-link slowdown / loss-spike gradient scale
    duration: int = 1  # degraded-link: steps the window lasts
    target: str = "optimizer.npz"  # checkpoint-corruption: shard file name
    mode: str = "flip"  # checkpoint-corruption: "flip" | "truncate"

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.step < 0:
            raise ValueError(f"fault step must be >= 0, got {self.step}")
        if self.rank < 0:
            raise ValueError(f"fault rank must be >= 0, got {self.rank}")
        if self.kind == COLLECTIVE_TRANSIENT and self.attempts < 1:
            raise ValueError("collective-transient needs attempts >= 1")
        if self.kind == DEGRADED_LINK:
            if self.duration < 1:
                raise ValueError("degraded-link needs duration >= 1")
            if self.factor <= 1.0:
                raise ValueError(
                    "degraded-link factor must exceed 1.0 (a slowdown)"
                )
        if self.kind == LOSS_SPIKE and self.factor <= 1.0:
            raise ValueError("loss-spike factor must exceed 1.0")
        if self.kind == CHECKPOINT_CORRUPTION and self.mode not in _CORRUPTION_MODES:
            raise ValueError(
                f"corruption mode must be one of {_CORRUPTION_MODES}, "
                f"got {self.mode!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class FaultPlan:
    """An ordered, validated fault schedule plus the injector seed.

    ``seed`` feeds every stochastic decision downstream of the plan
    (backoff jitter, corruption byte offsets), so ``(plan, seed)`` is the
    complete replay key of a faulted run.
    """

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        for event in self.events:
            event.validate()
        self.events = sorted(
            self.events, key=lambda e: (e.step, FAULT_KINDS.index(e.kind), e.rank)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, event: FaultEvent) -> "FaultPlan":
        event.validate()
        self.events.append(event)
        self.events.sort(
            key=lambda e: (e.step, FAULT_KINDS.index(e.kind), e.rank)
        )
        return self

    def events_of_kind(self, kind: str) -> List[FaultEvent]:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    def events_at(self, step: int, kind: Optional[str] = None) -> List[FaultEvent]:
        out = [e for e in self.events if e.step == step]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return out

    def max_step(self) -> int:
        """Last step any event touches (degradation windows included)."""
        last = -1
        for e in self.events:
            end = e.step + (e.duration - 1 if e.kind == DEGRADED_LINK else 0)
            last = max(last, end)
        return last

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        events = [FaultEvent(**e) for e in data.get("events", [])]  # type: ignore[arg-type]
        return cls(events=events, seed=int(data.get("seed", 0)))  # type: ignore[arg-type]


def single_fault_plans(
    step: int, seed: int = 0, ckpt_target: str = "optimizer.npz"
) -> Iterable[Tuple[str, FaultPlan]]:
    """One minimal plan per fault class, all firing around ``step``.

    The differential test matrix iterates these to guarantee every fault
    class is covered on every parallel configuration.
    """
    yield PREEMPTION, FaultPlan([FaultEvent(PREEMPTION, step)], seed=seed)
    yield COLLECTIVE_TRANSIENT, FaultPlan(
        [FaultEvent(COLLECTIVE_TRANSIENT, step, attempts=2)], seed=seed
    )
    yield DEGRADED_LINK, FaultPlan(
        [FaultEvent(DEGRADED_LINK, step, factor=8.0, duration=2)], seed=seed
    )
    yield CHECKPOINT_CORRUPTION, FaultPlan(
        [
            FaultEvent(CHECKPOINT_CORRUPTION, step, target=ckpt_target),
            FaultEvent(PREEMPTION, step + 1),
        ],
        seed=seed,
    )
    yield LOSS_SPIKE, FaultPlan(
        [FaultEvent(LOSS_SPIKE, step, factor=1e6)], seed=seed
    )
