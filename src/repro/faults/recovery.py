"""Recovery layer: retry, restart, fall back — and prove nothing changed.

:class:`RecoveryManager` drives any :class:`FaultableLoop` (the DP/TP/PP
adapters in :mod:`repro.faults.harness`) for a step budget while a
:class:`~repro.faults.injector.FaultInjector` interprets a fault plan
against it.  Recovery actions:

* **transient collective failure** → retry with exponential backoff
  (simulated, deterministically jittered delays — nothing sleeps);
* **preemption** → simulated job restart: rebuild the loop from its seed
  and restore the newest *intact* snapshot;
* **corrupt checkpoint shard** → checksum validation rejects the snapshot
  and recovery falls back to the previous one;
* **gradient/loss spike** → the anomalous update is discarded and the
  step recomputed (injected faults fire once, so the recompute is clean);
* **degraded link** → no action needed (timing-only), but the window is
  recorded in the log and the timing ledger.

Every action lands in a :class:`RecoveryLog` whose JSON form is part of
the replay contract: the same ``(plan, seed)`` must produce the same log.

The safety property the differential tests assert: each loop phase issues
its collectives *before* mutating any trainable state, and each
``compute_step`` starts from ``zero_grad`` — so retrying a phase, or
recomputing a whole step, is bit-identical to a run that never faulted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.faults.errors import (
    FaultRecoveryExhausted,
    PreemptionError,
    TransientCollectiveError,
)
from repro.faults.injector import FaultInjector
from repro.train.checkpointing import (
    checkpoint_dir_for_step,
    latest_valid_checkpoint,
    set_post_save_hook,
)
from repro.utils.rng import derive_seed

_MASK64 = (1 << 64) - 1


class FaultableLoop(Protocol):
    """What the manager needs from a distributed training loop.

    The contract that makes recovery exact: ``compute_step`` starts from
    zeroed gradients and mutates nothing but gradients; every phase issues
    its collectives before touching parameters or optimizer state;
    ``build`` recreates the exact initial state from the loop's seed; the
    batch for step ``i`` is a pure function of ``(seed, i)``.
    """

    def build(self) -> None: ...

    def communicators(self) -> Sequence[object]: ...

    def gradient_shards(self) -> Sequence[dict]: ...

    def compute_step(self, step: int) -> float: ...

    def grad_norm(self) -> float: ...

    def apply_step(self, step: int) -> None: ...

    def save(self, path: Path, step: int) -> None: ...

    def load(self, path: Path) -> int: ...

    def fingerprint(self) -> Dict[str, np.ndarray]: ...


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter (simulated seconds)."""

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def delay(self, seed: int, step: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) at ``step``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        unit = derive_seed(seed, "backoff", step, attempt) / float(_MASK64)
        return raw * (1.0 + self.jitter * unit)


@dataclass(frozen=True)
class RecoveryEvent:
    """One structured entry in the recovery log."""

    step: int
    action: str
    detail: Dict[str, object]
    simulated_delay: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "action": self.action,
            "detail": dict(self.detail),
            "simulated_delay": self.simulated_delay,
        }


class RecoveryLog:
    """Append-only structured log; JSON form is the replay contract."""

    def __init__(self) -> None:
        self.events: List[RecoveryEvent] = []

    def add(
        self,
        step: int,
        action: str,
        detail: Optional[Dict[str, object]] = None,
        simulated_delay: float = 0.0,
    ) -> RecoveryEvent:
        event = RecoveryEvent(int(step), action, dict(detail or {}), simulated_delay)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def actions(self) -> List[str]:
        return [e.action for e in self.events]

    def count(self, action: str) -> int:
        return sum(1 for e in self.events if e.action == action)

    def total_simulated_delay(self) -> float:
        return float(sum(e.simulated_delay for e in self.events))

    def to_json(self) -> str:
        return json.dumps([e.to_dict() for e in self.events], sort_keys=True)


@dataclass
class RecoveryResult:
    """Outcome of one managed run."""

    steps: int
    losses: List[float] = field(default_factory=list)
    restarts: int = 0
    log: RecoveryLog = field(default_factory=RecoveryLog)

    @property
    def simulated_delay_seconds(self) -> float:
        return self.log.total_simulated_delay()


class RecoveryManager:
    """Runs a loop to completion through the faults of one plan."""

    def __init__(
        self,
        injector: FaultInjector,
        checkpoint_root: Path,
        checkpoint_every: int = 2,
        retry: Optional[RetryPolicy] = None,
        spike_threshold: float = 1e3,
        max_restarts: int = 4,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.injector = injector
        self.checkpoint_root = Path(checkpoint_root)
        self.checkpoint_every = checkpoint_every
        self.retry = retry or RetryPolicy()
        self.spike_threshold = spike_threshold
        self.max_restarts = max_restarts

    # ------------------------------------------------------------------
    def _with_retry(self, log: RecoveryLog, step: int, fn: Callable[[], object]):
        """Call ``fn``, absorbing transient collective faults with backoff."""
        attempt = 1
        while True:
            try:
                return fn()
            except TransientCollectiveError as exc:
                if attempt >= self.retry.max_attempts:
                    raise FaultRecoveryExhausted(
                        f"collective {exc.op}() still failing after "
                        f"{attempt} attempts at step {step}"
                    ) from exc
                delay = self.retry.delay(self.injector.seed, step, attempt)
                log.add(
                    step,
                    "collective-retry",
                    {"op": exc.op, "attempt": attempt},
                    simulated_delay=delay,
                )
                attempt += 1

    def _save(self, log: RecoveryLog, loop: FaultableLoop, step: int) -> None:
        path = checkpoint_dir_for_step(self.checkpoint_root, step)
        loop.save(path, step)
        log.add(step, "checkpoint-saved", {"snapshot": path.name})

    def _restart(self, log: RecoveryLog, loop: FaultableLoop) -> int:
        """Simulated job relaunch: rebuild, restore newest intact snapshot."""
        loop.build()
        self.injector.install(*loop.communicators())
        found = latest_valid_checkpoint(self.checkpoint_root)
        if found is None:
            log.add(0, "restart-from-scratch", {})
            return 0
        step, path, skipped = found
        for bad_step, bad_path in skipped:
            log.add(
                bad_step,
                "checkpoint-fallback",
                {"snapshot": bad_path.name, "reason": "checksum-mismatch"},
            )
        resume = int(loop.load(path))
        log.add(resume, "resume", {"snapshot": path.name})
        return resume

    # ------------------------------------------------------------------
    def run(self, loop: FaultableLoop, total_steps: int) -> RecoveryResult:
        """Drive ``loop`` for ``total_steps`` optimizer steps, recovering
        from every fault the plan throws; raises
        :class:`FaultRecoveryExhausted` when the policy budget is spent."""
        result = RecoveryResult(steps=total_steps)
        log = result.log
        self.injector.reset()
        loop.build()
        self.injector.install(*loop.communicators())
        previous_hook = set_post_save_hook(self.injector.on_checkpoint_saved)
        degradations_logged: set = set()
        try:
            self._save(log, loop, 0)
            step = 0
            while step < total_steps:
                try:
                    self.injector.begin_step(step)
                    degraded = self.injector.degradation_at(step)
                    if degraded is not None:
                        key = (degraded.step, degraded.duration)
                        if key not in degradations_logged:
                            degradations_logged.add(key)
                            log.add(
                                step,
                                "degraded-link",
                                {
                                    "factor": degraded.factor,
                                    "duration": degraded.duration,
                                },
                            )
                    self.injector.on_step_start(step)
                    loss = self._with_retry(log, step, lambda: loop.compute_step(step))
                    self.injector.on_gradients(step, loop.gradient_shards())
                    norm = self._with_retry(log, step, loop.grad_norm)
                    if norm > self.spike_threshold:
                        log.add(step, "spike-discard", {"grad_norm": float(norm)})
                        loss = self._with_retry(
                            log, step, lambda: loop.compute_step(step)
                        )
                        self.injector.on_gradients(step, loop.gradient_shards())
                        norm = self._with_retry(log, step, loop.grad_norm)
                        if norm > self.spike_threshold:
                            raise FaultRecoveryExhausted(
                                f"gradient norm {norm:.3g} still anomalous after "
                                f"recompute at step {step}"
                            )
                    self._with_retry(log, step, lambda: loop.apply_step(step))
                    result.losses.append(float(loss))
                    step += 1
                    if step % self.checkpoint_every == 0:
                        self._save(log, loop, step)
                except PreemptionError as exc:
                    result.restarts += 1
                    if result.restarts > self.max_restarts:
                        raise FaultRecoveryExhausted(
                            f"restart budget ({self.max_restarts}) spent"
                        ) from exc
                    log.add(step, "preemption", {"rank": exc.rank})
                    step = self._restart(log, loop)
                    del result.losses[step:]
        finally:
            set_post_save_hook(previous_hook)
        return result
