"""The fault injector: interprets a :class:`FaultPlan` at live hook points.

The injector is the *registry* through which every fault fires — lint rule
R6 (``fault-injection-registry``) forbids ad-hoc raises of fault types in
``parallel/``/``train/``, so the distributed stack stays fault-agnostic:

* ``Communicator.hook`` (:meth:`FaultInjector.collective_hook`) — raises
  :class:`TransientCollectiveError` for scheduled transient failures and
  returns the degraded-link time multiplier;
* :class:`~repro.train.trainer.TrainerHooks` — :meth:`on_step_start`
  raises :class:`PreemptionError` at scheduled step boundaries,
  :meth:`on_gradients` applies scheduled loss-spike gradient scalings;
* the checkpoint post-save hook (:meth:`on_checkpoint_saved`) — corrupts
  freshly written shards per the plan.

All state is derived from ``(plan, plan.seed)``; :meth:`reset` rewinds the
injector so the identical fault sequence replays, which the differential
suite asserts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.faults.errors import PreemptionError, TransientCollectiveError
from repro.faults.plan import (
    CHECKPOINT_CORRUPTION,
    COLLECTIVE_TRANSIENT,
    DEGRADED_LINK,
    LOSS_SPIKE,
    PREEMPTION,
    FaultEvent,
    FaultPlan,
)
from repro.train.trainer import TrainerHooks
from repro.utils.rng import derive_seed


def corrupt_file(path: Path, mode: str, seed: int) -> None:
    """Deterministically damage one file: flip a byte or truncate the tail.

    The byte offset / truncation point derives from ``seed`` and the file
    name, so a replayed plan corrupts the same bytes.
    """
    data = path.read_bytes()
    if not data:
        return
    offset = derive_seed(seed, "corrupt", path.name) % len(data)
    if mode == "truncate":
        path.write_bytes(data[: max(offset, 1) - 1])
        return
    flipped = bytes([data[offset] ^ 0xFF])
    path.write_bytes(data[:offset] + flipped + data[offset + 1 :])


class FaultInjector(TrainerHooks):
    """Seeded, replayable interpreter of one :class:`FaultPlan`.

    The driving loop calls :meth:`begin_step` at each step boundary so the
    collective hook (which only sees op names and byte counts) knows the
    current step.  Events fire at most once — a fault consumed before a
    preemption does not re-fire when the recovered run replays the same
    step indices, matching how real transient faults behave.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.seed = plan.seed
        self.reset()

    def reset(self) -> None:
        """Rewind all fired-state so the plan replays identically."""
        self.current_step = -1
        self._fired: set = set()
        # event-id -> remaining failing attempts for transient collectives
        self._transient_budget: Dict[int, int] = {
            i: e.attempts
            for i, e in enumerate(self.plan.events)
            if e.kind == COLLECTIVE_TRANSIENT
        }
        self.injected: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def _record(self, event: FaultEvent, **detail: object) -> None:
        entry: Dict[str, object] = {"kind": event.kind, "step": event.step}
        entry.update(detail)
        self.injected.append(entry)

    def begin_step(self, step: int) -> None:
        """Tell the injector which optimizer step is executing."""
        self.current_step = int(step)

    # -- trainer hooks --------------------------------------------------
    def on_step_start(self, step: int) -> None:
        """Raise a scheduled preemption exactly once."""
        self.begin_step(step)
        for i, event in enumerate(self.plan.events):
            if (
                event.kind == PREEMPTION
                and event.step == step
                and i not in self._fired
            ):
                self._fired.add(i)
                self._record(event, rank=event.rank)
                raise PreemptionError(step, event.rank)

    def on_gradients(self, step: int, grads: dict) -> None:
        """Apply scheduled loss-spike scalings to accumulated gradients.

        ``grads`` may be one named dict or a sequence of per-rank dicts;
        every replica/shard is scaled identically so synchronous-update
        invariants (DDP replicas never diverge) survive the fault.
        """
        for i, event in enumerate(self.plan.events):
            if (
                event.kind == LOSS_SPIKE
                and event.step == step
                and i not in self._fired
            ):
                self._fired.add(i)
                shards = grads if isinstance(grads, (list, tuple)) else [grads]
                for shard in shards:
                    for g in shard.values():
                        g *= event.factor
                self._record(event, factor=event.factor)

    # -- communicator hook ----------------------------------------------
    def degradation_at(self, step: int) -> Optional[FaultEvent]:
        """The degraded-link event whose window covers ``step``, if any."""
        for event in self.plan.events_of_kind(DEGRADED_LINK):
            if event.step <= step < event.step + event.duration:
                return event
        return None

    def collective_hook(self, op: str, nbytes: int) -> float:
        """``Communicator.hook`` adapter: transient faults + link slowdown."""
        step = self.current_step
        for i, event in enumerate(self.plan.events):
            if (
                event.kind == COLLECTIVE_TRANSIENT
                and event.step == step
                and (event.op is None or event.op == op)
                and self._transient_budget.get(i, 0) > 0
            ):
                self._transient_budget[i] -= 1
                attempt = event.attempts - self._transient_budget[i]
                self._record(event, op=op, attempt=attempt)
                raise TransientCollectiveError(op, step, attempt)
        degraded = self.degradation_at(step)
        if degraded is not None:
            key = ("degraded", degraded.step, degraded.duration)
            if key not in self._fired:
                self._fired.add(key)
                self._record(degraded, factor=degraded.factor)
            return degraded.factor
        return 1.0

    def install(self, *comms) -> None:
        """Attach :meth:`collective_hook` to one or more communicators."""
        for comm in comms:
            comm.install_hook(self.collective_hook)

    # -- checkpoint hook -------------------------------------------------
    def on_checkpoint_saved(self, path, step: int) -> None:
        """Post-save hook: corrupt the scheduled shard of this snapshot."""
        path = Path(path)
        for i, event in enumerate(self.plan.events):
            if (
                event.kind == CHECKPOINT_CORRUPTION
                and event.step == step
                and i not in self._fired
            ):
                self._fired.add(i)
                target = path / event.target
                if target.exists():
                    corrupt_file(target, event.mode, self.seed)
                    self._record(
                        event, target=event.target, mode=event.mode
                    )
