"""Faultable training loops: DP, TP and pipeline adapters for recovery.

Each adapter wraps one of the simulated distributed training paths behind
the :class:`~repro.faults.recovery.FaultableLoop` protocol so a single
:class:`~repro.faults.recovery.RecoveryManager` can drive any of them
through a fault plan.  The adapters deliberately keep happy-path code in
:mod:`repro.parallel` untouched — they only sequence existing phases
(compute / norm / apply / save / load) and feed the injector's hooks.

Shared contract (what makes faulted runs bit-identically recoverable):

* ``build()`` reconstructs the exact initial state from the loop's seed;
* the batch for optimizer step ``i`` is a pure function of ``(seed, i)``;
* ``compute_step`` starts from zeroed gradients and mutates only
  gradients, so it can be re-run after a transient fault or a discarded
  spike;
* collectives precede any parameter/optimizer mutation inside each phase,
  so a phase interrupted by a collective fault left no partial update.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.config import ModelConfig
from repro.model.transformer import TransformerLM
from repro.parallel.collectives import Communicator
from repro.parallel.data_parallel import DataParallelTrainer, DDPConfig
from repro.parallel.mesh import DeviceMesh
from repro.parallel.pipeline_parallel import PipelinedModel
from repro.parallel.tensor_parallel import TensorParallelMLPTrainer
from repro.train.checkpointing import (
    load_state_arrays,
    load_training_state,
    save_state_arrays,
    save_training_state,
)
from repro.train.optimizer import AdamW, clip_grad_norm
from repro.utils.rng import new_rng


def _tiny_model_config(vocab_size: int = 64) -> ModelConfig:
    """Smallest config the differential matrix trains in a few seconds."""
    return ModelConfig(
        vocab_size=vocab_size,
        d_model=16,
        n_layers=2,
        n_heads=2,
        max_seq_len=32,
    )


def _token_batch(
    seed: int, step: int, batch: int, seq: int, vocab: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic next-token batch for optimizer step ``step``."""
    rng = new_rng(seed, "fault_batch", step)
    tokens = rng.integers(0, vocab, size=(batch, seq + 1))
    return tokens[:, :-1].copy(), tokens[:, 1:].copy()


class DataParallelFaultLoop:
    """DDP across ``world`` ranks behind the faultable-loop protocol."""

    name = "dp"
    checkpoint_target = "optimizer.npz"

    def __init__(
        self,
        world: int = 2,
        seed: int = 0,
        batch_size: int = 4,
        seq_len: int = 6,
        config: Optional[DDPConfig] = None,
    ) -> None:
        if batch_size % world != 0:
            raise ValueError("batch_size must be divisible by world")
        self.world = world
        self.seed = seed
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.model_config = _tiny_model_config()
        self.config = config or DDPConfig(total_steps=64)
        self.ddp: Optional[DataParallelTrainer] = None

    def build(self) -> None:
        mesh = DeviceMesh(1, self.world)
        self.ddp = DataParallelTrainer(
            mesh, self.model_config, self.config, seed=self.seed
        )

    def communicators(self) -> Sequence[Communicator]:
        return [self.ddp.comm]

    def gradient_shards(self) -> Sequence[dict]:
        return [r.named_gradients() for r in self.ddp.replicas]

    def compute_step(self, step: int) -> float:
        x, t = _token_batch(
            self.seed, step, self.batch_size, self.seq_len,
            self.model_config.vocab_size,
        )
        return self.ddp.compute_gradients(x, t)

    def grad_norm(self) -> float:
        return self.ddp.grad_norm()

    def apply_step(self, step: int) -> None:
        self.ddp.apply_gradients()

    def save(self, path: Path, step: int) -> None:
        save_training_state(path, self.ddp.model, self.ddp.optimizers[0], step)

    def load(self, path: Path) -> int:
        meta = load_training_state(path, self.ddp.model, self.ddp.optimizers[0])
        # Mirror the restored rank-0 state onto every other replica, exactly
        # as real DDP re-broadcasts after restore.
        state = self.ddp.model.state_copy()
        lead = self.ddp.optimizers[0]
        for replica, opt in zip(self.ddp.replicas[1:], self.ddp.optimizers[1:]):
            replica.load_state(state)
            for key in opt.m:
                opt.m[key][...] = lead.m[key]
                opt.v[key][...] = lead.v[key]
            opt.step_count = lead.step_count
        return int(meta["step"])

    def fingerprint(self) -> Dict[str, np.ndarray]:
        out = {k: v.copy() for k, v in self.ddp.model.named_parameters().items()}
        lead = self.ddp.optimizers[0]
        for key in lead.m:
            out[f"m::{key}"] = lead.m[key].copy()
            out[f"v::{key}"] = lead.v[key].copy()
        out["step_count"] = np.array([lead.step_count])
        return out


class TensorParallelFaultLoop:
    """Megatron-sharded MLP trainer behind the faultable-loop protocol."""

    name = "tp"
    checkpoint_target = "state.npz"

    def __init__(
        self,
        tp: int = 2,
        seed: int = 0,
        batch_size: int = 4,
        d_in: int = 6,
        d_hidden: int = 8,
        d_out: int = 4,
        lr: float = 1e-2,
    ) -> None:
        self.tp = tp
        self.seed = seed
        self.batch_size = batch_size
        self.dims = (d_in, d_hidden, d_out)
        self.lr = lr
        self.trainer: Optional[TensorParallelMLPTrainer] = None

    def build(self) -> None:
        mesh = DeviceMesh(1, self.tp)
        comm = Communicator(mesh)
        d_in, d_hidden, d_out = self.dims
        self.trainer = TensorParallelMLPTrainer(
            d_in, d_hidden, d_out, comm, seed=self.seed
        )

    def communicators(self) -> Sequence[Communicator]:
        return [self.trainer.comm]

    def gradient_shards(self) -> Sequence[dict]:
        return self.trainer.shard_grads

    def _batch(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        d_in, _, d_out = self.dims
        rng = new_rng(self.seed, "fault_batch", step)
        x = rng.standard_normal((self.batch_size, d_in))
        target = rng.standard_normal((self.batch_size, d_out))
        return x, target

    def compute_step(self, step: int) -> float:
        x, target = self._batch(step)
        return self.trainer.compute_gradients(x, target)

    def grad_norm(self) -> float:
        return self.trainer.grad_norm()

    def apply_step(self, step: int) -> None:
        self.trainer.apply_gradients(self.lr)

    def save(self, path: Path, step: int) -> None:
        save_state_arrays(
            path,
            self.trainer.state_arrays(),
            meta={"step": int(step), "step_count": int(self.trainer.step_count)},
        )

    def load(self, path: Path) -> int:
        arrays, extra = load_state_arrays(path)
        self.trainer.load_state_arrays(arrays, int(extra["step_count"]))
        return int(extra["step"])

    def fingerprint(self) -> Dict[str, np.ndarray]:
        out = {k: v.copy() for k, v in self.trainer.state_arrays().items()}
        out["step_count"] = np.array([self.trainer.step_count])
        return out


class PipelineFaultLoop:
    """Two-stage (or deeper) pipeline executor behind the protocol.

    Unlike :meth:`PipelinedModel.train_step`, stage-boundary activations
    and gradients move through :meth:`Communicator.point_to_point`, which
    is where the injector's transient/degraded-link faults live for the
    pipeline mesh.  The arithmetic is unchanged — ``point_to_point``
    returns a bit-exact copy — so the clean run still matches monolithic
    training.
    """

    name = "pp"
    checkpoint_target = "optimizer.npz"

    def __init__(
        self,
        n_stages: int = 2,
        seed: int = 0,
        batch_size: int = 4,
        seq_len: int = 6,
        n_microbatches: int = 2,
        lr: float = 1e-3,
        clip_norm: float = 1.0,
    ) -> None:
        self.n_stages = n_stages
        self.seed = seed
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.n_microbatches = n_microbatches
        self.lr = lr
        self.clip_norm = clip_norm
        self.model_config = _tiny_model_config()
        self.model: Optional[TransformerLM] = None
        self.pipe: Optional[PipelinedModel] = None
        self.optimizer: Optional[AdamW] = None
        self.comm: Optional[Communicator] = None

    def build(self) -> None:
        self.model = TransformerLM(self.model_config, seed=self.seed)
        self.pipe = PipelinedModel(self.model, self.n_stages)
        self.optimizer = AdamW(
            self.model.named_parameters(), self.model.named_gradients()
        )
        mesh = DeviceMesh(1, self.n_stages)
        self.comm = Communicator(mesh)

    def communicators(self) -> Sequence[Communicator]:
        return [self.comm]

    def gradient_shards(self) -> Sequence[dict]:
        return [self.model.named_gradients()]

    def compute_step(self, step: int) -> float:
        x, t = _token_batch(
            self.seed, step, self.batch_size, self.seq_len,
            self.model_config.vocab_size,
        )
        self.model.zero_grad()
        micro_in = np.split(x, self.n_microbatches)
        micro_t = np.split(t, self.n_microbatches)
        total_loss = 0.0
        for mx, mt in zip(micro_in, micro_t):
            act = mx
            for s in range(self.n_stages):
                if s > 0:
                    act = self.comm.point_to_point(act, s - 1, s)
                act = self.pipe._forward_stage(s, act)
            loss, dlogits = self.model.cross_entropy(act, mt)
            total_loss += loss / self.n_microbatches
            grad = dlogits / self.n_microbatches
            for s in reversed(range(self.n_stages)):
                grad = self.pipe._backward_stage(s, grad)
                if s > 0:
                    grad = self.comm.point_to_point(grad, s, s - 1)
        return float(total_loss)

    def grad_norm(self) -> float:
        total = 0.0
        for g in self.model.named_gradients().values():
            total += float(np.sum(g.astype(np.float64) ** 2))
        return float(np.sqrt(total))

    def apply_step(self, step: int) -> None:
        clip_grad_norm(self.model.named_gradients(), self.clip_norm)
        self.optimizer.step(self.lr)

    def save(self, path: Path, step: int) -> None:
        save_training_state(path, self.model, self.optimizer, step)

    def load(self, path: Path) -> int:
        meta = load_training_state(path, self.model, self.optimizer)
        return int(meta["step"])

    def fingerprint(self) -> Dict[str, np.ndarray]:
        out = {k: v.copy() for k, v in self.model.named_parameters().items()}
        for key in self.optimizer.m:
            out[f"m::{key}"] = self.optimizer.m[key].copy()
            out[f"v::{key}"] = self.optimizer.v[key].copy()
        out["step_count"] = np.array([self.optimizer.step_count])
        return out


def run_clean(loop, total_steps: int) -> Tuple[List[float], Dict[str, np.ndarray]]:
    """Uninterrupted reference run: no injector, no checkpoints.

    Returns ``(losses, fingerprint)`` — the ground truth every
    faulted-then-recovered run must match bit-for-bit.
    """
    loop.build()
    losses: List[float] = []
    for step in range(total_steps):
        losses.append(float(loop.compute_step(step)))
        loop.grad_norm()
        loop.apply_step(step)
    return losses, loop.fingerprint()


ALL_LOOPS = (DataParallelFaultLoop, TensorParallelFaultLoop, PipelineFaultLoop)
