"""Scheduler-level fault injection for the serving engine.

The serving analogue of :class:`~repro.faults.injector.FaultInjector`:
a :class:`ServeFaultInjector` interprets a declarative
:class:`~repro.faults.plan.FaultPlan` against *scheduler steps* instead
of optimizer steps, producing the
:class:`~repro.serve.scheduler.StepDirectives` the engine consumes:

* ``preemption`` events evict the running request at index ``rank``
  (admission order) back to the wait queue at step ``step`` — the
  request restarts deterministically, so final outputs are unchanged;
* ``degraded-link`` events multiply the virtual duration of every step
  in their window by ``factor`` — latency only, never arithmetic.

As with the trainer-side injector, ``(plan, plan.seed)`` is the complete
replay key: events fire at most once, :meth:`reset` rewinds the fired
state, and the ``injected`` record lets tests assert the same faults
fired in the same order on replay.
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.plan import DEGRADED_LINK, PREEMPTION, FaultPlan
from repro.serve.scheduler import StepDirectives

__all__ = ["ServeFaultInjector", "SERVE_FAULT_KINDS"]

#: fault classes meaningful at the serving scheduler
SERVE_FAULT_KINDS = (PREEMPTION, DEGRADED_LINK)


class ServeFaultInjector:
    """Replayable interpreter of a :class:`FaultPlan` for serving.

    Install by passing as ``fault_hook`` to
    :class:`~repro.serve.engine.ServeEngine` (or ``simulate``); the
    engine calls :meth:`on_step` once per scheduler iteration.
    """

    def __init__(self, plan: FaultPlan) -> None:
        unsupported = [
            e.kind for e in plan.events if e.kind not in SERVE_FAULT_KINDS
        ]
        if unsupported:
            raise ValueError(
                f"serve scheduler cannot inject fault kinds {unsupported}; "
                f"supported: {SERVE_FAULT_KINDS}"
            )
        self.plan = plan
        self.seed = plan.seed
        self.reset()

    def reset(self) -> None:
        """Rewind fired-state so the identical fault sequence replays."""
        self._fired: set = set()
        self.injected: List[Dict[str, object]] = []

    def on_step(self, step: int) -> StepDirectives:
        """Directives for scheduler step ``step`` (fires each event once)."""
        preempt: List[int] = []
        for i, event in enumerate(self.plan.events):
            if (
                event.kind == PREEMPTION
                and event.step == step
                and i not in self._fired
            ):
                self._fired.add(i)
                preempt.append(event.rank)
                self.injected.append(
                    {"kind": event.kind, "step": step, "rank": event.rank}
                )
        factor = 1.0
        for event in self.plan.events_of_kind(DEGRADED_LINK):
            if event.step <= step < event.step + event.duration:
                factor *= event.factor
                key = ("degraded", event.step, event.duration)
                if key not in self._fired:
                    self._fired.add(key)
                    self.injected.append(
                        {
                            "kind": event.kind,
                            "step": event.step,
                            "factor": event.factor,
                        }
                    )
        return StepDirectives(
            latency_factor=factor, preempt_ranks=tuple(preempt)
        )
