"""Fault exception taxonomy.

These types are the *injected* faults of the simulated cluster.  The
invariant (lint rule R6 ``fault-injection-registry``) is that nothing in
``repro/parallel/`` or ``repro/train/`` raises them ad hoc: every raise
flows through the :class:`~repro.faults.injector.FaultInjector`, which is
the only component that consults a :class:`~repro.faults.plan.FaultPlan`.
Detection errors — e.g. :class:`~repro.train.checkpointing.
CheckpointIntegrityError`, raised when a loader finds a corrupt shard —
are deliberately *not* part of this hierarchy: detecting a fault is the
recovery layer's job, injecting one is the injector's.
"""

from __future__ import annotations

__all__ = [
    "FaultInjectionError",
    "PreemptionError",
    "TransientCollectiveError",
    "FaultRecoveryExhausted",
]


class FaultInjectionError(Exception):
    """Base class for every injected fault."""


class PreemptionError(FaultInjectionError):
    """The scheduler revoked the job's allocation at a step boundary.

    Models a SLURM/LSF preemption signal on a shared leadership facility:
    the process dies, and recovery means a fresh job that restores the
    newest intact checkpoint.
    """

    def __init__(self, step: int, rank: int = 0) -> None:
        super().__init__(f"rank {rank} preempted at step {step}")
        self.step = step
        self.rank = rank


class TransientCollectiveError(FaultInjectionError):
    """A collective operation failed transiently (flaky interconnect).

    Retrying the *same* call eventually succeeds — collectives are pure
    functions of their inputs, so a successful retry is bit-identical to
    a run that never faulted.
    """

    def __init__(self, op: str, step: int, attempt: int) -> None:
        super().__init__(
            f"transient failure of {op}() at step {step} (attempt {attempt})"
        )
        self.op = op
        self.step = step
        self.attempt = attempt


class FaultRecoveryExhausted(Exception):
    """The recovery layer gave up (retry budget or restart budget spent).

    Raised by :class:`~repro.faults.recovery.RecoveryManager`, not by the
    injector: it signals that the configured policy could not absorb the
    planned faults, which is itself an asserted behavior in the tests.
    """
