"""``python -m repro.lint`` — run the invariant checker from the shell.

Exit status: 0 when clean (below ``--fail-on``), 1 when findings fail the
build, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import repro.lint.rules  # noqa: F401  (registers the built-in rules)
from repro.lint.config import LintConfig
from repro.lint.core import all_rules
from repro.lint.engine import run_lint
from repro.lint.reporters import json_report, text_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for the repro stack: cache "
            "mutation, collective symmetry, RNG hygiene, float equality, "
            "export drift."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE[,RULE...]",
        help="run only these rules (codes or names)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=None,
        metavar="RULE[,RULE...]",
        help="skip these rules (codes or names)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("info", "warning", "error"),
        default="warning",
        help="lowest severity that fails the build (default: warning)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split(groups: Optional[Sequence[str]]) -> Optional[List[str]]:
    if groups is None:
        return None
    return [item for group in groups for item in group.split(",") if item.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_cls in all_rules():
            print(
                f"{rule_cls.code}  {rule_cls.name:<22} "
                f"[{rule_cls.default_severity}]  {rule_cls.description}"
            )
        return 0
    try:
        config = LintConfig.from_cli(
            select=_split(args.select),
            disable=_split(args.disable),
            fail_on=args.fail_on,
        )
        result = run_lint(args.paths, config)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = json_report(result) if args.format == "json" else text_report(result)
    try:
        print(report)
    except BrokenPipeError:  # e.g. piped into `head`; exit status still counts
        sys.stderr.close()
    return result.exit_code(config.fail_on)


if __name__ == "__main__":
    raise SystemExit(main())
