"""Linter configuration: rule selection, severity overrides, rule options."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.core import Severity, all_rules, resolve_rule_id


@dataclass
class LintConfig:
    """What to run and how strictly.

    ``select``/``disable`` accept rule codes ("R1") or slugs
    ("cache-mutation"); ``select=None`` means all registered rules.
    ``severity_overrides`` maps rule code -> :class:`Severity`;
    ``rule_options`` maps rule code -> option overrides merged over the
    rule's ``default_options``.  ``exclude_parts`` drops any file whose
    '/'-normalized path contains one of the fragments.
    """

    select: Optional[Set[str]] = None
    disable: Set[str] = field(default_factory=set)
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    rule_options: Dict[str, Dict[str, object]] = field(default_factory=dict)
    exclude_parts: List[str] = field(
        default_factory=lambda: ["/.git/", "/__pycache__/", "/.venv/"]
    )
    fail_on: Severity = Severity.WARNING

    @staticmethod
    def _canonical(idents: Iterable[str]) -> Set[str]:
        codes = set()
        for ident in idents:
            code = resolve_rule_id(ident)
            if code is None:
                raise ValueError(f"unknown rule {ident!r}")
            codes.add(code)
        return codes

    @classmethod
    def from_cli(
        cls,
        select: Optional[Iterable[str]] = None,
        disable: Optional[Iterable[str]] = None,
        fail_on: str = "warning",
    ) -> "LintConfig":
        return cls(
            select=cls._canonical(select) if select else None,
            disable=cls._canonical(disable) if disable else set(),
            fail_on=Severity.from_name(fail_on),
        )

    def enabled_rules(self):
        """Instantiated, enabled rules with their merged options."""
        enabled = []
        for rule_cls in all_rules():
            code = rule_cls.code
            if self.select is not None and code not in self.select:
                continue
            if code in self.disable:
                continue
            options = dict(rule_cls.default_options)
            options.update(self.rule_options.get(code, {}))
            enabled.append((rule_cls(), options))
        return enabled

    def severity_for(self, code: str, default: Severity) -> Severity:
        return self.severity_overrides.get(code, default)

    def excludes(self, norm_path: str) -> bool:
        return any(part in norm_path for part in self.exclude_parts)
