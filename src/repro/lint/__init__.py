"""``repro.lint`` — AST-based invariant checker for the repro stack.

The stack's correctness rests on contracts that ordinary tests cannot
guard exhaustively: forked KV caches are shared read-only views (R1),
simulated ranks issue symmetric collective sequences (R2), all
randomness flows through seeded, namespaced generators (R3), floating
point results are never compared with ``==`` (R4), and ``__all__``
tracks the real public surface (R5).  This package machine-checks them:

    PYTHONPATH=src python -m repro.lint src tests
    PYTHONPATH=src python -m repro.lint --format json src
    PYTHONPATH=src python -m repro.lint --list-rules

Deliberate exceptions are written next to the code they waive::

    x = approx()  # lint: disable=R4 (bit-identity check, same fp ops)

See ``docs/lint_rules.md`` for the rule reference.
"""

import repro.lint.rules  # noqa: F401  (registers the built-in rules)
from repro.lint.config import LintConfig
from repro.lint.core import Finding, ParsedModule, Rule, Severity, all_rules, register
from repro.lint.engine import LintResult, collect_files, lint_source, run_lint
from repro.lint.reporters import json_report, text_report
from repro.lint.suppress import Suppressions, parse_suppressions

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "ParsedModule",
    "Rule",
    "Severity",
    "Suppressions",
    "all_rules",
    "collect_files",
    "json_report",
    "lint_source",
    "parse_suppressions",
    "register",
    "run_lint",
    "text_report",
]
