"""Finding reporters: human-readable text and machine-readable JSON.

Both orderings are deterministic (findings are pre-sorted by the engine)
so the JSON form can be snapshot-tested and diffed across CI runs.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.lint.engine import LintResult

JSON_SCHEMA_VERSION = 1


def text_report(result: LintResult) -> str:
    """One line per finding plus a summary tail."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] "
        f"{f.message} [{f.name}]"
        for f in result.findings
    ]
    if result.findings:
        by_rule = ", ".join(
            f"{rule}={count}" for rule, count in result.counts_by_rule.items()
        )
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"({by_rule}) in {result.files_checked} files"
        )
    else:
        lines.append(f"clean: 0 findings in {result.files_checked} files")
    return "\n".join(lines)


def json_report(result: LintResult, indent: int = 2) -> str:
    payload: Dict[str, object] = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "total": len(result.findings),
            "by_rule": result.counts_by_rule,
        },
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
