"""Core types for the invariant linter: findings, rules, the registry.

The linter exists because the stack's safety contracts live in prose —
``kv_cache.py`` promises that attention *rebinds* ``cache["k"]``/``cache["v"]``
and never writes into the existing tensors, the ``parallel`` package assumes
every rank issues the same collective sequence, and the benchmark's
bit-exact comparability assumes disciplined RNG seeding.  Each contract
becomes a :class:`Rule` that walks a module's AST and yields
:class:`Finding`\\ s.

Rules self-register via :func:`register`; the engine instantiates every
registered rule unless a :class:`~repro.lint.config.LintConfig` narrows the
selection.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Type


class Severity(enum.IntEnum):
    """Ordered severity levels; the CLI fails on findings >= ``--fail-on``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:  # "error", for reports
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str  # rule code, e.g. "R1"
    name: str  # rule slug, e.g. "cache-mutation"
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ParsedModule:
    """A parsed source file handed to every rule."""

    path: str  # as given on the command line, '/'-normalized
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class Rule:
    """Base class for lint rules.

    Subclasses set ``code`` / ``name`` / ``description`` /
    ``default_severity`` (and optionally ``default_options``) and implement
    :meth:`check`.  Options arrive already merged (defaults overlaid with
    any per-rule config), so ``check`` never consults global state.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR
    default_options: Dict[str, object] = {}

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ParsedModule,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            rule=self.code,
            name=self.name,
            severity=severity or self.default_severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code or not rule_cls.name:
        raise ValueError(f"rule {rule_cls.__name__} needs a code and a name")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def resolve_rule_id(ident: str) -> Optional[str]:
    """Map a code ("R1") or slug ("cache-mutation") to a canonical code."""
    ident = ident.strip()
    upper = ident.upper()
    if upper in _REGISTRY:
        return upper
    lower = ident.lower()
    for code, cls in _REGISTRY.items():
        if cls.name == lower:
            return code
    return None


def iter_names(node: ast.AST) -> Iterable[str]:
    """Every identifier mentioned anywhere inside ``node``.

    Attribute terminals are included (``self.rank`` yields ``self`` and
    ``rank``), which is what the rank/cache name heuristics need.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
