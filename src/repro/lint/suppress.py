"""Inline suppression comments.

Two forms, parsed from real COMMENT tokens (so strings that merely look
like comments never suppress anything):

* ``# lint: disable=R1,R4 (reason)`` — trailing on a line suppresses
  those rules on that line; on a line of its own it suppresses the next
  source line (the one the comment annotates).
* ``# lint: disable-file=R3 (reason)`` — anywhere in the file, suppresses
  the rules for the whole file.

Rules may be named by code ("R1") or slug ("cache-mutation"), and
``all`` matches every rule.  The parenthesized reason is optional for the
parser but required by convention — reviews should be able to see *why*
an invariant is deliberately waived.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.lint.core import resolve_rule_id

_DIRECTIVE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)


@dataclass
class Suppressions:
    """Parsed suppression directives for one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)
    #: directives whose rule list contained an unknown identifier
    unknown: List[str] = field(default_factory=list)

    def is_suppressed(self, rule_code: str, line: int) -> bool:
        if "all" in self.file_wide or rule_code in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return rules is not None and ("all" in rules or rule_code in rules)


def _resolve(idents: str, unknown: List[str]) -> Set[str]:
    resolved: Set[str] = set()
    for ident in idents.split(","):
        ident = ident.strip()
        if not ident:
            continue
        if ident.lower() == "all":
            resolved.add("all")
            continue
        code = resolve_rule_id(ident)
        if code is None:
            unknown.append(ident)
        else:
            resolved.add(code)
    return resolved


def parse_suppressions(source: str) -> Suppressions:
    """Collect suppression directives from ``source``'s comment tokens."""
    supp = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return supp
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        rules = _resolve(match.group("rules"), supp.unknown)
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            supp.file_wide |= rules
            continue
        row, col = tok.start
        prefix = lines[row - 1][:col] if row - 1 < len(lines) else ""
        # A standalone comment annotates the line below it; a trailing
        # comment annotates its own line.
        target = row + 1 if not prefix.strip() else row
        supp.by_line.setdefault(target, set()).update(rules)
    return supp
