"""The lint engine: collect files, parse once, run rules, filter, sort.

Parse failures are not crashes — a file that does not parse yields a
single ``E999`` finding (severity error) so CI fails loudly with a
location instead of a traceback.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.core import Finding, ParsedModule, Severity
from repro.lint.suppress import parse_suppressions

PARSE_ERROR_RULE = "E999"


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def max_severity(self) -> Optional[Severity]:
        return max((f.severity for f in self.findings), default=None)

    def exit_code(self, fail_on: Severity) -> int:
        return int(any(f.severity >= fail_on for f in self.findings))


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def collect_files(paths: Sequence[str], config: LintConfig) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    files: List[str] = []
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        elif os.path.isdir(path):
            candidates = []
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if not d.startswith(".") and d != "__pycache__"
                )
                candidates.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for cand in candidates:
            norm = _norm(cand)
            if norm in seen or config.excludes("/" + norm.lstrip("/")):
                continue
            seen.add(norm)
            files.append(cand)
    return files


def lint_source(
    source: str,
    path: str = "<snippet>",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one in-memory module; the unit used by both engine and tests."""
    config = config or LintConfig()
    norm_path = _norm(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                name="parse-error",
                severity=Severity.ERROR,
                path=norm_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    module = ParsedModule(path=norm_path, source=source, tree=tree)
    supp = parse_suppressions(source)
    findings: List[Finding] = []
    for rule, options in config.enabled_rules():
        for finding in rule.check(module, options):
            if supp.is_suppressed(finding.rule, finding.line):
                continue
            severity = config.severity_for(finding.rule, finding.severity)
            if severity is not finding.severity:
                finding = Finding(
                    rule=finding.rule,
                    name=finding.name,
                    severity=severity,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                )
            findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings


def run_lint(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintResult:
    """Lint every python file under ``paths``."""
    config = config or LintConfig()
    result = LintResult()
    for filename in collect_files(paths, config):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        result.findings.extend(lint_source(source, path=filename, config=config))
        result.files_checked += 1
    result.findings.sort(key=lambda f: f.sort_key)
    return result
