"""R4 float-equality: ``==``/``!=`` between float-typed expressions.

Floating-point equality against computed values is order-of-evaluation
dependent: the batched eval path is only *allclose* to the sequential
one, bf16 emulation rounds, and reductions reassociate.  An ``==`` that
happens to hold today is a refactor away from a silent benchmark skew.

The rule is deliberately heuristic about "float-typed":

* a non-dyadic float literal (``64.7``, ``0.1`` — values with no exact
  binary representation, which almost always denote *measured/computed*
  quantities) on either side;
* an expression that manifestly produces a float: ``float(...)``,
  ``np.float32/float64(...)``, true division, ``math.sqrt``-style
  transcendental calls, or the ``pi``/``e`` constants.

Comparisons against *dyadic* literals (``0.0``, ``1.0``, ``0.5``) are
allowed: they are exactly representable and this stack uses them as
sentinels (``temperature == 0.0``) and as exact-ratio assertions
(``accuracy == 1.0`` where accuracy is ``correct / total``).  Deliberate
bit-identity checks on other values take an inline suppression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.core import Finding, ParsedModule, Rule, register

#: math/np functions that return floats
_FLOAT_FUNCS = {
    "sqrt",
    "exp",
    "expm1",
    "log",
    "log1p",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "atan2",
    "hypot",
    "fsum",
    "mean",
    "std",
    "var",
    "float32",
    "float64",
    "float16",
}
_FLOAT_CONSTANTS = {"pi", "e", "euler_gamma", "tau"}


def _is_dyadic(value: float) -> bool:
    """Exactly representable with a small power-of-two denominator.

    ``3.0``, ``0.5``, ``1.75`` pass; ``0.1`` and ``64.7`` do not.  The
    2**16 bound keeps "obviously intended as exact" values (halves,
    quarters...) while rejecting decimal-looking constants.
    """
    try:
        scaled = value * 65536.0
    except OverflowError:  # pragma: no cover - inf handled by caller
        return False
    return scaled == int(scaled) if abs(scaled) < 2**53 else float(value).is_integer()


def _float_reason(node: ast.AST) -> Optional[str]:
    """Why ``node`` is float-typed (None if we can't tell)."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, float):
            if node.value != node.value or node.value in (
                float("inf"),
                float("-inf"),
            ):
                return "non-finite float literal"
            if not _is_dyadic(node.value):
                return f"inexact float literal {node.value!r}"
        return None
    if isinstance(node, ast.UnaryOp):
        return _float_reason(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return "true-division result"
        left = _float_reason(node.left)
        return left or _float_reason(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "float":
            return "float(...) result"
        if name in _FLOAT_FUNCS:
            return f"{name}(...) result"
        return None
    if isinstance(node, ast.Attribute) and node.attr in _FLOAT_CONSTANTS:
        return f"float constant .{node.attr}"
    return None


@register
class FloatEqualityRule(Rule):
    code = "R4"
    name = "float-equality"
    description = (
        "== / != between float-typed expressions; use np.isclose / "
        "np.testing.assert_allclose, or suppress for deliberate "
        "bit-identity checks"
    )

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    reason = _float_reason(side)
                    if reason is not None:
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"float equality ({symbol} with {reason}); "
                                f"floating-point results are not stable "
                                f"under reassociation — compare with a "
                                f"tolerance",
                            )
                        )
                        break
        return iter(findings)
