"""R2 collective-symmetry: collectives must be issued symmetrically.

The simulated mesh (``repro.parallel``) — like any MPI/NCCL program —
deadlocks or corrupts reductions when ranks disagree about the sequence
of collectives.  A collective call under an ``if rank == 0:`` branch, in
a ``while`` whose condition is rank-dependent, or in a loop whose trip
count depends on the rank, is exactly that bug.

Scope is limited to the distributed layers (``parallel``/``train`` path
fragments by default) so ordinary code may branch on whatever it likes.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional

from repro.lint.core import Finding, ParsedModule, Rule, iter_names, register

COLLECTIVES = {"all_reduce", "all_gather", "reduce_scatter", "broadcast", "barrier"}


def _collective_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in COLLECTIVES:
        return func.attr
    if isinstance(func, ast.Name) and func.id in COLLECTIVES:
        return func.id
    return None


@register
class CollectiveSymmetryRule(Rule):
    code = "R2"
    name = "collective-symmetry"
    description = (
        "collective call inside a rank-dependent branch or loop "
        "(every rank must issue the same collective sequence)"
    )
    default_options = {
        "path_fragments": ["/parallel/", "/train/"],
        "rank_name_pattern": r"(?:^|_)ranks?$|^world_rank$|^group_rank$",
    }

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        fragments = list(options["path_fragments"])  # type: ignore[arg-type]
        norm = "/" + module.path.lstrip("/")
        if fragments and not any(frag in norm for frag in fragments):
            return iter(())
        pattern = re.compile(str(options["rank_name_pattern"]), re.I)
        findings: List[Finding] = []

        def rank_dependent(node: ast.AST) -> bool:
            return any(pattern.search(name) for name in iter_names(node))

        def describe(ctrl: ast.stmt) -> str:
            kind = {ast.If: "if", ast.While: "while", ast.For: "for"}.get(
                type(ctrl), "branch"
            )
            return f"rank-dependent {kind} at line {ctrl.lineno}"

        def report(expr: ast.AST, ctrl: ast.stmt) -> None:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    name = _collective_name(node)
                    if name is not None:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"collective {name}() under {describe(ctrl)}",
                            )
                        )

        def walk(body: List[ast.stmt], ctrl: Optional[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, ast.If):
                    inner = stmt if rank_dependent(stmt.test) else ctrl
                    if ctrl is not None:
                        report(stmt.test, ctrl)
                    walk(stmt.body, inner)
                    walk(stmt.orelse, inner)
                elif isinstance(stmt, ast.While):
                    inner = stmt if rank_dependent(stmt.test) else ctrl
                    if inner is not None:
                        report(stmt.test, inner)
                    walk(stmt.body, inner)
                    walk(stmt.orelse, ctrl)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    inner = (
                        stmt
                        if isinstance(stmt, ast.For) and rank_dependent(stmt.iter)
                        else ctrl
                    )
                    if ctrl is not None:
                        report(stmt.iter, ctrl)
                    walk(stmt.body, inner)
                    walk(stmt.orelse, ctrl)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(stmt.body, None)  # a new symmetric context
                elif isinstance(stmt, ast.ClassDef):
                    walk(stmt.body, None)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    if ctrl is not None:
                        for item in stmt.items:
                            report(item.context_expr, ctrl)
                    walk(stmt.body, ctrl)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, ctrl)
                    for handler in stmt.handlers:
                        walk(handler.body, ctrl)
                    walk(stmt.orelse, ctrl)
                    walk(stmt.finalbody, ctrl)
                else:
                    if ctrl is not None:
                        report(stmt, ctrl)

        walk(module.tree.body, None)
        return iter(findings)
