"""R3 rng-hygiene: no NumPy global RNG state, no unseeded generators.

Bit-exact benchmark comparability across the model zoo requires every
stochastic component to draw from an explicitly seeded, namespaced stream
(``repro.utils.rng``).  Two things break that silently:

* the legacy global-state API (``np.random.seed`` / ``np.random.rand`` /
  ``np.random.shuffle`` ...), whose hidden state couples unrelated
  call sites and varies with import/execution order;
* ``np.random.default_rng()`` with no seed, which draws fresh OS entropy
  on every run.

``repro/utils/rng.py`` itself — the sanctioned wrapper — is exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.lint.core import Finding, ParsedModule, Rule, register

#: legacy numpy.random module-level functions backed by hidden global state
GLOBAL_STATE_FNS = {
    "seed",
    "get_state",
    "set_state",
    "rand",
    "randn",
    "randint",
    "random_integers",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "bytes",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "beta",
    "binomial",
    "poisson",
    "exponential",
    "gamma",
    "geometric",
    "laplace",
    "lognormal",
    "multinomial",
    "multivariate_normal",
    "pareto",
    "rayleigh",
    "triangular",
    "vonmises",
    "weibull",
    "zipf",
}


def _is_np_random(node: ast.AST, numpy_aliases: set) -> bool:
    """True for ``<numpy-alias>.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in numpy_aliases
    )


@register
class RngHygieneRule(Rule):
    code = "R3"
    name = "rng-hygiene"
    description = (
        "numpy global RNG state or unseeded default_rng() outside the "
        "sanctioned repro.utils.rng wrapper"
    )
    default_options = {
        "allowed_file_suffixes": ["repro/utils/rng.py"],
    }

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        suffixes = list(options["allowed_file_suffixes"])  # type: ignore[arg-type]
        if any(module.path.endswith(suffix) for suffix in suffixes):
            return iter(())
        findings: List[Finding] = []
        numpy_aliases = {"numpy", "np"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("numpy.random", "numpy.random.mtrand"):
                    for alias in node.names:
                        if alias.name in GLOBAL_STATE_FNS:
                            findings.append(
                                self.finding(
                                    module,
                                    node,
                                    f"import of numpy.random.{alias.name} "
                                    f"(hidden global RNG state); derive a "
                                    f"seeded Generator via repro.utils.rng",
                                )
                            )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not _is_np_random(func.value, numpy_aliases):
                continue
            if func.attr in GLOBAL_STATE_FNS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"np.random.{func.attr}() uses hidden global RNG "
                        f"state; derive a seeded Generator via "
                        f"repro.utils.rng (new_rng / spawn_rngs)",
                    )
                )
            elif func.attr == "default_rng" and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "unseeded np.random.default_rng() draws fresh OS "
                        "entropy every run; pass an explicit seed",
                    )
                )
            elif func.attr == "RandomState":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "legacy np.random.RandomState; use a seeded "
                        "np.random.default_rng Generator instead",
                    )
                )
        findings.sort(key=lambda f: f.sort_key)
        return iter(findings)
