"""R7 wall-clock-hygiene: serving code tells time only through the Clock.

The serving simulator's replay contract — same ``(schedule, seed)`` →
bit-identical event log, metrics, and outputs — holds only if nothing in
the scheduling path observes real time.  A single
``time.monotonic()`` sneaking into the scheduler turns every latency
histogram and deadline decision into a function of the host's load, and
the differential tests (``tests/test_serve_sim.py``) stop meaning
anything.

The rule flags any call or import of the :mod:`time` module's clock
readers (``time``, ``monotonic``, ``perf_counter``, ``process_time``,
their ``_ns`` variants, plus ``datetime.now`` / ``datetime.utcnow``)
inside the serving package.  ``serve/clock.py`` — the one sanctioned
wall-clock adapter (:class:`~repro.serve.clock.WallClock`) — is exempt:
time enters the engine *only* as an injected
:class:`~repro.serve.clock.Clock`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.lint.core import Finding, ParsedModule, Rule, register

#: time-module attributes that read a wall clock
WALL_CLOCK_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "clock_gettime_ns",
}

#: datetime constructors that read a wall clock
DATETIME_FNS = {"now", "utcnow", "today"}


@register
class WallClockRule(Rule):
    code = "R7"
    name = "wall-clock-hygiene"
    description = (
        "wall-clock read inside the serving package (scheduling must be "
        "driven by the injected Clock so simulations replay bit-identically; "
        "only serve/clock.py may touch the time module)"
    )
    default_options = {
        "path_fragments": ["/serve/"],
        "allowed_file_suffixes": ["serve/clock.py"],
    }

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        fragments = list(options["path_fragments"])  # type: ignore[arg-type]
        norm = "/" + module.path.lstrip("/")
        if fragments and not any(frag in norm for frag in fragments):
            return iter(())
        suffixes = list(options["allowed_file_suffixes"])  # type: ignore[arg-type]
        if any(module.path.endswith(suffix) for suffix in suffixes):
            return iter(())
        findings: List[Finding] = []
        time_aliases = {"time"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_FNS:
                            findings.append(
                                self.finding(
                                    module,
                                    node,
                                    f"import of time.{alias.name} in serving "
                                    f"code; take time from the injected "
                                    f"Clock (repro.serve.clock)",
                                )
                            )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
                and func.attr in WALL_CLOCK_FNS
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"time.{func.attr}() in serving code; scheduling "
                        f"must read the injected Clock so replays are "
                        f"bit-identical",
                    )
                )
            elif (
                func.attr in DATETIME_FNS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("datetime", "date")
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{func.value.id}.{func.attr}() reads the wall "
                        f"clock; serving code must use the injected Clock",
                    )
                )
        findings.sort(key=lambda f: f.sort_key)
        return iter(findings)
