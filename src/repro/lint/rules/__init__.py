"""Rule modules; importing this package registers every built-in rule."""

from repro.lint.rules.cache_mutation import CacheMutationRule
from repro.lint.rules.collective_symmetry import CollectiveSymmetryRule
from repro.lint.rules.rng_hygiene import RngHygieneRule
from repro.lint.rules.float_equality import FloatEqualityRule
from repro.lint.rules.export_drift import ExportDriftRule
from repro.lint.rules.fault_registry import FaultRegistryRule
from repro.lint.rules.wall_clock import WallClockRule

__all__ = [
    "CacheMutationRule",
    "CollectiveSymmetryRule",
    "RngHygieneRule",
    "FloatEqualityRule",
    "ExportDriftRule",
    "FaultRegistryRule",
    "WallClockRule",
]
