"""R1 cache-mutation: no writes into tensors reachable from a KV cache.

The prefix-cache engine (``repro.model.kv_cache``) forks caches as
zero-copy views, which is safe only under the attention contract:
incremental forwards **rebind** ``cache["k"]`` / ``cache["v"]`` to fresh
arrays and never write into the existing ones.  A single in-place write
into a cached tensor silently corrupts every fork sharing its storage.

This rule performs a per-scope taint walk:

* **container** taint — values that hold cache storage: parameters
  annotated ``KVCache``, results of ``fork_cache(...)`` / ``.fork(...)`` /
  ``.prefill(...)`` / ``PrefixCache(...)``, the ``.cache`` attribute of a
  tainted prefix, loop variables iterating a tainted container, and any
  name matching the cache-name pattern (``cache``, ``kv_cache``, ``pc``,
  ``prefix`` ...);
* **array** taint — tensors pulled out of a container via the ``"k"`` /
  ``"v"`` keys (subscript or ``.get``) or a prefix's ``last_logits``;
  view-producing calls (``broadcast_to``, ``reshape``, slicing, ...)
  propagate it, copying calls (``concatenate`` etc.) clear it.

Flagged:

* subscript stores that reach *through* a k/v key into the tensor
  (``layer["k"][..., 0] = x`` but not the sanctioned ``layer["k"] = x``);
* augmented assignment landing on a k/v slot or a tainted array
  (``layer["v"] += x``, ``k *= s`` — both mutate in place);
* in-place mutator calls on tainted arrays (``k.fill(0)``,
  ``np.copyto(k, ...)``, ``np.exp(..., out=k)``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.core import Finding, ParsedModule, Rule, register

CONTAINER = "container"
PREFIX = "prefix"
ARRAY = "array"

#: np.ndarray methods that mutate in place
_MUTATOR_METHODS = {"fill", "sort", "partition", "put", "resize", "setfield"}
#: callables whose first argument is a mutated output buffer
_MUTATOR_FUNCS = {"copyto", "place", "putmask", "put_along_axis"}
#: callables/methods that return a view (or alias) of a tainted argument
_VIEW_FUNCS = {
    "broadcast_to",
    "asarray",
    "atleast_1d",
    "atleast_2d",
    "reshape",
    "transpose",
    "swapaxes",
    "squeeze",
    "expand_dims",
    "view",
    "astype",  # astype(copy=False) may alias; stay conservative
}


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _chain(node: ast.AST) -> Tuple[ast.AST, List[Tuple[str, object]]]:
    """Decompose ``root[...].attr[...]`` into (root, steps outward)."""
    steps: List[Tuple[str, object]] = []
    while True:
        if isinstance(node, ast.Subscript):
            steps.append(("sub", node.slice))
            node = node.value
        elif isinstance(node, ast.Attribute):
            steps.append(("attr", node.attr))
            node = node.value
        else:
            break
    steps.reverse()
    return node, steps


def _str_index(index: object) -> Optional[str]:
    if isinstance(index, ast.Constant) and isinstance(index.value, str):
        return index.value
    return None


@register
class CacheMutationRule(Rule):
    code = "R1"
    name = "cache-mutation"
    description = (
        "in-place write into a tensor reachable from a KVCache/PrefixCache "
        "binding (the attention contract rebinds, never mutates)"
    )
    default_options = {
        # names treated as cache roots even without a taint-seeding assignment
        "cache_name_pattern": r"(?:^|_)(?:kv_?)?caches?$|^pc$|^prefix(?:_cache)?$",
        # dict keys under which cached tensors live
        "kv_keys": ["k", "v"],
    }

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        self._pattern = re.compile(str(options["cache_name_pattern"]), re.I)
        self._kv_keys = set(options["kv_keys"])  # type: ignore[arg-type]
        self._module = module
        findings: List[Finding] = []
        self._scope(module.tree.body, {}, findings)
        return iter(findings)

    # -- taint bookkeeping -------------------------------------------------
    def _is_cache_root(self, node: ast.AST, taint: Dict[str, str]) -> bool:
        name = _terminal_name(node)
        if name is None:
            return False
        kind = taint.get(name)
        if kind in (CONTAINER, PREFIX):
            return True
        if kind == ARRAY:
            return False  # array taint is handled separately
        return bool(self._pattern.search(name))

    def _taint_of_expr(self, node: ast.AST, taint: Dict[str, str]) -> Optional[str]:
        """Taint kind produced by evaluating ``node``, if any."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            root, steps = _chain(node)
            name = _terminal_name(node)
            if name is not None and taint.get(name) == ARRAY:
                return ARRAY
            if steps and steps[-1][0] == "attr":
                attr = steps[-1][1]
                base = node.value if isinstance(node, ast.Attribute) else None
                if base is not None and (
                    self._is_cache_root(base, taint)
                    or self._taint_of_expr(base, taint) == PREFIX
                ):
                    if attr == "cache":
                        return CONTAINER
                    if attr == "last_logits":
                        return ARRAY
            if name is not None and taint.get(name) in (CONTAINER, PREFIX):
                return taint[name]
            if name is not None and self._pattern.search(name):
                return CONTAINER
            return None
        if isinstance(node, ast.Subscript):
            # pulling a k/v tensor out of a cache chain => array taint;
            # slicing an array-tainted value stays a view of it
            root, steps = _chain(node)
            if self._is_cache_root(root, taint):
                if any(
                    kind == "sub" and _str_index(idx) in self._kv_keys
                    for kind, idx in steps
                ):
                    return ARRAY
                return CONTAINER  # e.g. cache[0]: a per-layer dict view
            inner = self._taint_of_expr(node.value, taint)
            return ARRAY if inner == ARRAY else None
        if isinstance(node, ast.Call):
            fn = node.func
            fn_name = _terminal_name(fn)
            if fn_name == "fork_cache":
                return CONTAINER
            if fn_name == "fork" and isinstance(fn, ast.Attribute):
                return CONTAINER
            if fn_name in ("PrefixCache", "prefill"):
                return PREFIX
            if fn_name == "get" and isinstance(fn, ast.Attribute) and node.args:
                base_tainted = self._is_cache_root(
                    fn.value, taint
                ) or self._taint_of_expr(fn.value, taint) in (CONTAINER, PREFIX)
                if base_tainted and _str_index(node.args[0]) in self._kv_keys:
                    return ARRAY
            if fn_name in _VIEW_FUNCS:
                for arg in node.args:
                    if self._taint_of_expr(arg, taint) == ARRAY:
                        return ARRAY
                if isinstance(fn, ast.Attribute):
                    if self._taint_of_expr(fn.value, taint) == ARRAY:
                        return ARRAY
            return None
        return None

    @staticmethod
    def _annotation_taint(annotation: Optional[ast.AST]) -> Optional[str]:
        if annotation is None:
            return None
        text = ast.dump(annotation)
        if "KVCache" in text:
            return CONTAINER
        if "PrefixCache" in text:
            return PREFIX
        return None

    # -- violation detection ----------------------------------------------
    def _store_violation(
        self, target: ast.AST, taint: Dict[str, str], augmented: bool
    ) -> Optional[str]:
        """Why a store into ``target`` breaks the contract (None if it doesn't)."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                why = self._store_violation(elt, taint, augmented)
                if why:
                    return why
            return None
        if isinstance(target, ast.Name):
            if augmented and taint.get(target.id) == ARRAY:
                return (
                    f"augmented assignment mutates cache tensor "
                    f"{target.id!r} in place"
                )
            return None
        if not isinstance(target, ast.Subscript):
            return None
        root, steps = _chain(target)
        root_name = _terminal_name(root)
        if root_name is not None and taint.get(root_name) == ARRAY:
            return (
                f"subscript write into cache tensor reached via {root_name!r}"
            )
        if not self._is_cache_root(root, taint):
            # also catch writes through an array-tainted sub-expression,
            # e.g. ``pc.last_logits[0] = x``
            if self._taint_of_expr(target.value, taint) == ARRAY:
                return "subscript write into a cache-derived tensor"
            return None
        kv_positions = [
            i
            for i, (kind, idx) in enumerate(steps)
            if kind == "sub" and _str_index(idx) in self._kv_keys
        ]
        if not kv_positions:
            return None
        last_step_is_kv = kv_positions[-1] == len(steps) - 1
        if augmented and last_step_is_kv:
            return (
                "augmented assignment on a k/v slot mutates the cached "
                "tensor in place (rebind with '=' instead)"
            )
        if not last_step_is_kv:
            return (
                "write reaches through a k/v key into cached tensor "
                "storage (forked caches share these views)"
            )
        return None  # plain rebind of the k/v slot: the sanctioned operation

    def _call_violation(
        self, node: ast.Call, taint: Dict[str, str]
    ) -> Optional[str]:
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in _MUTATOR_METHODS:
            if self._taint_of_expr(fn.value, taint) == ARRAY:
                return f"in-place method .{fn.attr}() on a cache tensor"
        fn_name = _terminal_name(fn)
        if fn_name in _MUTATOR_FUNCS and node.args:
            if self._taint_of_expr(node.args[0], taint) == ARRAY:
                return f"{fn_name}() writes into a cache tensor"
        for kw in node.keywords:
            if kw.arg == "out" and self._taint_of_expr(kw.value, taint) == ARRAY:
                return "out= targets a cache tensor"
        return None

    # -- scope walk --------------------------------------------------------
    def _seed_params(
        self, fn: ast.AST, taint: Dict[str, str]
    ) -> None:
        args = fn.args  # type: ignore[attr-defined]
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra)
        for param in params:
            kind = self._annotation_taint(param.annotation)
            if kind is not None:
                taint[param.arg] = kind

    def _assign_taint(
        self, targets: List[ast.AST], value: ast.AST, taint: Dict[str, str]
    ) -> None:
        kind = self._taint_of_expr(value, taint)
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                value, (ast.Tuple, ast.List)
            ) and len(target.elts) == len(value.elts):
                for t_elt, v_elt in zip(target.elts, value.elts):
                    self._assign_taint([t_elt], v_elt, taint)
                continue
            if isinstance(target, ast.Name):
                if kind is not None:
                    taint[target.id] = kind
                else:
                    taint.pop(target.id, None)

    def _scope(
        self,
        body: List[ast.stmt],
        taint: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            self._statement(stmt, taint, findings)

    def _statement(
        self, stmt: ast.stmt, taint: Dict[str, str], findings: List[Finding]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = dict(taint)
            self._seed_params(stmt, inner)
            self._scope(stmt.body, inner, findings)
            return
        if isinstance(stmt, ast.ClassDef):
            self._scope(stmt.body, dict(taint), findings)
            return
        # calls can violate anywhere inside the statement's expressions
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                why = self._call_violation(node, taint)
                if why:
                    findings.append(self.finding(self._module, node, why))
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                why = self._store_violation(target, taint, augmented=False)
                if why:
                    findings.append(self.finding(self._module, stmt, why))
            self._assign_taint(stmt.targets, stmt.value, taint)
        elif isinstance(stmt, ast.AnnAssign):
            kind = self._annotation_taint(stmt.annotation)
            if isinstance(stmt.target, ast.Name) and kind is not None:
                taint[stmt.target.id] = kind
            elif stmt.value is not None:
                why = self._store_violation(stmt.target, taint, augmented=False)
                if why:
                    findings.append(self.finding(self._module, stmt, why))
                self._assign_taint([stmt.target], stmt.value, taint)
        elif isinstance(stmt, ast.AugAssign):
            why = self._store_violation(stmt.target, taint, augmented=True)
            if why:
                findings.append(self.finding(self._module, stmt, why))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_kind = self._taint_of_expr(stmt.iter, taint)
            if iter_kind in (CONTAINER, PREFIX) or (
                isinstance(stmt.iter, (ast.Name, ast.Attribute))
                and self._is_cache_root(stmt.iter, taint)
            ):
                # iterating a cache container yields per-layer dicts that
                # still hold the shared tensors
                if isinstance(stmt.target, ast.Name):
                    taint[stmt.target.id] = CONTAINER
            self._scope(stmt.body, taint, findings)
            self._scope(stmt.orelse, taint, findings)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._scope(stmt.body, taint, findings)
            self._scope(stmt.orelse, taint, findings)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            self._scope(stmt.body, taint, findings)
        elif isinstance(stmt, ast.Try):
            self._scope(stmt.body, taint, findings)
            for handler in stmt.handlers:
                self._scope(handler.body, taint, findings)
            self._scope(stmt.orelse, taint, findings)
            self._scope(stmt.finalbody, taint, findings)
