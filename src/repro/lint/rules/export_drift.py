"""R5 export-drift: ``__all__`` must match what the module actually offers.

A stale ``__all__`` breaks ``from repro.X import *`` at a distance and —
worse — silently narrows the public API a downstream pins against.  For
every module that declares a literal ``__all__`` this rule checks both
directions:

* every name listed in ``__all__`` is defined or imported in the module;
* every public (non-underscore) top-level ``def``/``class`` appears in
  ``__all__``.

Modules with a dynamic ``__all__`` (computed, starred imports) are
skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import Finding, ParsedModule, Rule, register


def _literal_all(
    tree: ast.Module,
) -> Optional[List[Tuple[str, ast.AST]]]:
    """(name, node) pairs from literal ``__all__`` assignments, else None."""
    entries: List[Tuple[str, ast.AST]] = []
    found = False
    for stmt in tree.body:
        values: List[ast.AST] = []
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            values.append(stmt.value)
        elif (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            values.append(stmt.value)
        for value in values:
            found = True
            if not isinstance(value, (ast.List, ast.Tuple)):
                return None  # dynamic __all__
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    entries.append((elt.value, elt))
                else:
                    return None
    return entries if found else None


def _defined_names(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Top-level bindings (defs, classes, assignments, imports).

    The bool is True when a ``from x import *`` makes the set unknowable.
    """
    names: Set[str] = set()
    star = False
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    star = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # common conditional-import pattern: scan one level down
            bodies = [stmt.body, stmt.orelse]
            if isinstance(stmt, ast.Try):
                bodies.extend(handler.body for handler in stmt.handlers)
                bodies.append(stmt.finalbody)
            for body in bodies:
                for sub in body:
                    if isinstance(sub, ast.Import):
                        for alias in sub.names:
                            names.add(alias.asname or alias.name.split(".")[0])
                    elif isinstance(sub, ast.ImportFrom):
                        for alias in sub.names:
                            if alias.name != "*":
                                names.add(alias.asname or alias.name)
                    elif isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        names.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            for node in ast.walk(target):
                                if isinstance(node, ast.Name):
                                    names.add(node.id)
    return names, star


@register
class ExportDriftRule(Rule):
    code = "R5"
    name = "export-drift"
    description = (
        "__all__ out of sync with the module: phantom exports or public "
        "defs missing from __all__"
    )

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        entries = _literal_all(module.tree)
        if entries is None:
            return iter(())
        defined, star = _defined_names(module.tree)
        findings: List[Finding] = []
        listed = {name for name, _ in entries}
        seen: Set[str] = set()
        for name, node in entries:
            if name in seen:
                findings.append(
                    self.finding(
                        module, node, f"duplicate __all__ entry {name!r}"
                    )
                )
                continue
            seen.add(name)
            if not star and name not in defined:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"__all__ lists {name!r} but the module neither "
                        f"defines nor imports it",
                    )
                )
        for stmt in module.tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not stmt.name.startswith("_") and stmt.name not in listed:
                    kind = "class" if isinstance(stmt, ast.ClassDef) else "def"
                    findings.append(
                        self.finding(
                            module,
                            stmt,
                            f"public {kind} {stmt.name!r} missing from "
                            f"__all__ (export it or prefix with '_')",
                        )
                    )
        return iter(findings)
