"""R6 fault-injection-registry: faults fire only through the injector.

The differential recovery suite (``tests/test_faults.py``) proves
faulted-then-recovered runs bit-identical to clean runs, which is only
meaningful if *every* fault originates from a declarative
:class:`~repro.faults.FaultPlan` replayed by the
:class:`~repro.faults.FaultInjector` hooks.  An ad-hoc
``raise PreemptionError(...)`` inside the distributed layers would be a
fault no plan describes: it can't be replayed from a ``(plan, seed)``
key, and it bypasses the at-most-once event bookkeeping the recovery
manager relies on.

The rule therefore flags any ``raise`` of a fault-injection type inside
the distributed layers (``parallel``/``train`` path fragments).  The
``repro.faults`` package itself — the registry — is outside those
fragments and raises freely.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.core import Finding, ParsedModule, Rule, register

#: exception types that may only originate from the injector registry
FAULT_TYPE_NAMES = (
    "FaultInjectionError",
    "PreemptionError",
    "TransientCollectiveError",
    "FaultRecoveryExhausted",
)


def _raised_name(node: ast.Raise) -> Optional[str]:
    target = node.exc
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@register
class FaultRegistryRule(Rule):
    code = "R6"
    name = "fault-injection-registry"
    description = (
        "ad-hoc raise of a fault-injection type in the distributed layers "
        "(faults must fire through the FaultInjector hook registry so "
        "every scenario replays from its plan)"
    )
    default_options = {
        "path_fragments": ["/parallel/", "/train/"],
        "fault_type_names": list(FAULT_TYPE_NAMES),
    }

    def check(
        self, module: ParsedModule, options: Dict[str, object]
    ) -> Iterator[Finding]:
        fragments = list(options["path_fragments"])  # type: ignore[arg-type]
        norm = "/" + module.path.lstrip("/")
        if fragments and not any(frag in norm for frag in fragments):
            return iter(())
        names = set(options["fault_type_names"])  # type: ignore[arg-type]
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name in names:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raise {name} outside the fault-injector registry "
                        "(declare the fault in a FaultPlan and let the "
                        "installed hooks fire it)",
                    )
                )
        return iter(findings)
