"""Checkpoint I/O: model config + parameters in a single ``.npz`` + JSON pair."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.model.config import ModelConfig
from repro.model.transformer import TransformerLM

PathLike = Union[str, Path]


def save_model(model: TransformerLM, path: PathLike) -> None:
    """Save ``model`` under ``path`` (a directory)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path / "params.npz", **model.named_parameters())
    (path / "config.json").write_text(
        json.dumps(model.config.to_dict(), indent=2), encoding="utf-8"
    )


def load_model(path: PathLike) -> TransformerLM:
    """Load a model saved by :func:`save_model`."""
    path = Path(path)
    config = ModelConfig.from_dict(
        json.loads((path / "config.json").read_text(encoding="utf-8"))
    )
    model = TransformerLM(config)
    with np.load(path / "params.npz") as data:
        model.load_state({k: data[k] for k in data.files})
    return model
