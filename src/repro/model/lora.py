"""Low-Rank Adaptation (LoRA).

The original AstroLLaMA (Nguyen et al. 2023, the "Abstract" model) was
trained with PEFT/LoRA rather than full fine-tuning; we reproduce that
recipe so the model-zoo entry for ``astrollama-2-7b-abstract`` genuinely
trains adapters over a frozen base.

``LoRALinear`` wraps a :class:`~repro.model.layers.Linear` and computes
``y = x W + x A B * (alpha / r)``; only ``A`` and ``B`` receive gradients.
``merge_lora`` folds the adapters back into the base weights for inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.model.layers import Linear, Module
from repro.model.transformer import TransformerLM


@dataclass(frozen=True)
class LoRAConfig:
    """Adapter hyperparameters (defaults follow the common r=8 recipe)."""

    rank: int = 8
    alpha: float = 16.0
    # Which projection names inside attention get adapters; q/v is the
    # classic LoRA paper choice used by AstroLLaMA.
    target_projections: Sequence[str] = ("wq", "wv")

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise ValueError("LoRA rank must be positive")

    @property
    def scaling(self) -> float:
        return self.alpha / self.rank


class LoRALinear(Module):
    """A frozen Linear plus trainable low-rank residual."""

    def __init__(
        self, base: Linear, config: LoRAConfig, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.base = base
        self.config = config
        d_in, d_out = base.d_in, base.d_out
        self.d_in, self.d_out = d_in, d_out
        self.has_bias = base.has_bias
        # Kaiming-ish init for A, zeros for B so the adapter starts as identity.
        self.register(
            "lora_A",
            (rng.normal(0.0, 1.0, size=(d_in, config.rank)) / np.sqrt(d_in)).astype(
                np.float32
            ),
        )
        self.register("lora_B", np.zeros((config.rank, d_out), dtype=np.float32))
        # Keep a reference to the frozen base weight (not registered as a
        # parameter here, so optimizers driven by named_parameters() of the
        # adapted model only ever see A and B).
        self.frozen_weight = base.params["weight"]
        self.frozen_bias = base.params.get("bias")

    def forward(self, x: np.ndarray) -> np.ndarray:
        xa = x @ self.params["lora_A"]
        self._cache = (x, xa)
        y = x @ self.frozen_weight + xa @ self.params["lora_B"] * self.config.scaling
        if self.frozen_bias is not None:
            y = y + self.frozen_bias
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        x, xa = self._cache
        s = self.config.scaling
        x2 = x.reshape(-1, self.d_in)
        xa2 = xa.reshape(-1, self.config.rank)
        d2 = dout.reshape(-1, self.d_out)
        d_xa = d2 @ self.params["lora_B"].T * s
        self.grads["lora_B"] += xa2.T @ d2 * s
        self.grads["lora_A"] += x2.T @ d_xa.reshape(-1, self.config.rank)
        dx = dout @ self.frozen_weight.T
        dx = dx + d_xa.reshape(x.shape[:-1] + (self.config.rank,)) @ self.params[
            "lora_A"
        ].T
        self._cache = None
        return dx

    def merged_weight(self) -> np.ndarray:
        return (
            self.frozen_weight
            + self.params["lora_A"] @ self.params["lora_B"] * self.config.scaling
        )


def apply_lora(
    model: TransformerLM, config: LoRAConfig, seed: int = 0
) -> List[LoRALinear]:
    """Swap targeted attention projections for LoRA-wrapped versions.

    After this call, ``model.named_parameters()`` exposes **only** adapter
    parameters for the wrapped projections (the frozen weights disappear
    from the registry), so any optimizer built on the model trains adapters
    alone — exactly the PEFT behaviour.
    """
    rng = np.random.default_rng(seed)
    adapters: List[LoRALinear] = []
    for i, block in enumerate(model.blocks):
        attn = block.attn
        new_children = []
        for name, child in attn._children:
            if name in config.target_projections and isinstance(child, Linear):
                wrapped = LoRALinear(child, config, rng)
                setattr(attn, name, wrapped)
                new_children.append((name, wrapped))
                adapters.append(wrapped)
            else:
                new_children.append((name, child))
        attn._children = new_children
    if not adapters:
        raise ValueError(
            f"no projections matched {config.target_projections!r}"
        )
    return adapters


def merge_lora(model: TransformerLM) -> int:
    """Fold all LoRA adapters into their base weights; returns merge count.

    The wrapped projections are restored to plain :class:`Linear` modules
    whose weights include the adapter residual.
    """
    merged = 0
    for block in model.blocks:
        attn = block.attn
        new_children = []
        for name, child in attn._children:
            if isinstance(child, LoRALinear):
                base = child.base
                base.params["weight"][...] = child.merged_weight()
                setattr(attn, name, base)
                new_children.append((name, base))
                merged += 1
            else:
                new_children.append((name, child))
        attn._children = new_children
    return merged
