"""The decoder-only transformer language model."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.attention import MultiHeadAttention, RotaryEmbedding
from repro.model.config import ModelConfig
from repro.model.kv_cache import KVCache, PrefixCache
from repro.model.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    RMSNorm,
    log_softmax,
    softmax,
)
from repro.model.mlp import GeluMLP, SwiGLU


def _make_norm(config: ModelConfig) -> Module:
    if config.norm_type == "rmsnorm":
        return RMSNorm(config.d_model, config.norm_eps)
    return LayerNorm(config.d_model, config.norm_eps)


class TransformerBlock(Module):
    """Pre-norm residual block: ``x + attn(norm(x))``, ``x + mlp(norm(x))``."""

    def __init__(
        self, config: ModelConfig, rope: RotaryEmbedding, rng: np.random.Generator
    ) -> None:
        super().__init__()
        # GPT-2 trick: scale residual-writing projections by 1/sqrt(2L) so
        # the residual stream variance stays bounded with depth.
        out_std = config.init_std / np.sqrt(2.0 * config.n_layers)
        self.attn_norm = self.add_child("attn_norm", _make_norm(config))
        self.attn = self.add_child(
            "attn",
            MultiHeadAttention(
                config.d_model,
                config.n_heads,
                rope,
                rng,
                init_std=config.init_std,
                out_init_std=out_std,
            ),
        )
        self.mlp_norm = self.add_child("mlp_norm", _make_norm(config))
        mlp_cls = SwiGLU if config.activation == "swiglu" else GeluMLP
        self.mlp = self.add_child(
            "mlp",
            mlp_cls(
                config.d_model,
                config.d_ff,
                rng,
                init_std=config.init_std,
                out_init_std=out_std,
            ),
        )

    def forward(
        self,
        x: np.ndarray,
        start_pos: int = 0,
        cache: Optional[Dict[str, np.ndarray]] = None,
        extend_cache: bool = True,
    ) -> np.ndarray:
        x = x + self.attn.forward(
            self.attn_norm.forward(x), start_pos, cache, extend_cache
        )
        x = x + self.mlp.forward(self.mlp_norm.forward(x))
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        d_mlp = self.mlp_norm.backward(self.mlp.backward(dout))
        dout = dout + d_mlp
        d_attn = self.attn_norm.backward(self.attn.backward(dout))
        return dout + d_attn


class TransformerLM(Module):
    """LLaMA-style causal language model with manual backprop.

    Usage for training::

        logits = model.forward(tokens)
        loss, dlogits = model.cross_entropy(logits, targets, mask)
        model.backward(dlogits)      # accumulates into model grads

    Usage for incremental decoding::

        cache = model.new_cache()
        logits = model.forward(prompt, cache=cache)          # prefill
        logits = model.forward(next_tok, start_pos=t, cache=cache)  # step
    """

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)
        self.rope = RotaryEmbedding(
            config.head_dim, config.max_seq_len, config.rope_theta
        )
        self.embed = self.add_child(
            "embed", Embedding(config.vocab_size, config.d_model, rng, config.init_std)
        )
        self.blocks: List[TransformerBlock] = []
        for i in range(config.n_layers):
            block = TransformerBlock(config, self.rope, rng)
            self.add_child(f"block{i}", block)
            self.blocks.append(block)
        self.final_norm = self.add_child("final_norm", _make_norm(config))
        self.lm_head: Optional[Linear] = None
        if not config.tie_embeddings:
            self.lm_head = self.add_child(
                "lm_head",
                Linear(config.d_model, config.vocab_size, rng, init_std=config.init_std),
            )

    # ------------------------------------------------------------------
    def new_cache(self) -> KVCache:
        return [dict() for _ in self.blocks]

    def forward(
        self,
        tokens: np.ndarray,
        start_pos: int = 0,
        cache: Optional[KVCache] = None,
    ) -> np.ndarray:
        """Compute logits of shape ``(B, T, vocab)``.

        ``tokens`` is ``(B, T)`` int array.  When ``cache`` is given the
        forward is incremental (no training cache is kept).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        x = self.embed.forward(tokens)
        for i, block in enumerate(self.blocks):
            layer_cache = cache[i] if cache is not None else None
            x = block.forward(x, start_pos, layer_cache)
        x = self.final_norm.forward(x)
        if self.lm_head is not None:
            logits = self.lm_head.forward(x)
        else:
            logits = x @ self.embed.params["weight"].T
            self._tied_cache = x
        return logits

    def backward(self, dlogits: np.ndarray) -> None:
        """Backpropagate from logits gradient; accumulates parameter grads."""
        if self.lm_head is not None:
            dx = self.lm_head.backward(dlogits)
        else:
            W = self.embed.params["weight"]
            x = self._tied_cache
            self.embed.grads["weight"] += (
                dlogits.reshape(-1, dlogits.shape[-1]).T
                @ x.reshape(-1, x.shape[-1])
            )
            dx = dlogits @ W
        dx = self.final_norm.backward(dx)
        for block in reversed(self.blocks):
            dx = block.backward(dx)
        self.embed.backward(dx)

    # ------------------------------------------------------------------
    @staticmethod
    def cross_entropy(
        logits: np.ndarray,
        targets: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """Mean masked token cross-entropy and its gradient w.r.t. logits.

        ``mask`` (same shape as ``targets``) zeroes positions that should not
        contribute (padding, or prompt positions during SFT).  The returned
        gradient is already divided by the number of active positions, so a
        subsequent :meth:`backward` yields mean-loss gradients.
        """
        targets = np.asarray(targets)
        if targets.ndim == 1:
            targets = targets[None, :]
        B, T, V = logits.shape
        logp = log_softmax(logits, axis=-1)
        flat_logp = logp.reshape(-1, V)
        flat_t = targets.reshape(-1)
        picked = flat_logp[np.arange(flat_t.size), flat_t]
        if mask is None:
            mask_flat = np.ones_like(flat_t, dtype=np.float32)
        else:
            mask_flat = np.asarray(mask, dtype=np.float32).reshape(-1)
        denom = max(float(mask_flat.sum()), 1.0)
        loss = -float((picked * mask_flat).sum()) / denom

        probs = softmax(logits, axis=-1).reshape(-1, V)
        probs[np.arange(flat_t.size), flat_t] -= 1.0
        probs *= (mask_flat / denom)[:, None]
        return loss, probs.reshape(B, T, V)

    def loss_and_backward(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> float:
        """One fused training step helper: forward, CE loss, backward."""
        logits = self.forward(tokens)
        loss, dlogits = self.cross_entropy(logits, targets, mask)
        self.backward(dlogits)
        return loss

    def perplexity(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> float:
        logits = self.forward(tokens)
        loss, _ = self.cross_entropy(logits, targets, mask)
        return float(np.exp(min(loss, 30.0)))

    def next_token_logits(self, tokens: np.ndarray) -> np.ndarray:
        """Logits for the token following a single prompt (shape ``(vocab,)``)."""
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        logits = self.forward(tokens)
        return logits[0, -1]

    # ------------------------------------------------------------------
    # shared-prefix / batched evaluation path
    # ------------------------------------------------------------------
    def _hidden_states(
        self,
        tokens: np.ndarray,
        start_pos: int = 0,
        cache: Optional[KVCache] = None,
        extend_cache: bool = True,
    ) -> np.ndarray:
        """Pre-norm residual stream after all blocks, shape ``(B, T, d)``."""
        x = self.embed.forward(tokens)
        for i, block in enumerate(self.blocks):
            x = block.forward(
                x,
                start_pos,
                cache[i] if cache is not None else None,
                extend_cache,
            )
        return x

    def _project_logits(self, h: np.ndarray) -> np.ndarray:
        """Final norm + vocab projection for already-gathered positions."""
        h = self.final_norm.forward(h)
        if self.lm_head is not None:
            return self.lm_head.forward(h)
        return h @ self.embed.params["weight"].T

    def prefill(self, token_ids: Sequence[int]) -> PrefixCache:
        """Forward a prompt prefix once; the result is reusable forever.

        The returned :class:`PrefixCache` carries the per-layer K/V
        tensors plus the next-token logits at the prefix boundary, and
        can be forked (trimmed and/or broadcast over a batch) for any
        continuation that shares the prefix.  Only the final position is
        projected to the vocabulary (the interior logits are never
        needed), so prefilling is cheaper than :meth:`forward`.
        """
        ids = tuple(int(t) for t in token_ids)
        if not ids:
            return PrefixCache((), self.new_cache(), None)
        cache = self.new_cache()
        x = self._hidden_states(np.asarray([ids], dtype=np.int64), cache=cache)
        logits = self._project_logits(x[:, -1])
        return PrefixCache(ids, cache, logits[0])

    def next_token_logits_many(
        self,
        suffixes: Sequence[Sequence[int]],
        prefix: Optional[PrefixCache] = None,
        pad_id: int = 0,
    ) -> np.ndarray:
        """Next-token logits for a whole batch of prompts in one forward.

        Each row of the result is the logits following ``prefix.token_ids
        + suffixes[i]``.  Suffixes are right-padded with ``pad_id`` (pads
        sit *after* each row's last real token, so the causal mask keeps
        them out of every real query's receptive field); each row's final
        real hidden state is gathered *before* the vocab projection, so
        only ``(B, vocab)`` logits are ever materialized.  The prefix
        cache is used read-only (``extend_cache=False``), so no per-batch
        key/value copies are made and the same :class:`PrefixCache` can
        score any number of batches.  Returns ``(len(suffixes), vocab)``.
        """
        if not suffixes:
            return np.zeros((0, self.config.vocab_size), dtype=np.float32)
        lengths = np.asarray([len(s) for s in suffixes], dtype=np.int64)
        if (lengths == 0).any():
            if prefix is None or prefix.last_logits is None:
                raise ValueError("empty suffix requires a prefix with logits")
        B = len(suffixes)
        T = int(lengths.max(initial=1))
        start = prefix.length if prefix is not None else 0
        tokens = np.full((B, T), pad_id, dtype=np.int64)
        for i, suffix in enumerate(suffixes):
            tokens[i, : len(suffix)] = suffix
        cache = prefix.cache if prefix is not None and start else None
        x = self._hidden_states(tokens, start_pos=start, cache=cache, extend_cache=False)
        last = x[np.arange(B), np.maximum(lengths - 1, 0)]
        out = self._project_logits(last)
        if (lengths == 0).any():
            out[lengths == 0] = prefix.last_logits  # type: ignore[union-attr]
        return out
