"""Autoregressive generation with KV caching.

The full-instruct benchmarking method generates up to 512 tokens per
question; the KV cache makes that linear rather than quadratic in the
response length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.model.kv_cache import PrefixCache
from repro.model.layers import softmax
from repro.model.transformer import TransformerLM


@dataclass
class GenerationConfig:
    """Decoding controls.

    ``temperature == 0`` selects greedy argmax decoding (the paper sets
    temperature to 0.0 for the token-prediction benchmark and uses each
    model's default for full-instruct).
    """

    max_new_tokens: int = 64
    temperature: float = 0.0
    top_k: int = 0  # 0 -> no truncation
    top_p: float = 1.0  # 1.0 -> no nucleus truncation
    stop_token_ids: Sequence[int] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        if self.temperature < 0:
            raise ValueError("temperature must be >= 0")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0")
        if not 0.0 < self.top_p <= 1.0:
            raise ValueError("top_p must be in (0, 1]")


def _select_token(
    logits: np.ndarray, config: GenerationConfig, rng: np.random.Generator
) -> int:
    if config.temperature == 0.0:
        return int(np.argmax(logits))
    scaled = logits / config.temperature
    if config.top_k > 0 and config.top_k < scaled.shape[-1]:
        # Exactly top_k survivors even under tied logits: order by
        # (logit desc, index asc) so ties at the k-th value break
        # deterministically toward lower token ids.
        order = np.lexsort((np.arange(scaled.shape[-1]), -scaled))
        kept = order[: config.top_k]
        truncated = np.full_like(scaled, np.float32(-1e9))
        truncated[kept] = scaled[kept]
        scaled = truncated
    if config.top_p < 1.0:
        # Nucleus truncation with the same tie-breaking discipline as
        # top_k: candidates are ranked (logit desc, index asc) and the
        # smallest prefix whose probability mass reaches top_p survives,
        # so tied logits at the nucleus boundary keep lower token ids.
        order = np.lexsort((np.arange(scaled.shape[-1]), -scaled))
        ranked = softmax(scaled[order][None, :])[0].astype(np.float64)
        cumulative = np.cumsum(ranked)
        cutoff = int(np.searchsorted(cumulative, config.top_p, side="left")) + 1
        kept = order[: min(cutoff, order.size)]
        truncated = np.full_like(scaled, np.float32(-1e9))
        truncated[kept] = scaled[kept]
        scaled = truncated
    probs = softmax(scaled[None, :])[0].astype(np.float64)
    probs = probs / probs.sum()
    return int(rng.choice(probs.size, p=probs))


def generate(
    model: TransformerLM,
    prompt_ids: Sequence[int],
    config: Optional[GenerationConfig] = None,
    logit_hook: Optional[Callable[[np.ndarray], None]] = None,
    prefix: Optional[PrefixCache] = None,
) -> List[int]:
    """Generate a continuation of ``prompt_ids``; returns only new tokens.

    The prompt is truncated *from the left* if prompt + generation would
    exceed the model's context window (keeping the most recent context, as
    serving stacks do).

    ``prefix`` is an optional prefilled cache (see
    :meth:`TransformerLM.prefill`): the longest leading run of the prompt
    it covers is reused instead of re-prefilled, which turns a benchmark's
    shared chat scaffold into a one-time cost.
    """
    config = config or GenerationConfig()
    rng = np.random.default_rng(config.seed)
    max_ctx = model.config.max_seq_len
    budget = min(config.max_new_tokens, max(0, max_ctx - 1))
    prompt = list(prompt_ids)
    keep = max_ctx - budget
    if budget > 0 and len(prompt) > keep:
        prompt = prompt[-keep:]
    elif budget == 0 and len(prompt) > max_ctx:
        prompt = prompt[-max_ctx:]
    if not prompt:
        raise ValueError("prompt must contain at least one token")

    # At least the final prompt token is always forwarded so the step
    # logits come from a real forward against the (possibly forked) cache.
    reused = min(prefix.overlap(prompt), len(prompt) - 1) if prefix else 0
    if reused > 0:
        cache = prefix.fork(batch_size=1, length=reused)
        logits = model.forward(
            np.asarray(prompt[reused:], dtype=np.int64),
            start_pos=reused,
            cache=cache,
        )
    else:
        cache = model.new_cache()
        logits = model.forward(np.asarray(prompt, dtype=np.int64), cache=cache)
    out: List[int] = []
    stop = set(config.stop_token_ids)
    pos = len(prompt)
    step_logits = logits[0, -1]
    for _ in range(budget):
        if logit_hook is not None:
            logit_hook(step_logits)
        tok = _select_token(step_logits, config, rng)
        out.append(tok)
        if tok in stop:
            break
        if pos >= max_ctx:
            break
        logits = model.forward(
            np.asarray([[tok]], dtype=np.int64), start_pos=pos, cache=cache
        )
        step_logits = logits[0, -1]
        pos += 1
    return out


def greedy_decode(
    model: TransformerLM,
    prompt_ids: Sequence[int],
    max_new_tokens: int = 64,
    stop_token_ids: Sequence[int] = (),
) -> List[int]:
    """Convenience wrapper: temperature-0 generation."""
    return generate(
        model,
        prompt_ids,
        GenerationConfig(
            max_new_tokens=max_new_tokens,
            temperature=0.0,
            stop_token_ids=stop_token_ids,
        ),
    )
