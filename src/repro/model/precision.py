"""bfloat16 emulation.

The paper trains in bf16; NumPy has no native bfloat16, so we emulate the
format's effect by rounding float32 values to the nearest representable
bfloat16 (8-bit exponent, 7-bit mantissa) while keeping float32 storage.
The trainer applies this after each optimizer step when the precision
policy asks for it, reproducing bf16's characteristic quantization of
small parameter updates.
"""

from __future__ import annotations

import numpy as np


def bf16_round(x: np.ndarray) -> np.ndarray:
    """Round float32 array to bfloat16 precision (round-to-nearest-even)."""
    x = np.ascontiguousarray(x, dtype=np.float32)
    bits = x.view(np.uint32)
    # round-to-nearest-even on the truncated 16 mantissa bits
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32)


def bf16_round_(x: np.ndarray) -> None:
    """In-place variant of :func:`bf16_round`."""
    x[...] = bf16_round(x)


def bf16_ulp(x: float) -> float:
    """The spacing between adjacent bf16 values around ``x``."""
    if x == 0.0 or not np.isfinite(x):
        return 2.0**-133  # smallest subnormal step near zero
    exponent = int(np.floor(np.log2(abs(x))))
    return float(2.0 ** (exponent - 7))
