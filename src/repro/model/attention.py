"""Multi-head causal self-attention with rotary position embeddings.

The whole attention computation is batched as ``(B, H, T, hd)`` einsum-free
matmuls; the causal mask is an additive ``-inf`` upper triangle shared across
batch and heads (a view, never copied per example).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.model.layers import Linear, Module, softmax

NEG_INF = np.float32(-1e9)


class RotaryEmbedding:
    """Precomputed RoPE cos/sin tables.

    Uses the "two-halves" convention: for head dim ``d``, frequencies
    ``theta^{-2i/d}`` for ``i < d/2`` are applied to both halves, and the
    rotation is ``x*cos + rotate_half(x)*sin`` with
    ``rotate_half(x) = [-x2, x1]``.
    """

    def __init__(self, head_dim: int, max_seq_len: int, theta: float = 10000.0):
        if head_dim % 2 != 0:
            raise ValueError("RoPE head_dim must be even")
        self.head_dim = head_dim
        self.max_seq_len = max_seq_len
        inv_freq = theta ** (
            -np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
        )
        pos = np.arange(max_seq_len, dtype=np.float64)
        angles = np.outer(pos, inv_freq)  # (T, d/2)
        full = np.concatenate([angles, angles], axis=-1)  # (T, d)
        self.cos = np.cos(full).astype(np.float32)
        self.sin = np.sin(full).astype(np.float32)

    @staticmethod
    def _rotate_half(x: np.ndarray) -> np.ndarray:
        half = x.shape[-1] // 2
        return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)

    def apply(self, x: np.ndarray, start_pos: int = 0) -> np.ndarray:
        """Rotate ``x`` of shape (..., T, head_dim) at absolute positions
        ``start_pos .. start_pos+T``."""
        T = x.shape[-2]
        if start_pos + T > self.max_seq_len:
            raise ValueError(
                f"positions {start_pos}..{start_pos + T} exceed max_seq_len="
                f"{self.max_seq_len}"
            )
        cos = self.cos[start_pos : start_pos + T]
        sin = self.sin[start_pos : start_pos + T]
        return x * cos + self._rotate_half(x) * sin

    def apply_backward(self, dout: np.ndarray, start_pos: int = 0) -> np.ndarray:
        """Gradient of :meth:`apply` (the rotation is orthogonal: R^T = -R)."""
        T = dout.shape[-2]
        cos = self.cos[start_pos : start_pos + T]
        sin = self.sin[start_pos : start_pos + T]
        return dout * cos - self._rotate_half(dout) * sin


def causal_mask(T: int) -> np.ndarray:
    """Additive mask: 0 on/below the diagonal, -inf above."""
    mask = np.zeros((T, T), dtype=np.float32)
    iu = np.triu_indices(T, k=1)
    mask[iu] = NEG_INF
    return mask


class MultiHeadAttention(Module):
    """Causal multi-head self-attention (LLaMA layout: no biases).

    ``forward`` supports an optional KV cache for incremental decoding:
    pass ``cache`` (a dict that the layer owns/extends) and ``start_pos``.
    Backward is only supported for the full-sequence (no-cache) path, which
    is the only path training uses.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        rope: RotaryEmbedding,
        rng: np.random.Generator,
        init_std: float = 0.02,
        out_init_std: Optional[float] = None,
    ) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError("d_model must divide n_heads")
        self.d_model, self.n_heads = d_model, n_heads
        self.head_dim = d_model // n_heads
        self.rope = rope
        self.wq = self.add_child("wq", Linear(d_model, d_model, rng, init_std=init_std))
        self.wk = self.add_child("wk", Linear(d_model, d_model, rng, init_std=init_std))
        self.wv = self.add_child("wv", Linear(d_model, d_model, rng, init_std=init_std))
        self.wo = self.add_child(
            "wo", Linear(d_model, d_model, rng, init_std=out_init_std or init_std)
        )

    # -- shape helpers -------------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        B, T, _ = x.shape
        return x.reshape(B, T, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        B, H, T, hd = x.shape
        return x.transpose(0, 2, 1, 3).reshape(B, T, H * hd)

    # -- forward ---------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        start_pos: int = 0,
        cache: Optional[Dict[str, np.ndarray]] = None,
        extend_cache: bool = True,
    ) -> np.ndarray:
        """``extend_cache=False`` treats ``cache`` as read-only context:
        the new keys/values are attended against it but never folded back
        in, so one prefix cache can score many batches without copies."""
        B, T, _ = x.shape
        q = self._split_heads(self.wq.forward(x))  # (B,H,T,hd)
        k = self._split_heads(self.wk.forward(x))
        v = self._split_heads(self.wv.forward(x))

        q = self.rope.apply(q, start_pos)
        k = self.rope.apply(k, start_pos)

        kp = vp = None
        if cache is not None:
            kp, vp = cache.get("k"), cache.get("v")
            if extend_cache:
                if kp is not None:
                    k = np.concatenate([kp, k], axis=2)
                    v = np.concatenate([vp, v], axis=2)
                    kp = vp = None
                cache["k"], cache["v"] = k, v
        if kp is not None:
            if B > 1 and kp.shape[0] == 1:
                ctx = self._shared_prefix_attention(q, k, v, kp, vp, start_pos)
                return self.wo.forward(self._merge_heads(ctx))
            if kp.shape[0] != B:
                kp = np.broadcast_to(kp, (B,) + kp.shape[1:])
                vp = np.broadcast_to(vp, (B,) + vp.shape[1:])
            k = np.concatenate([kp, k], axis=2)
            v = np.concatenate([vp, v], axis=2)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (B,H,T,Tk)
        Tk = k.shape[2]
        if T > 1:
            # Query i (absolute position start_pos+i) may attend to keys
            # 0..start_pos+i.
            q_pos = start_pos + np.arange(T)[:, None]
            k_pos = np.arange(Tk)[None, :]
            scores = scores + np.where(k_pos > q_pos, NEG_INF, np.float32(0.0))
        probs = softmax(scores, axis=-1)
        ctx = probs @ v  # (B,H,T,hd)
        out = self.wo.forward(self._merge_heads(ctx))
        if cache is None:
            self._cache = (q, k, v, probs, scale, start_pos)
        return out

    def _shared_prefix_attention(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        kp: np.ndarray,
        vp: np.ndarray,
        start_pos: int,
    ) -> np.ndarray:
        """Two-block attention against a prefix shared by the whole batch.

        ``kp``/``vp`` have batch dim 1 (one prefix, ``B`` suffix rows).
        Prefix scores run as ``H`` large head-major gemms instead of
        ``B*H`` tiny per-row ones, the softmax normalization is fused
        across the two key blocks (flash-attention style), and the
        concatenated ``(B, H, Tp+T, hd)`` key/value tensors are never
        materialized.  Numerically this matches the naive path up to
        float32 summation order.
        """
        B, H, T, hd = q.shape
        Tp = kp.shape[2]
        scale = np.float32(1.0 / np.sqrt(hd))
        qh = (q * scale).transpose(1, 0, 2, 3).reshape(H, B * T, hd)
        sp = qh @ kp[0].transpose(0, 2, 1)  # (H, B*T, Tp)
        sn = (q @ k.transpose(0, 1, 3, 2)) * scale  # (B, H, T, T)
        if T > 1:
            # every prefix key precedes every query; only suffix-internal
            # positions need the causal mask
            pos = np.arange(T)
            sn += np.where(pos[None, :] > pos[:, None], NEG_INF, np.float32(0.0))
        m = np.maximum(
            sp.max(axis=-1), sn.max(axis=-1).transpose(1, 0, 2).reshape(H, B * T)
        )  # (H, B*T)
        np.exp(sp - m[:, :, None], out=sp)
        np.exp(sn - m.reshape(H, B, T).transpose(1, 0, 2)[..., None], out=sn)
        denom = sp.sum(axis=-1) + sn.sum(axis=-1).transpose(1, 0, 2).reshape(
            H, B * T
        )
        ctx = sp @ vp[0]  # (H, B*T, hd)
        ctx += (sn @ v).transpose(1, 0, 2, 3).reshape(H, B * T, hd)
        ctx /= denom[:, :, None]
        return ctx.reshape(H, B, T, hd).transpose(1, 0, 2, 3)

    # -- backward --------------------------------------------------------
    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a cached training forward")
        q, k, v, probs, scale, start_pos = self._cache
        d_ctx_merged = self.wo.backward(dout)  # (B,T,D)
        B, T, _ = d_ctx_merged.shape
        d_ctx = d_ctx_merged.reshape(B, T, self.n_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )  # (B,H,T,hd)

        d_probs = d_ctx @ v.transpose(0, 1, 3, 2)  # (B,H,T,Tk)
        d_v = probs.transpose(0, 1, 3, 2) @ d_ctx  # (B,H,Tk,hd)

        # softmax backward: dS = P * (dP - sum(dP * P))
        inner = np.sum(d_probs * probs, axis=-1, keepdims=True)
        d_scores = probs * (d_probs - inner)

        d_q = (d_scores @ k) * scale
        d_k = (d_scores.transpose(0, 1, 3, 2) @ q) * scale

        d_q = self.rope.apply_backward(d_q, start_pos)
        d_k = self.rope.apply_backward(d_k, start_pos)

        dx = self.wq.backward(self._merge_heads(d_q))
        dx = dx + self.wk.backward(self._merge_heads(d_k))
        dx = dx + self.wv.backward(self._merge_heads(d_v))
        self._cache = None
        return dx
