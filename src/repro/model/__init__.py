"""Decoder-only transformer language model in pure NumPy.

This package is the reproduction's stand-in for the LLaMA family: a
from-scratch, fully differentiable (manual backprop) implementation of the
LLaMA architecture — RoPE causal attention, RMSNorm, SwiGLU — plus the
training-adjacent machinery the paper relies on (LoRA adapters for the
original AstroLLaMA recipe, checkpointing, bf16 emulation, KV-cache
generation for the full-instruct evaluation method).

All hot paths are vectorized over ``(batch, head, position)`` per the HPC
guide idioms; there are no per-token Python loops in forward or backward.
"""

from repro.model.config import ModelConfig
from repro.model.layers import Embedding, LayerNorm, Linear, Module, RMSNorm
from repro.model.attention import MultiHeadAttention, RotaryEmbedding
from repro.model.kv_cache import (
    KVCache,
    PrefixCache,
    PrefixCacheStore,
    cache_length,
    common_prefix_len,
    debug_cache_guard_enabled,
    fork_cache,
    shared_prefix,
)
from repro.model.mlp import GeluMLP, SwiGLU
from repro.model.transformer import TransformerBlock, TransformerLM
from repro.model.sampling import GenerationConfig, generate, greedy_decode
from repro.model.checkpoint import load_model, save_model
from repro.model.lora import LoRAConfig, LoRALinear, apply_lora, merge_lora
from repro.model.precision import bf16_round

__all__ = [
    "ModelConfig",
    "Module",
    "Linear",
    "Embedding",
    "RMSNorm",
    "LayerNorm",
    "RotaryEmbedding",
    "MultiHeadAttention",
    "SwiGLU",
    "GeluMLP",
    "TransformerBlock",
    "TransformerLM",
    "KVCache",
    "PrefixCache",
    "PrefixCacheStore",
    "cache_length",
    "common_prefix_len",
    "debug_cache_guard_enabled",
    "fork_cache",
    "shared_prefix",
    "GenerationConfig",
    "generate",
    "greedy_decode",
    "save_model",
    "load_model",
    "LoRAConfig",
    "LoRALinear",
    "apply_lora",
    "merge_lora",
    "bf16_round",
]
