"""Model architecture configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict


@dataclass
class ModelConfig:
    """Hyperparameters of a decoder-only transformer.

    Defaults follow the LLaMA recipe (RMSNorm + SwiGLU + RoPE, tied
    embeddings off).  The micro zoo instantiates this at toy scale; the
    *relative* capacity ladder across zoo members is what carries the
    paper's 7B/8B/70B structure.
    """

    vocab_size: int
    d_model: int = 64
    n_layers: int = 2
    n_heads: int = 4
    d_ff: int = 0  # 0 -> derived as the LLaMA 8/3 rule rounded to a multiple of 8
    max_seq_len: int = 256
    rope_theta: float = 10000.0
    norm_eps: float = 1e-5
    norm_type: str = "rmsnorm"  # "rmsnorm" | "layernorm"
    activation: str = "swiglu"  # "swiglu" | "gelu"
    tie_embeddings: bool = False
    init_std: float = 0.02
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} not divisible by n_heads={self.n_heads}"
            )
        if (self.d_model // self.n_heads) % 2 != 0:
            raise ValueError("head dimension must be even for RoPE")
        if self.d_ff <= 0:
            raw = int(self.d_model * 8 / 3)
            self.d_ff = max(8, ((raw + 7) // 8) * 8)
        if self.norm_type not in ("rmsnorm", "layernorm"):
            raise ValueError(f"unknown norm_type {self.norm_type!r}")
        if self.activation not in ("swiglu", "gelu"):
            raise ValueError(f"unknown activation {self.activation!r}")
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    def num_parameters(self) -> int:
        """Exact parameter count of a model built from this config."""
        d, v, f, L = self.d_model, self.vocab_size, self.d_ff, self.n_layers
        embed = v * d
        lm_head = 0 if self.tie_embeddings else d * v
        attn = 4 * d * d
        if self.activation == "swiglu":
            mlp = 3 * d * f
        else:
            mlp = 2 * d * f + f + d  # two biased linears
        norms = 2 * d * L + d
        return embed + lm_head + L * (attn + mlp) + norms

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModelConfig":
        return cls(**data)


def scaled_config(
    vocab_size: int,
    scale: str,
    max_seq_len: int = 256,
    **overrides: Any,
) -> ModelConfig:
    """Named capacity tiers for the micro zoo.

    ``tiny`` mirrors the 7B tier, ``small`` the 8B tier (slightly larger and
    a better architecture generation), ``large`` the 70B tier.  Absolute
    sizes are toy; the ladder of relative capacities is what matters for the
    forgetting/retention phenomena under study.
    """
    tiers: Dict[str, Dict[str, int]] = {
        "tiny": {"d_model": 64, "n_layers": 3, "n_heads": 4},
        "small": {"d_model": 96, "n_layers": 3, "n_heads": 4},
        "medium": {"d_model": 112, "n_layers": 4, "n_heads": 4},
        "large": {"d_model": 128, "n_layers": 4, "n_heads": 4},
    }
    if scale not in tiers:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(tiers)}")
    params: Dict[str, Any] = dict(tiers[scale])
    params.update(overrides)
    return ModelConfig(vocab_size=vocab_size, max_seq_len=max_seq_len, **params)
