"""Differentiable primitive layers (manual forward/backward).

Every layer follows the same contract:

* ``forward(x)`` returns the output and stashes whatever the backward pass
  needs on ``self._cache``;
* ``backward(dout)`` consumes the cache, **accumulates** parameter gradients
  into ``self.grads`` and returns the gradient w.r.t. the input;
* ``named_parameters()`` / ``named_gradients()`` expose flat name->array
  dicts (arrays are referenced, not copied, so optimizers update in place).

Gradients accumulate across backward calls until :meth:`Module.zero_grad`;
this is what makes gradient accumulation in the trainer trivial.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Module:
    """Minimal module base: parameter/gradient registry plus child recursion."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self._children: List[Tuple[str, "Module"]] = []
        self._cache: Optional[tuple] = None

    # -- registry ----------------------------------------------------------
    def register(self, name: str, value: np.ndarray) -> np.ndarray:
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)
        return value

    def add_child(self, name: str, child: "Module") -> "Module":
        self._children.append((name, child))
        return child

    def modules(self) -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` for self and all descendants."""
        yield "", self
        for name, child in self._children:
            for sub_name, sub in child.modules():
                qual = f"{name}.{sub_name}" if sub_name else name
                yield qual, sub

    def named_parameters(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for prefix, module in self.modules():
            for name, arr in module.params.items():
                key = f"{prefix}.{name}" if prefix else name
                out[key] = arr
        return out

    def named_gradients(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for prefix, module in self.modules():
            for name, arr in module.grads.items():
                key = f"{prefix}.{name}" if prefix else name
                out[key] = arr
        return out

    def zero_grad(self) -> None:
        for _, module in self.modules():
            for g in module.grads.values():
                g.fill(0.0)

    def num_parameters(self) -> int:
        return sum(int(p.size) for p in self.named_parameters().values())

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Copy values from ``state`` into this module's parameters in place."""
        own = self.named_parameters()
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}"
            )
        for key, arr in own.items():
            src = state[key]
            if src.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {src.shape} vs {arr.shape}"
                )
            arr[...] = src

    def state_copy(self) -> Dict[str, np.ndarray]:
        """Deep copy of all parameters (for checkpoints / EMA / diffing)."""
        return {k: v.copy() for k, v in self.named_parameters().items()}


class Linear(Module):
    """Affine map ``y = x @ W (+ b)`` over the last axis.

    ``x`` may have any number of leading batch axes; gradients are reduced
    over all of them.
    """

    def __init__(
        self,
        d_in: int,
        d_out: int,
        rng: np.random.Generator,
        bias: bool = False,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        self.d_in, self.d_out = d_in, d_out
        self.register(
            "weight", rng.normal(0.0, init_std, size=(d_in, d_out)).astype(np.float32)
        )
        self.has_bias = bias
        if bias:
            self.register("bias", np.zeros(d_out, dtype=np.float32))

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = (x,)
        y = x @ self.params["weight"]
        if self.has_bias:
            y = y + self.params["bias"]
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        (x,) = self._cache
        x2 = x.reshape(-1, self.d_in)
        d2 = dout.reshape(-1, self.d_out)
        self.grads["weight"] += x2.T @ d2
        if self.has_bias:
            self.grads["bias"] += d2.sum(axis=0)
        return dout @ self.params["weight"].T


class Embedding(Module):
    """Token embedding lookup ``y = W[ids]``."""

    def __init__(
        self,
        vocab_size: int,
        d_model: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        self.vocab_size, self.d_model = vocab_size, d_model
        self.register(
            "weight",
            rng.normal(0.0, init_std, size=(vocab_size, d_model)).astype(np.float32),
        )

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.max(initial=0) >= self.vocab_size or ids.min(initial=0) < 0:
            raise IndexError("token id out of range")
        self._cache = (ids,)
        return self.params["weight"][ids]

    def backward(self, dout: np.ndarray) -> None:
        (ids,) = self._cache
        np.add.at(
            self.grads["weight"], ids.reshape(-1), dout.reshape(-1, self.d_model)
        )
        return None  # ids are not differentiable


class RMSNorm(Module):
    """LLaMA-style RMS normalization: ``y = g * x / rms(x)``."""

    def __init__(self, d_model: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.register("gain", np.ones(d_model, dtype=np.float32))

    def forward(self, x: np.ndarray) -> np.ndarray:
        inv_rms = 1.0 / np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + self.eps)
        self._cache = (x, inv_rms)
        return x * inv_rms * self.params["gain"]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        x, inv_rms = self._cache
        g = self.params["gain"]
        d = x.shape[-1]
        self.grads["gain"] += np.sum(dout * x * inv_rms, axis=tuple(range(x.ndim - 1)))
        dg = dout * g
        # d/dx [x_i * r] with r = (mean(x^2)+eps)^(-1/2):
        #   dx = r * dg - x * r^3 / d * sum(dg * x)
        inner = np.sum(dg * x, axis=-1, keepdims=True)
        return inv_rms * dg - x * (inv_rms**3) * inner / d


class LayerNorm(Module):
    """Classic layer normalization with gain and bias."""

    def __init__(self, d_model: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.register("gain", np.ones(d_model, dtype=np.float32))
        self.register("bias", np.zeros(d_model, dtype=np.float32))

    def forward(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        xc = x - mu
        var = np.mean(xc * xc, axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = xc * inv_std
        self._cache = (xhat, inv_std)
        return xhat * self.params["gain"] + self.params["bias"]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        xhat, inv_std = self._cache
        g = self.params["gain"]
        d = xhat.shape[-1]
        reduce_axes = tuple(range(xhat.ndim - 1))
        self.grads["gain"] += np.sum(dout * xhat, axis=reduce_axes)
        self.grads["bias"] += np.sum(dout, axis=reduce_axes)
        dxhat = dout * g
        mean_dxhat = dxhat.mean(axis=-1, keepdims=True)
        mean_dxhat_xhat = np.mean(dxhat * xhat, axis=-1, keepdims=True)
        return inv_std * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
