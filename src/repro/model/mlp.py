"""Feed-forward blocks: SwiGLU (LLaMA) and GELU (GPT-2 style, for ablations)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.layers import Linear, Module


def silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def silu_grad(x: np.ndarray) -> np.ndarray:
    s = 1.0 / (1.0 + np.exp(-x))
    return s * (1.0 + x * (1.0 - s))


_GELU_C = np.float32(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximate GELU."""
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    u = _GELU_C * (x + 0.044715 * x**3)
    t = np.tanh(u)
    du = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du


class SwiGLU(Module):
    """LLaMA MLP: ``w2( silu(w1 x) * w3 x )``, no biases."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
        out_init_std: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.w1 = self.add_child("w1", Linear(d_model, d_ff, rng, init_std=init_std))
        self.w3 = self.add_child("w3", Linear(d_model, d_ff, rng, init_std=init_std))
        self.w2 = self.add_child(
            "w2", Linear(d_ff, d_model, rng, init_std=out_init_std or init_std)
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        a = self.w1.forward(x)
        b = self.w3.forward(x)
        gated = silu(a) * b
        self._cache = (a, b)
        return self.w2.forward(gated)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        a, b = self._cache
        d_gated = self.w2.backward(dout)
        d_a = d_gated * b * silu_grad(a)
        d_b = d_gated * silu(a)
        dx = self.w1.backward(d_a) + self.w3.backward(d_b)
        self._cache = None
        return dx


class GeluMLP(Module):
    """GPT-2 style MLP: ``w2 gelu(w1 x + b1) + b2``."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        rng: np.random.Generator,
        init_std: float = 0.02,
        out_init_std: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.w1 = self.add_child(
            "w1", Linear(d_model, d_ff, rng, bias=True, init_std=init_std)
        )
        self.w2 = self.add_child(
            "w2",
            Linear(d_ff, d_model, rng, bias=True, init_std=out_init_std or init_std),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.w1.forward(x)
        self._cache = (h,)
        return self.w2.forward(gelu(h))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        (h,) = self._cache
        dh = self.w2.backward(dout) * gelu_grad(h)
        self._cache = None
        return self.w1.backward(dh)
