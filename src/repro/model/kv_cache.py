"""KV-cache reuse primitives for shared-prompt evaluation.

Benchmarking 4,425 MCQs against one model re-encodes the same two-shot
prompt scaffold thousands of times.  This module makes the scaffold a
first-class, reusable artifact:

* :func:`fork_cache` — cheap (zero-copy) per-call views of a prefilled
  cache, optionally trimmed to a shorter prefix and broadcast over a
  batch dimension;
* :class:`PrefixCache` — a prefilled prompt prefix: the token ids, the
  per-layer K/V tensors, and the next-token logits at the prefix
  boundary;
* :class:`PrefixCacheStore` — a small LRU keyed on token ids that finds
  the longest reusable prefix for an incoming prompt.

Safety relies on one invariant of :class:`~repro.model.attention.
MultiHeadAttention`: an incremental forward *rebinds* ``cache["k"]`` /
``cache["v"]`` to freshly concatenated arrays and never writes into the
existing ones.  Forked caches may therefore share (even read-only,
broadcast) views of the parent's tensors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Per-layer attention cache: ``cache[layer]["k"|"v"]`` is ``(B, H, T, hd)``.
KVCache = List[Dict[str, np.ndarray]]


def debug_cache_guard_enabled() -> bool:
    """Whether the ``REPRO_DEBUG_CACHE`` runtime guard is on.

    When enabled, :func:`fork_cache` hands out *non-writeable* views, so
    any code that violates the rebind-not-mutate contract (the invariant
    ``repro.lint`` rule R1 checks statically) raises ``ValueError:
    assignment destination is read-only`` at the offending write instead
    of silently corrupting every fork sharing the storage.
    """
    return os.environ.get("REPRO_DEBUG_CACHE", "").lower() not in (
        "",
        "0",
        "false",
        "off",
    )


def cache_length(cache: KVCache) -> int:
    """Number of cached key positions (0 for a fresh cache)."""
    for layer in cache:
        if "k" in layer:
            return int(layer["k"].shape[2])
    return 0


def fork_cache(
    cache: KVCache, batch_size: int = 1, length: Optional[int] = None
) -> KVCache:
    """A child cache sharing the parent's K/V storage.

    The child may be extended by further incremental forwards without
    touching the parent (attention rebinds, never mutates).  ``length``
    trims the fork to the first ``length`` positions; ``batch_size``
    broadcasts a single-row cache across a batch without copying.

    With ``REPRO_DEBUG_CACHE`` set (see :func:`debug_cache_guard_enabled`)
    the returned views are marked non-writeable, turning contract
    violations into immediate ``ValueError``\\ s.
    """
    freeze = debug_cache_guard_enabled()
    forked: KVCache = []
    for layer in cache:
        if "k" not in layer:
            forked.append({})
            continue
        k, v = layer["k"], layer["v"]
        if length is not None:
            k = k[:, :, :length, :]
            v = v[:, :, :length, :]
        if batch_size != k.shape[0]:
            if k.shape[0] != 1:
                raise ValueError(
                    f"cannot broadcast cache batch {k.shape[0]} -> {batch_size}"
                )
            k = np.broadcast_to(k, (batch_size,) + k.shape[1:])
            v = np.broadcast_to(v, (batch_size,) + v.shape[1:])
        if freeze:
            # fresh views so the parent's own arrays keep their flags
            k, v = k.view(), v.view()
            k.flags.writeable = False
            v.flags.writeable = False
        forked.append({"k": k, "v": v})
    return forked


def common_prefix_len(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest shared leading run of ``a`` and ``b``."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def shared_prefix(sequences: Sequence[Sequence[int]]) -> List[int]:
    """Longest token prefix shared by *all* sequences (empty list if none)."""
    if not sequences:
        return []
    shortest = min(sequences, key=len)
    n = len(shortest)
    for seq in sequences:
        n = common_prefix_len(shortest[:n], seq)
        if n == 0:
            return []
    return list(shortest[:n])


@dataclass
class PrefixCache:
    """A prefilled prompt prefix, reusable across many continuations.

    ``last_logits`` are the next-token logits *after* the final prefix
    token — callers whose whole prompt hits the cache need no forward at
    all.
    """

    token_ids: Tuple[int, ...]
    cache: KVCache
    last_logits: Optional[np.ndarray] = None

    @property
    def length(self) -> int:
        return len(self.token_ids)

    def overlap(self, token_ids: Sequence[int]) -> int:
        """How many leading tokens of ``token_ids`` this prefix covers."""
        return common_prefix_len(self.token_ids, token_ids)

    def fork(self, batch_size: int = 1, length: Optional[int] = None) -> KVCache:
        if length is not None and length > self.length:
            raise ValueError(f"length {length} exceeds prefix length {self.length}")
        return fork_cache(self.cache, batch_size=batch_size, length=length)


class PrefixCacheStore:
    """A tiny LRU of :class:`PrefixCache` entries keyed by token ids.

    ``match`` returns the entry with the longest overlap against an
    incoming prompt — the common case is one scaffold entry serving an
    entire benchmark run.
    """

    def __init__(self, max_entries: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: List[PrefixCache] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def match(
        self, token_ids: Sequence[int], min_overlap: int = 1
    ) -> Optional[Tuple[PrefixCache, int]]:
        """Best ``(entry, overlap)`` for ``token_ids``, or None."""
        best: Optional[Tuple[PrefixCache, int]] = None
        for entry in self._entries:
            n = entry.overlap(token_ids)
            if n >= min_overlap and (best is None or n > best[1]):
                best = (entry, n)
        if best is None:
            self.misses += 1
            return None
        self.hits += 1
        # refresh LRU position
        self._entries.remove(best[0])
        self._entries.append(best[0])
        return best

    def put(self, prefix: PrefixCache) -> PrefixCache:
        """Store ``prefix``, evicting the least recent entry if full.

        An identical already-stored prefix (same token ids) is *deduped*:
        the existing entry is refreshed to most-recent and returned, so a
        re-put of a hot scaffold never evicts a distinct entry.
        """
        for entry in self._entries:
            if entry.token_ids == prefix.token_ids:
                self._entries.remove(entry)
                self._entries.append(entry)
                return entry
        self._entries.append(prefix)
        if len(self._entries) > self.max_entries:
            self._entries.pop(0)
            self.evictions += 1
        return prefix

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (plain dict, e.g. for ``serve.metrics``)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
