"""The next-token benchmarking method (Sections V-B / V-C).

Two-shot prompt ending in ``Answer :``; the model's next-token logits are
restricted to the four answer letters and the argmax is the prediction.
Temperature is fixed at 0 (argmax) per the paper.

**Dynamic answer-token discovery**: tokenizers differ in whether the letter
after ``Answer:`` is a bare token (``"A"``) or a space-prefixed one
(``" A"``).  Following the paper, the correct representation is discovered
by "examining the top ten tokens in the model's output" on probe prompts:
whichever convention's candidate ids dominate the top-10 is adopted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.corpus.knowledge import ANSWER_LETTERS
from repro.eval.prompts import (
    format_next_token_prompt,
    format_next_token_scaffold,
    format_next_token_suffix,
)
from repro.mcq.generation import MCQuestion
from repro.model.kv_cache import PrefixCache, shared_prefix


class CausalLM(Protocol):
    def next_token_logits(self, tokens: np.ndarray) -> np.ndarray: ...


class BatchedCausalLM(CausalLM, Protocol):
    """A model that can also score many shared-prefix prompts at once."""

    def prefill(self, token_ids: Sequence[int]) -> PrefixCache: ...

    def next_token_logits_many(
        self,
        suffixes: Sequence[Sequence[int]],
        prefix: Optional[PrefixCache] = ...,
        pad_id: int = ...,
    ) -> np.ndarray: ...


class TokenizerLike(Protocol):
    def encode(self, text: str, add_bos: bool = ..., add_eos: bool = ...) -> List[int]: ...
    def answer_token_candidates(self, letter: str) -> Dict[str, int]: ...


@dataclass(frozen=True)
class AnswerTokenMap:
    """Resolved token id for each answer letter."""

    ids: Dict[str, int]  # letter -> token id
    convention: str  # "bare" | "space-prefixed"

    def letter_ids(self) -> List[int]:
        return [self.ids[letter] for letter in ANSWER_LETTERS]


def _candidates_by_convention(
    tokenizer: TokenizerLike,
) -> Dict[str, Dict[str, int]]:
    """Candidate letter->id maps per convention, complete conventions only."""
    conventions: Dict[str, Dict[str, int]] = {}
    for letter in ANSWER_LETTERS:
        for name, token_id in tokenizer.answer_token_candidates(letter).items():
            conventions.setdefault(name, {})[letter] = token_id
    return {
        name: mapping
        for name, mapping in conventions.items()
        if len(mapping) == len(ANSWER_LETTERS)
    }


def discover_answer_tokens(
    model: CausalLM,
    tokenizer: TokenizerLike,
    probe_questions: Sequence[MCQuestion],
    few_shot: Sequence[MCQuestion] = (),
    top_k: int = 10,
    prefix_ids: Sequence[int] = (),
) -> AnswerTokenMap:
    """Pick the letter-token convention the model actually uses.

    For each probe question the top-``top_k`` next-token ids are collected;
    each complete convention is scored by how often its candidate ids show
    up.  Ties (or no hits at all) fall back to the convention supported by
    the vocabulary, preferring bare tokens.
    """
    conventions = _candidates_by_convention(tokenizer)
    if not conventions:
        raise ValueError("tokenizer exposes no complete answer-letter convention")
    if len(conventions) == 1:
        name, mapping = next(iter(conventions.items()))
        return AnswerTokenMap(mapping, name)

    scores = {name: 0 for name in conventions}
    for question in probe_questions:
        # Probes are drawn from the few-shot pool; a probe must not appear
        # as a solved example inside its own prompt (answer leakage).
        shots = [s for s in few_shot if s.question_id != question.question_id]
        prompt = format_next_token_prompt(question, shots)
        tokens = np.asarray(
            list(prefix_ids) + tokenizer.encode(prompt), dtype=np.int64
        )
        logits = model.next_token_logits(tokens)
        k = min(top_k, logits.shape[-1])
        top_ids = set(np.argpartition(logits, -k)[-k:].tolist())
        for name, mapping in conventions.items():
            scores[name] += sum(1 for tid in mapping.values() if tid in top_ids)
    best = max(scores.items(), key=lambda kv: (kv[1], kv[0] == "bare"))
    return AnswerTokenMap(conventions[best[0]], best[0])


class TokenPredictionEvaluator:
    """Evaluate one model on one benchmark with the next-token method."""

    def __init__(
        self,
        model: CausalLM,
        tokenizer: TokenizerLike,
        few_shot: Sequence[MCQuestion],
        answer_map: Optional[AnswerTokenMap] = None,
        n_probe: int = 4,
        prefix_ids: Sequence[int] = (),
        batch_size: int = 32,
    ) -> None:
        """``prefix_ids`` lets callers prepend the document-boundary token
        the model actually saw during packed training (micro models never
        see BOS, only EOS separators).  ``batch_size`` bounds how many
        question suffixes :meth:`predict_many` scores per forward."""
        self.model = model
        self.tokenizer = tokenizer
        self.few_shot = list(few_shot)
        self.prefix_ids = list(prefix_ids)
        self.batch_size = max(1, batch_size)
        self._prefix_cache: Optional[PrefixCache] = None
        if answer_map is None:
            probes = self.few_shot or []
            answer_map = discover_answer_tokens(
                model,
                tokenizer,
                probes[: max(n_probe, 1)],
                self.few_shot,
                prefix_ids=self.prefix_ids,
            )
        self.answer_map = answer_map

    def _prompt_ids(self, question: MCQuestion) -> List[int]:
        prompt = format_next_token_prompt(question, self.few_shot)
        return self.prefix_ids + self.tokenizer.encode(prompt)

    def predict(self, question: MCQuestion) -> int:
        """Return the predicted option index (0..3) for one question."""
        tokens = np.asarray(self._prompt_ids(question), dtype=np.int64)
        logits = self.model.next_token_logits(tokens)
        letter_logits = [logits[tid] for tid in self.answer_map.letter_ids()]
        return int(np.argmax(letter_logits))

    # ------------------------------------------------------------------
    def _split_prompts(
        self, questions: Sequence[MCQuestion]
    ) -> tuple:
        """``(shared_ids, per_question_suffix_ids)`` for the batched path.

        Fast path: encode the question-independent scaffold once and only
        each question's tail.  The split is *verified* against the
        sequential path's full encoding on the first question — if the
        tokenizer merges across the boundary (so the concatenation is not
        bit-identical), every prompt is fully encoded and the exact
        longest common token prefix is used instead.
        """
        scaffold_ids = self.prefix_ids + self.tokenizer.encode(
            format_next_token_scaffold(self.few_shot)
        )
        suffixes = [
            self.tokenizer.encode(format_next_token_suffix(q)) for q in questions
        ]
        if scaffold_ids + suffixes[0] == self._prompt_ids(questions[0]):
            return scaffold_ids, suffixes
        encoded = [self._prompt_ids(q) for q in questions]
        common = shared_prefix(encoded)
        return common, [ids[len(common) :] for ids in encoded]

    def _prefix_cache_for(self, shared_ids: List[int]) -> Optional[PrefixCache]:
        """Prefill the shared prompt prefix exactly once per (model, shots)."""
        if not shared_ids:
            return None
        cached = self._prefix_cache
        if cached is not None and tuple(shared_ids) == cached.token_ids:
            return cached
        self._prefix_cache = self.model.prefill(shared_ids)
        return self._prefix_cache

    def predict_many(self, questions: Sequence[MCQuestion]) -> List[int]:
        """Batched :meth:`predict`: same predictions, one forward per batch.

        When the model supports prefix-cached batch scoring
        (:class:`BatchedCausalLM`), the shared two-shot scaffold is
        forwarded exactly once and the per-question suffixes are scored
        in padded batches; otherwise this falls back to the sequential
        per-question path.
        """
        if not questions:
            return []
        if not hasattr(self.model, "next_token_logits_many") or not hasattr(
            self.model, "prefill"
        ):
            return [self.predict(q) for q in questions]
        shared_ids, suffixes = self._split_prompts(questions)
        prefix = self._prefix_cache_for(shared_ids)
        pad_id = getattr(getattr(self.tokenizer, "vocab", None), "pad_id", 0)
        letter_ids = self.answer_map.letter_ids()
        # Batch similar lengths together (stable sort) so each padded
        # forward wastes as little work as possible; per-row results are
        # padding-independent, so this cannot change any prediction.
        order = sorted(range(len(suffixes)), key=lambda i: len(suffixes[i]))
        predictions: List[int] = [0] * len(suffixes)
        for i in range(0, len(order), self.batch_size):
            chunk = order[i : i + self.batch_size]
            logits = self.model.next_token_logits_many(
                [suffixes[j] for j in chunk], prefix=prefix, pad_id=pad_id
            )
            picks = np.argmax(logits[:, letter_ids], axis=-1)
            for j, pick in zip(chunk, picks):
                predictions[j] = int(pick)
        return predictions
