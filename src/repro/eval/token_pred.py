"""The next-token benchmarking method (Sections V-B / V-C).

Two-shot prompt ending in ``Answer :``; the model's next-token logits are
restricted to the four answer letters and the argmax is the prediction.
Temperature is fixed at 0 (argmax) per the paper.

**Dynamic answer-token discovery**: tokenizers differ in whether the letter
after ``Answer:`` is a bare token (``"A"``) or a space-prefixed one
(``" A"``).  Following the paper, the correct representation is discovered
by "examining the top ten tokens in the model's output" on probe prompts:
whichever convention's candidate ids dominate the top-10 is adopted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.corpus.knowledge import ANSWER_LETTERS
from repro.eval.prompts import format_next_token_prompt
from repro.mcq.generation import MCQuestion


class CausalLM(Protocol):
    def next_token_logits(self, tokens: np.ndarray) -> np.ndarray: ...


class TokenizerLike(Protocol):
    def encode(self, text: str, add_bos: bool = ..., add_eos: bool = ...) -> List[int]: ...
    def answer_token_candidates(self, letter: str) -> Dict[str, int]: ...


@dataclass(frozen=True)
class AnswerTokenMap:
    """Resolved token id for each answer letter."""

    ids: Dict[str, int]  # letter -> token id
    convention: str  # "bare" | "space-prefixed"

    def letter_ids(self) -> List[int]:
        return [self.ids[letter] for letter in ANSWER_LETTERS]


def _candidates_by_convention(
    tokenizer: TokenizerLike,
) -> Dict[str, Dict[str, int]]:
    """Candidate letter->id maps per convention, complete conventions only."""
    conventions: Dict[str, Dict[str, int]] = {}
    for letter in ANSWER_LETTERS:
        for name, token_id in tokenizer.answer_token_candidates(letter).items():
            conventions.setdefault(name, {})[letter] = token_id
    return {
        name: mapping
        for name, mapping in conventions.items()
        if len(mapping) == len(ANSWER_LETTERS)
    }


def discover_answer_tokens(
    model: CausalLM,
    tokenizer: TokenizerLike,
    probe_questions: Sequence[MCQuestion],
    few_shot: Sequence[MCQuestion] = (),
    top_k: int = 10,
    prefix_ids: Sequence[int] = (),
) -> AnswerTokenMap:
    """Pick the letter-token convention the model actually uses.

    For each probe question the top-``top_k`` next-token ids are collected;
    each complete convention is scored by how often its candidate ids show
    up.  Ties (or no hits at all) fall back to the convention supported by
    the vocabulary, preferring bare tokens.
    """
    conventions = _candidates_by_convention(tokenizer)
    if not conventions:
        raise ValueError("tokenizer exposes no complete answer-letter convention")
    if len(conventions) == 1:
        name, mapping = next(iter(conventions.items()))
        return AnswerTokenMap(mapping, name)

    scores = {name: 0 for name in conventions}
    for question in probe_questions:
        prompt = format_next_token_prompt(question, few_shot)
        tokens = np.asarray(
            list(prefix_ids) + tokenizer.encode(prompt), dtype=np.int64
        )
        logits = model.next_token_logits(tokens)
        k = min(top_k, logits.shape[-1])
        top_ids = set(np.argpartition(logits, -k)[-k:].tolist())
        for name, mapping in conventions.items():
            scores[name] += sum(1 for tid in mapping.values() if tid in top_ids)
    best = max(scores.items(), key=lambda kv: (kv[1], kv[0] == "bare"))
    return AnswerTokenMap(conventions[best[0]], best[0])


class TokenPredictionEvaluator:
    """Evaluate one model on one benchmark with the next-token method."""

    def __init__(
        self,
        model: CausalLM,
        tokenizer: TokenizerLike,
        few_shot: Sequence[MCQuestion],
        answer_map: Optional[AnswerTokenMap] = None,
        n_probe: int = 4,
        prefix_ids: Sequence[int] = (),
    ) -> None:
        """``prefix_ids`` lets callers prepend the document-boundary token
        the model actually saw during packed training (micro models never
        see BOS, only EOS separators)."""
        self.model = model
        self.tokenizer = tokenizer
        self.few_shot = list(few_shot)
        self.prefix_ids = list(prefix_ids)
        if answer_map is None:
            probes = self.few_shot or []
            answer_map = discover_answer_tokens(
                model,
                tokenizer,
                probes[: max(n_probe, 1)],
                self.few_shot,
                prefix_ids=self.prefix_ids,
            )
        self.answer_map = answer_map

    def predict(self, question: MCQuestion) -> int:
        """Return the predicted option index (0..3) for one question."""
        prompt = format_next_token_prompt(question, self.few_shot)
        tokens = np.asarray(
            self.prefix_ids + self.tokenizer.encode(prompt), dtype=np.int64
        )
        logits = self.model.next_token_logits(tokens)
        letter_logits = [logits[tid] for tid in self.answer_map.letter_ids()]
        return int(np.argmax(letter_logits))

    def predict_many(self, questions: Sequence[MCQuestion]) -> List[int]:
        return [self.predict(q) for q in questions]
