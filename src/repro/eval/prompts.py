"""Prompt templates from the paper's appendices.

Two prompt families:

* **Paper style** — the exact Appendix B full-instruct prompt (role-play,
  chain-of-thought request, JSON output contract) and the Appendix C
  two-shot next-token prompt.  Used verbatim against any model that can
  follow them (and by the parsing tests).
* **Micro style** — the chat-template rendering the micro zoo's SFT
  taught; small word-level models cannot emit JSON, so their full-instruct
  analogue asks for a natural-language answer in the trained chat format.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.corpus.knowledge import ANSWER_LETTERS
from repro.mcq.generation import MCQuestion
from repro.train.sft import ChatTemplate

PAPER_FULL_INSTRUCT_TEMPLATE = """You are an expert in general astrophysics. Your task is to answer and explain the following multiple-choice question on astrophysics, sourced from a dataset. The question is:
Question: {question}
Options:
A: {option_a}
B: {option_b}
C: {option_c}
D: {option_d}
Determine the correct answer using your astrophysics knowledge and provide a detailed explanation for why this answer is correct.
Ensure your explanation is thorough, clearly articulating your thought process based on astrophysical principles.
Output format:
{{
"ANSWER": "[The choice you decide to choose]",
"EXPLANATION": "[Provide a valid explanation for the answer mentioned in ANSWER]"
}}
Give only one answer, either A, B, C or D, but not more than one, and always give an answer. Provide your response in valid JSON format only. Begin your output with the JSON structure immediately, without any preceding text. Strictly adhere to the specified output format."""


def format_paper_full_instruct(question: MCQuestion) -> str:
    """Render the Appendix B prompt for one benchmark item."""
    return PAPER_FULL_INSTRUCT_TEMPLATE.format(
        question=question.question,
        option_a=question.options[0],
        option_b=question.options[1],
        option_c=question.options[2],
        option_d=question.options[3],
    )


def format_micro_chat_prompt(
    question: MCQuestion, template: Optional[ChatTemplate] = None
) -> str:
    """The micro zoo's full-instruct analogue: the trained chat format."""
    template = template or ChatTemplate()
    body = f"Question : {question.question}\n{question.option_block()}"
    return template.render_prompt(body)


def _question_block(question: MCQuestion, answer: Optional[str]) -> str:
    lines = [f"Question : {question.question}", question.option_block()]
    lines.append(f"Answer : {answer}" if answer is not None else "Answer :")
    return "\n".join(lines)


NEXT_TOKEN_HEADER = (
    "Astrophysics and Cosmology Multiple choice questions Solution set :"
)


def format_next_token_scaffold(
    few_shot: Sequence[MCQuestion] = (),
    header: str = NEXT_TOKEN_HEADER,
) -> str:
    """The question-independent part of the next-token prompt.

    Header plus solved few-shot blocks — identical for every question in
    a benchmark run, which is what makes it prefix-cacheable.
    """
    parts: List[str] = [header]
    for ex in few_shot:
        parts.append(_question_block(ex, ex.correct_letter))
    return "\n".join(parts)


def format_next_token_suffix(question: MCQuestion) -> str:
    """The per-question tail of the next-token prompt (incl. separator)."""
    return "\n" + _question_block(question, None)


def format_next_token_prompt(
    question: MCQuestion,
    few_shot: Sequence[MCQuestion] = (),
    header: str = NEXT_TOKEN_HEADER,
) -> str:
    """Render the Appendix C two-shot next-token prompt.

    ``few_shot`` questions are included with their correct answers; the
    test question ends with a bare ``Answer :`` so the next token is the
    model's choice.
    """
    return format_next_token_scaffold(few_shot, header) + format_next_token_suffix(
        question
    )
