"""Benchmark evaluation replayed through the serving engine.

:class:`ServingEvaluationRunner` maps the paper's three benchmarking
methodologies onto serving request kinds and pushes the whole question
set through a :class:`~repro.serve.engine.ServeEngine`:

* **full-instruct** (method 1) → ``GENERATE`` requests carrying the
  evaluator's :class:`~repro.model.sampling.GenerationConfig`; the
  decoded responses run through the same two-stage answer parser;
* **next-token, base and instruct** (methods 2/3) → ``SCORE`` requests;
  the final-position logits are restricted to the discovered
  answer-letter ids and argmaxed.

The contract (asserted by ``tests/test_serve_eval.py``): predictions are
**identical** to :class:`~repro.eval.runner.BatchedEvaluationRunner` —
continuous batching, prefix reuse, and admission-queue backpressure are
throughput devices, never accuracy devices.  Submission applies honest
backpressure: when the bounded queue refuses a question, the runner
steps the engine until it is accepted (the benchmark client is just
another well-behaved client).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.full_instruct import FullInstructRecord
from repro.eval.parsing import parse_model_answer
from repro.eval.runner import EvaluationResult, EvaluationRunner, assemble_result
from repro.mcq.generation import MCQuestion
from repro.serve.admission import QueueFullError
from repro.serve.clock import Clock
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.request import InferenceRequest, RequestKind, RequestStatus
from repro.serve.scheduler import SchedulerConfig

__all__ = ["ServingEvaluationRunner"]


class ServingEvaluationRunner(EvaluationRunner):
    """Evaluation runner whose backend is the continuous-batching engine.

    ``run`` dispatches on the evaluator: a
    :class:`~repro.eval.token_pred.TokenPredictionEvaluator` becomes a
    ``SCORE`` workload, a
    :class:`~repro.eval.full_instruct.FullInstructEvaluator` becomes a
    ``GENERATE`` workload.  The engine used for the last ``run`` is kept
    on ``last_engine`` so callers can inspect serving metrics (prefix
    hits, decode steps, queue depths) alongside accuracy.
    """

    def __init__(
        self,
        benchmark,
        max_questions: Optional[int] = None,
        config: Optional[ServeConfig] = None,
        clock: Optional[Clock] = None,
        fault_hook=None,
    ) -> None:
        super().__init__(benchmark, max_questions)
        self.config = config
        self.clock = clock
        self.fault_hook = fault_hook
        self.last_engine: Optional[ServeEngine] = None

    # ------------------------------------------------------------------
    def _engine(self, model) -> ServeEngine:
        config = self.config
        if config is None:
            # every single request (prompt + decode budget <= max_seq_len)
            # must fit, with room for a real batch of them
            budget = max(2048, 4 * model.config.max_seq_len)
            config = ServeConfig(scheduler=SchedulerConfig(token_budget=budget))
        engine = ServeEngine(
            model, config=config, clock=self.clock, fault_hook=self.fault_hook
        )
        self.last_engine = engine
        return engine

    @staticmethod
    def _submit_with_backpressure(
        engine: ServeEngine, request: InferenceRequest
    ) -> None:
        while True:
            try:
                engine.submit(request)
                return
            except QueueFullError:
                engine.step()

    # ------------------------------------------------------------------
    def run(self, evaluator, method: str, model_name: str) -> EvaluationResult:
        questions = self._questions()
        if hasattr(evaluator, "answer_map"):
            predictions = self._run_token_pred(evaluator, questions)
        elif hasattr(evaluator, "prompt_builder"):
            predictions = self._run_full_instruct(evaluator, questions)
        else:
            raise TypeError(
                "evaluator must be a TokenPredictionEvaluator or "
                "FullInstructEvaluator, got "
                f"{type(evaluator).__name__}"
            )
        return assemble_result(questions, predictions, method, model_name)

    # -- methods 2/3: next-token scoring --------------------------------
    def _run_token_pred(
        self, evaluator, questions: Sequence[MCQuestion]
    ) -> List[Optional[int]]:
        engine = self._engine(evaluator.model)
        ids: Dict[int, str] = {}
        for i, question in enumerate(questions):
            request_id = f"q-{i:05d}"
            ids[i] = request_id
            self._submit_with_backpressure(
                engine,
                InferenceRequest(
                    request_id=request_id,
                    prompt_ids=tuple(evaluator._prompt_ids(question)),
                    kind=RequestKind.SCORE,
                ),
            )
        engine.drain()
        letter_ids = evaluator.answer_map.letter_ids()
        predictions: List[Optional[int]] = []
        for i in range(len(questions)):
            state = engine.state_of(ids[i])
            if state.status is not RequestStatus.FINISHED:
                predictions.append(None)
                continue
            letter_logits = [state.final_logits[tid] for tid in letter_ids]
            predictions.append(int(np.argmax(letter_logits)))
        return predictions

    # -- method 1: full-instruct generation ------------------------------
    def _run_full_instruct(
        self, evaluator, questions: Sequence[MCQuestion]
    ) -> List[Optional[int]]:
        engine = self._engine(evaluator.model)
        ids: Dict[int, str] = {}
        for i, question in enumerate(questions):
            request_id = f"q-{i:05d}"
            ids[i] = request_id
            prompt = evaluator.prompt_builder(question)
            prompt_ids = evaluator.prefix_ids + evaluator.tokenizer.encode(prompt)
            self._submit_with_backpressure(
                engine,
                InferenceRequest(
                    request_id=request_id,
                    prompt_ids=tuple(prompt_ids),
                    kind=RequestKind.GENERATE,
                    generation=evaluator.generation,
                ),
            )
        engine.drain()
        predictions: List[Optional[int]] = []
        for i, question in enumerate(questions):
            state = engine.state_of(ids[i])
            if state.status is not RequestStatus.FINISHED:
                predictions.append(None)
                continue
            response = evaluator.tokenizer.decode(state.output_ids)
            outcome = parse_model_answer(
                response, question.options, evaluator.interpreter
            )
            evaluator.records.append(
                FullInstructRecord(question.question_id, response, outcome)
            )
            predictions.append(outcome.answer_idx)
        return predictions
