"""Diagnostic probes separating knowledge from format skill.

The benchmark score conflates two capabilities; these probes measure them
independently, which is how the reproduction's mechanism experiments tell
*what* a training stage changed:

* :func:`knowledge_recall` — statement-completion accuracy: given the
  canonical statement prefix, does greedy decoding produce the fact's
  value?  Pure parametric recall, no MCQ machinery.
* :func:`circuit_quality` — single-question MCQ accuracy on freshly
  shuffled renderings: the match-the-value-and-emit-its-letter circuit,
  measured on whatever facts the caller chooses (e.g. general-world facts
  the model has certainly seen, isolating format skill from knowledge).

Both were instrumental during bring-up (see DESIGN.md §6): CPT-induced
degradation shows up as circuit decay with knowledge intact, while
coverage gaps show up as knowledge misses with the circuit intact.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.corpus.general import render_mcq_exercise
from repro.corpus.knowledge import ANSWER_LETTERS, Fact
from repro.model.sampling import greedy_decode
from repro.model.transformer import TransformerLM
from repro.utils.rng import new_rng


class ProbeTokenizer(Protocol):
    def encode(self, text: str, add_bos: bool = ..., add_eos: bool = ...) -> List[int]: ...
    def decode(self, ids: Sequence[int], skip_special: bool = ...) -> str: ...
    def answer_token_candidates(self, letter: str) -> dict: ...


def knowledge_recall(
    model: TransformerLM,
    tokenizer: ProbeTokenizer,
    facts: Sequence[Fact],
    prefix_ids: Sequence[int] = (),
    max_new_tokens: int = 3,
) -> float:
    """Fraction of facts whose value greedy decoding completes correctly.

    Matches on the value's first token (the number), which suffices to
    distinguish the correct value from all distractors by construction.
    """
    if not facts:
        raise ValueError("no facts to probe")
    hits = 0
    for fact in facts:
        ids = list(prefix_ids) + tokenizer.encode(fact.question())
        out = greedy_decode(model, ids, max_new_tokens=max_new_tokens)
        completion = tokenizer.decode(out).split()
        if completion[:1] == [fact.correct.split()[0]]:
            hits += 1
    return hits / len(facts)


def circuit_quality(
    model: TransformerLM,
    tokenizer: ProbeTokenizer,
    facts: Sequence[Fact],
    n_probes: int = 48,
    prefix_ids: Sequence[int] = (),
    seed: int = 0,
) -> float:
    """Single-block MCQ accuracy on fresh option shuffles.

    Picks the answer by argmax over the four letter-token logits under the
    tokenizer's available convention (preferring marker-prefixed when both
    exist, matching how letters appear after ``Answer :`` mid-text).
    """
    if not facts:
        raise ValueError("no facts to probe")
    rng = new_rng(seed, "circuit-probe")
    letter_ids = {}
    for letter in ANSWER_LETTERS:
        candidates = tokenizer.answer_token_candidates(letter)
        if not candidates:
            raise ValueError(f"letter {letter} missing from vocabulary")
        letter_ids[letter] = candidates.get(
            "space-prefixed", next(iter(candidates.values()))
        )
    hits = 0
    for i in range(n_probes):
        fact = facts[i % len(facts)]
        text = render_mcq_exercise(fact, rng, include_answer=False)
        ids = list(prefix_ids) + tokenizer.encode(text)
        logits = model.next_token_logits(np.asarray(ids, dtype=np.int64))
        pick = max(ANSWER_LETTERS, key=lambda L: logits[letter_ids[L]])
        correct_letter: Optional[str] = None
        for letter, line in zip(ANSWER_LETTERS, text.split("\n")[1:5]):
            value = line.partition(" : ")[2]
            if value == fact.correct:
                correct_letter = letter
        hits += pick == correct_letter
    return hits / n_probes
