"""Batch evaluation over a benchmark with per-topic breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.mcq.dataset import MCQBenchmark
from repro.mcq.generation import MCQuestion

Predictor = Callable[[MCQuestion], Optional[int]]


@dataclass
class EvaluationResult:
    """Accuracy summary of one (model, method) pair."""

    method: str
    model_name: str
    n_questions: int
    accuracy: float
    per_topic: Dict[str, float] = field(default_factory=dict)
    predictions: List[Optional[int]] = field(default_factory=list)
    parse_failures: int = 0

    @property
    def score_percent(self) -> float:
        return 100.0 * self.accuracy

    def summary_row(self) -> str:
        return f"{self.model_name:<36s} {self.method:<24s} {self.score_percent:5.1f}%"


class EvaluationRunner:
    """Applies a per-question predictor across a benchmark's test split."""

    def __init__(
        self, benchmark: MCQBenchmark, max_questions: Optional[int] = None
    ) -> None:
        self.benchmark = benchmark
        self.max_questions = max_questions

    def _questions(self) -> List[MCQuestion]:
        qs = self.benchmark.test
        if self.max_questions is not None:
            qs = qs[: self.max_questions]
        return qs

    def run(
        self, predictor: Predictor, method: str, model_name: str
    ) -> EvaluationResult:
        questions = self._questions()
        predictions: List[Optional[int]] = [predictor(q) for q in questions]
        accuracy = MCQBenchmark.accuracy(questions, predictions)
        per_topic: Dict[str, List[bool]] = {}
        failures = 0
        for q, p in zip(questions, predictions):
            per_topic.setdefault(q.topic, []).append(p == q.correct_idx)
            if p is None:
                failures += 1
        return EvaluationResult(
            method=method,
            model_name=model_name,
            n_questions=len(questions),
            accuracy=accuracy,
            per_topic={
                t: sum(v) / len(v) for t, v in sorted(per_topic.items())
            },
            predictions=predictions,
            parse_failures=failures,
        )
