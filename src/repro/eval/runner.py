"""Batch evaluation over a benchmark with per-topic breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.mcq.dataset import MCQBenchmark
from repro.mcq.generation import MCQuestion

Predictor = Callable[[MCQuestion], Optional[int]]
#: Maps a whole question list to a prediction list (order-aligned).
BatchPredictor = Callable[[Sequence[MCQuestion]], Sequence[Optional[int]]]


@dataclass
class EvaluationResult:
    """Accuracy summary of one (model, method) pair."""

    method: str
    model_name: str
    n_questions: int
    accuracy: float
    per_topic: Dict[str, float] = field(default_factory=dict)
    predictions: List[Optional[int]] = field(default_factory=list)
    parse_failures: int = 0

    @property
    def score_percent(self) -> float:
        return 100.0 * self.accuracy

    def summary_row(self) -> str:
        return f"{self.model_name:<36s} {self.method:<24s} {self.score_percent:5.1f}%"


class EvaluationRunner:
    """Applies a per-question predictor across a benchmark's test split."""

    def __init__(
        self, benchmark: MCQBenchmark, max_questions: Optional[int] = None
    ) -> None:
        self.benchmark = benchmark
        self.max_questions = max_questions

    def _questions(self) -> List[MCQuestion]:
        qs = self.benchmark.test
        if self.max_questions is not None:
            qs = qs[: self.max_questions]
        return qs

    def run(
        self, predictor: Predictor, method: str, model_name: str
    ) -> EvaluationResult:
        questions = self._questions()
        predictions: List[Optional[int]] = [predictor(q) for q in questions]
        return assemble_result(questions, predictions, method, model_name)


class BatchedEvaluationRunner(EvaluationRunner):
    """Evaluation runner that prefers whole-benchmark batch prediction.

    ``run`` accepts either a :data:`BatchPredictor` (e.g. a bound
    ``predict_many``) or an evaluator object exposing one; a plain
    per-question :data:`Predictor` still works via :meth:`run_sequential`,
    so every existing call site is a valid fallback.
    """

    def run(
        self, predictor, method: str, model_name: str
    ) -> EvaluationResult:
        questions = self._questions()
        batched: Optional[BatchPredictor] = getattr(
            predictor, "predict_many", None
        )
        if batched is None and getattr(predictor, "__name__", "") == "predict_many":
            batched = predictor  # a bound predict_many passed directly
        if batched is not None:
            predictions = list(batched(questions))
            if len(predictions) != len(questions):
                raise ValueError(
                    f"batch predictor returned {len(predictions)} predictions "
                    f"for {len(questions)} questions"
                )
        else:
            predictions = [predictor(q) for q in questions]
        return assemble_result(questions, predictions, method, model_name)

    def run_sequential(
        self, predictor: Predictor, method: str, model_name: str
    ) -> EvaluationResult:
        """Force the one-question-at-a-time path (timing baselines)."""
        return EvaluationRunner.run(self, predictor, method, model_name)


def assemble_result(
    questions: Sequence[MCQuestion],
    predictions: Sequence[Optional[int]],
    method: str,
    model_name: str,
) -> EvaluationResult:
    """Fold order-aligned predictions into an :class:`EvaluationResult`."""
    accuracy = MCQBenchmark.accuracy(questions, predictions)
    per_topic: Dict[str, List[bool]] = {}
    failures = 0
    for q, p in zip(questions, predictions):
        per_topic.setdefault(q.topic, []).append(p == q.correct_idx)
        if p is None:
            failures += 1
    return EvaluationResult(
        method=method,
        model_name=model_name,
        n_questions=len(questions),
        accuracy=accuracy,
        per_topic={t: sum(v) / len(v) for t, v in sorted(per_topic.items())},
        predictions=list(predictions),
        parse_failures=failures,
    )
