"""Evaluation harness: the paper's three benchmarking methods (Section V).

* :class:`~repro.eval.full_instruct.FullInstructEvaluator` — chat-style
  question answering with chain-of-thought, regex answer extraction and an
  interpreter fallback (the GPT-4o analogue);
* :class:`~repro.eval.token_pred.TokenPredictionEvaluator` — the two-shot
  next-token method with dynamic answer-token discovery, applicable to base
  models (method 2) and instruct models (method 3);
* :class:`~repro.eval.runner.EvaluationRunner` — batch evaluation over a
  benchmark with per-topic accuracy breakdowns.
"""

from repro.eval.prompts import (
    PAPER_FULL_INSTRUCT_TEMPLATE,
    format_paper_full_instruct,
    format_micro_chat_prompt,
    format_next_token_prompt,
)
from repro.eval.parsing import (
    FallbackInterpreter,
    ParseOutcome,
    extract_answer_freeform,
    extract_answer_json,
    parse_model_answer,
)
from repro.eval.token_pred import (
    AnswerTokenMap,
    TokenPredictionEvaluator,
    discover_answer_tokens,
)
from repro.eval.full_instruct import FullInstructEvaluator
from repro.eval.runner import (
    BatchedEvaluationRunner,
    EvaluationResult,
    EvaluationRunner,
    assemble_result,
)
from repro.eval.serving import ServingEvaluationRunner
from repro.eval.probes import circuit_quality, knowledge_recall

__all__ = [
    "PAPER_FULL_INSTRUCT_TEMPLATE",
    "format_paper_full_instruct",
    "format_micro_chat_prompt",
    "format_next_token_prompt",
    "ParseOutcome",
    "extract_answer_json",
    "extract_answer_freeform",
    "parse_model_answer",
    "FallbackInterpreter",
    "AnswerTokenMap",
    "discover_answer_tokens",
    "TokenPredictionEvaluator",
    "FullInstructEvaluator",
    "EvaluationRunner",
    "BatchedEvaluationRunner",
    "EvaluationResult",
    "assemble_result",
    "ServingEvaluationRunner",
    "knowledge_recall",
    "circuit_quality",
]
