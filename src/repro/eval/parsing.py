"""Answer extraction from free-form model output (Section V-A).

The paper's pipeline is two-stage: "a preliminary regex to extract answers
in most cases ... in the rare instances where this failed, we employed a
GPT-4o model to interpret the intended answer from the model's
explanation."  Both stages are reproduced:

1. :func:`extract_answer_json` + :func:`extract_answer_freeform` — the
   regex stage, covering the JSON contract and common free-form phrasings;
2. :class:`FallbackInterpreter` — the interpreter analogue: given the
   model's explanation and the option texts, infer which option the
   explanation is endorsing (by value mention and token overlap).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.corpus.knowledge import ANSWER_LETTERS

_LETTER_IDX = {letter: i for i, letter in enumerate(ANSWER_LETTERS)}

_ANSWER_FIELD_RE = re.compile(
    r'"?ANSWER"?\s*[:=]\s*"?\(?\[?([A-D])\b', re.IGNORECASE
)
_FREEFORM_PATTERNS = (
    re.compile(r"\bthe answer is\s*:?\s*\(?([A-D])\b", re.IGNORECASE),
    re.compile(r"\banswer\s*:?\s*\(?([A-D])\b", re.IGNORECASE),
    re.compile(r"\bcorrect (?:answer|option|choice) is\s*\(?([A-D])\b", re.IGNORECASE),
    re.compile(r"\boption\s*\(?([A-D])\)?\s+is correct\b", re.IGNORECASE),
    re.compile(r"^\s*\(?([A-D])\)?\s*[:.\)]", re.MULTILINE),
    re.compile(r"\bchoose\s*\(?([A-D])\b", re.IGNORECASE),
)
_BARE_LETTER_RE = re.compile(r"^\s*([A-D])\s*$", re.IGNORECASE)


@dataclass(frozen=True)
class ParseOutcome:
    """Result of the full parsing pipeline."""

    answer_idx: Optional[int]  # 0..3, or None if unparseable
    stage: str  # "json" | "regex" | "interpreter" | "failed"

    @property
    def parsed(self) -> bool:
        return self.answer_idx is not None


def _iter_json_blocks(text: str):
    """Yield top-level balanced ``{...}`` spans, string-aware.

    A non-greedy ``\\{.*?\\}`` regex truncates any object whose
    ``EXPLANATION`` (or a nested object) contains ``{...}`` before the
    ``ANSWER`` key, so brace depth is tracked instead; braces inside JSON
    string literals (and escaped quotes) do not affect the depth.
    """
    depth = 0
    start = -1
    in_string = False
    escaped = False
    for i, ch in enumerate(text):
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"' and depth > 0:
            in_string = True
        elif ch == "{":
            if depth == 0:
                start = i
            depth += 1
        elif ch == "}" and depth > 0:
            depth -= 1
            if depth == 0:
                yield text[start : i + 1]


def extract_answer_json(text: str) -> Optional[int]:
    """Parse the paper's JSON output contract; tolerant of sloppy JSON."""
    for block in _iter_json_blocks(text):
        try:
            obj = json.loads(block)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict):
            for key in ("ANSWER", "answer", "Answer"):
                if key in obj:
                    value = str(obj[key]).strip().upper()
                    if value[:1] in _LETTER_IDX:
                        return _LETTER_IDX[value[0]]
    # sloppy JSON: regex the ANSWER field directly
    m = _ANSWER_FIELD_RE.search(text)
    if m:
        return _LETTER_IDX[m.group(1).upper()]
    return None


def extract_answer_freeform(text: str) -> Optional[int]:
    """Match common free-form answer phrasings."""
    m = _BARE_LETTER_RE.match(text)
    if m:
        return _LETTER_IDX[m.group(1).upper()]
    for pattern in _FREEFORM_PATTERNS:
        m = pattern.search(text)
        if m:
            return _LETTER_IDX[m.group(1).upper()]
    return None


class FallbackInterpreter:
    """The GPT-4o answer-interpreter analogue.

    Infers the intended answer from an explanation by (1) exact mention of
    one option's value, then (2) bag-of-words overlap between the
    explanation and each option, requiring a unique argmax with a margin.
    """

    def __init__(self, min_overlap: int = 1) -> None:
        self.min_overlap = min_overlap

    def interpret(self, text: str, options: Sequence[str]) -> Optional[int]:
        lowered = " ".join(text.lower().split())
        mentions = [
            i
            for i, opt in enumerate(options)
            if " ".join(opt.lower().split()) in lowered
        ]
        if len(mentions) == 1:
            return mentions[0]
        # token-overlap scoring
        text_tokens = set(lowered.split())
        scores = []
        for opt in options:
            opt_tokens = set(opt.lower().split())
            scores.append(len(opt_tokens & text_tokens))
        best = max(scores)
        if best >= self.min_overlap and scores.count(best) == 1:
            return scores.index(best)
        return None


def parse_model_answer(
    text: str,
    options: Sequence[str],
    interpreter: Optional[FallbackInterpreter] = None,
) -> ParseOutcome:
    """Run the full two-stage pipeline on one model response."""
    idx = extract_answer_json(text)
    if idx is not None:
        return ParseOutcome(idx, "json")
    idx = extract_answer_freeform(text)
    if idx is not None:
        return ParseOutcome(idx, "regex")
    interpreter = interpreter or FallbackInterpreter()
    idx = interpreter.interpret(text, options)
    if idx is not None:
        return ParseOutcome(idx, "interpreter")
    return ParseOutcome(None, "failed")
