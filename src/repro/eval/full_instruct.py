"""The full-instruct benchmarking method (Section V-A).

Prompts the instruct model conversationally, generates a response (up to
512 tokens in the paper), and runs the two-stage answer parser.  Prompt
style is pluggable: the paper's Appendix B JSON prompt for JSON-capable
models, or the micro chat format for the micro zoo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.eval.parsing import FallbackInterpreter, ParseOutcome, parse_model_answer
from repro.eval.prompts import format_micro_chat_prompt, format_paper_full_instruct
from repro.mcq.generation import MCQuestion
from repro.model.kv_cache import PrefixCacheStore
from repro.model.sampling import GenerationConfig, generate
from repro.model.transformer import TransformerLM

PromptBuilder = Callable[[MCQuestion], str]


class DecoderLike(Protocol):
    def encode(self, text: str, add_bos: bool = ..., add_eos: bool = ...) -> List[int]: ...
    def decode(self, ids: Sequence[int], skip_special: bool = ...) -> str: ...


@dataclass
class FullInstructRecord:
    """One question's full-instruct transcript."""

    question_id: int
    response: str
    outcome: ParseOutcome


class FullInstructEvaluator:
    """Generate-and-parse evaluation of an instruct model."""

    def __init__(
        self,
        model: TransformerLM,
        tokenizer: DecoderLike,
        prompt_builder: Optional[PromptBuilder] = None,
        generation: Optional[GenerationConfig] = None,
        interpreter: Optional[FallbackInterpreter] = None,
        eos_id: Optional[int] = None,
        prefix_ids: Sequence[int] = (),
        reuse_prefix: bool = True,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.prompt_builder = prompt_builder or format_micro_chat_prompt
        stop = (eos_id,) if eos_id is not None else ()
        self.generation = generation or GenerationConfig(
            max_new_tokens=48, temperature=0.0, stop_token_ids=stop
        )
        self.interpreter = interpreter or FallbackInterpreter()
        self.prefix_ids = list(prefix_ids)
        self.reuse_prefix = reuse_prefix and hasattr(model, "prefill")
        self._prefix_store = PrefixCacheStore(max_entries=2)
        self.records: List[FullInstructRecord] = []

    def _scaffold_prefix(self, prompt_ids: List[int]):
        """The prefilled chat scaffold shared by every question's prompt.

        The first prompt is prefilled in full and stored; later prompts
        fork the stored cache at their (token-level) common prefix — the
        scaffold — so it is never re-prefilled.
        """
        if not self.reuse_prefix:
            return None
        if len(prompt_ids) > self.model.config.max_seq_len:
            return None  # generate() will left-truncate; nothing reusable
        hit = self._prefix_store.match(prompt_ids)
        if hit is not None:
            return hit[0]
        return self._prefix_store.put(self.model.prefill(prompt_ids))

    def answer(self, question: MCQuestion) -> ParseOutcome:
        """Prompt, generate, parse; records the transcript."""
        prompt = self.prompt_builder(question)
        prompt_ids = self.prefix_ids + self.tokenizer.encode(prompt)
        out_ids = generate(
            self.model,
            prompt_ids,
            self.generation,
            prefix=self._scaffold_prefix(prompt_ids),
        )
        response = self.tokenizer.decode(out_ids)
        outcome = parse_model_answer(response, question.options, self.interpreter)
        self.records.append(
            FullInstructRecord(question.question_id, response, outcome)
        )
        return outcome

    def predict(self, question: MCQuestion) -> Optional[int]:
        return self.answer(question).answer_idx

    def predict_many(self, questions: Sequence[MCQuestion]) -> List[Optional[int]]:
        return [self.predict(q) for q in questions]

    @property
    def parse_failure_rate(self) -> float:
        if not self.records:
            return 0.0
        failed = sum(1 for r in self.records if not r.outcome.parsed)
        return failed / len(self.records)

    @property
    def interpreter_usage_rate(self) -> float:
        """How often the regex stage failed and the interpreter stepped in."""
        if not self.records:
            return 0.0
        used = sum(1 for r in self.records if r.outcome.stage == "interpreter")
        return used / len(self.records)
