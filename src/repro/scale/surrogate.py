"""The analytic scale surrogate.

Scores are produced from four mechanisms, each with interpretable
parameters:

1. **Base knowledge** ``K0`` — the fraction of benchmark facts the native
   base model can recall, inverted from its base-token score
   (``score = 25 + 75*K``, the chance-corrected recall mapping).
2. **CPT gain** — recallable knowledge added by continual pretraining:
   ``gain = alpha * q_d * (1 - K0)``: proportional to the headroom and the
   dataset's information quality ``q_d`` (Abstract < AIC < Summary).
3. **CPT forgetting** — interference erases prior capability:
   ``forget = phi_tier * tau_d``: a per-capacity-tier fragility times the
   dataset's token pressure.  ``phi`` falls steeply with capacity — the
   paper's central observation (7B forgets catastrophically, 70B barely).
4. **SFT effects** — supervised fine-tuning shifts scores twice: a
   knowledge perturbation visible in instruct-model token prediction
   (``sft_token_shift``), and an instruction-following gap visible only in
   full-instruct mode (``instruct_gap``), driven by how small and
   non-astronomy the SFT set is.

Parameters live in :mod:`repro.scale.calibration`, fitted so the surrogate
reproduces Table I; the benches then use the *mechanisms* for ablations
(e.g. scaling ``sft_astro_fraction`` up shrinks the instruct gap — the
paper's "50 million Q&A" remedy).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.zoo import ModelZooEntry


def knowledge_from_score(score_percent: float) -> float:
    """Invert ``score = 25 + 75 * K`` (clipped to [0, 1])."""
    return min(max((score_percent - 25.0) / 75.0, 0.0), 1.0)


def score_from_knowledge(k: float) -> float:
    return 25.0 + 75.0 * min(max(k, 0.0), 1.0)


@dataclass(frozen=True)
class MechanismParams:
    """All surrogate parameters (see module docstring)."""

    # base-token scores of the native models (percent)
    native_token_base: Dict[str, float] = field(
        default_factory=lambda: {
            "LLaMA-2-7B": 51.3,
            "LLaMA-3-8B": 72.0,
            "LLaMA-2-70B": 73.9,
        }
    )
    # CPT gain strength (percent points per unit quality*headroom)
    alpha: float = 21.4
    # dataset information quality
    dataset_quality: Dict[str, float] = field(
        default_factory=lambda: {"abstract": 0.45, "aic": 0.75, "summary": 0.80}
    )
    # dataset token pressure (relative to AIC)
    dataset_tokens: Dict[str, float] = field(
        default_factory=lambda: {"abstract": 0.9, "aic": 1.0, "summary": 1.0}
    )
    # per-tier forgetting fragility (percent points at tau=1)
    phi: Dict[str, float] = field(
        default_factory=lambda: {"tiny": 17.4, "small": 6.1, "large": 3.5}
    )
    # LoRA trains fewer weights: multiplies both gain and forgetting
    lora_gain_factor: float = 0.75
    lora_forget_factor: float = 1.05
    # SFT: token-prediction shift (percent points) per entry class
    sft_token_shift: Dict[str, float] = field(
        default_factory=lambda: {
            "LLaMA-2-7B": +11.3,  # Meta's chat tuning helps the weak 7B
            "LLaMA-3-8B": +1.6,
            "LLaMA-2-70B": -2.5,
            "AstroLLaMA-2-7B-AIC": +2.9,
            "AstroLLaMA-3-8B-AIC": -3.5,
            "AstroLLaMA-3-8B-Summary": -1.4,
            "AstroLLaMA-2-70B-AIC": -0.6,
        }
    )
    # full-instruct gap below instruct-token (percent points)
    instruct_gap: Dict[str, float] = field(
        default_factory=lambda: {
            "LLaMA-2-7B": 12.3,
            "LLaMA-3-8B": 0.7,
            "LLaMA-2-70B": 0.7,
            "AstroLLaMA-2-7B-AIC": 5.8,
            "AstroLLaMA-3-8B-AIC": 6.6,
            "AstroLLaMA-3-8B-Summary": 1.9,
            "AstroLLaMA-2-70B-AIC": 10.7,
        }
    )
    # how much of the instruct gap a fully astronomy-focused, large SFT set
    # would remove (the de Haan et al. 50M-Q&A remedy)
    sft_gap_recoverable: float = 0.9


@dataclass(frozen=True)
class SurrogateScores:
    """The three benchmark-method scores for one entry (percent)."""

    token_base: float
    token_instruct: Optional[float]
    full_instruct: Optional[float]

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "token_base": self.token_base,
            "token_instruct": self.token_instruct,
            "full_instruct": self.full_instruct,
        }


class SurrogateModel:
    """Computes Table-I scores from the mechanism parameters."""

    def __init__(self, params: Optional[MechanismParams] = None) -> None:
        from repro.scale.calibration import CALIBRATED_PARAMS

        self.params = params or CALIBRATED_PARAMS

    # ------------------------------------------------------------------
    def token_base(self, entry: ModelZooEntry) -> float:
        p = self.params
        native = p.native_token_base[entry.base_name]
        if entry.cpt_dataset is None:
            return native
        k0 = knowledge_from_score(native)
        quality = p.dataset_quality[entry.cpt_dataset]
        tokens = p.dataset_tokens[entry.cpt_dataset]
        gain = p.alpha * quality * (1.0 - k0)
        forget = p.phi[entry.tier] * tokens
        if entry.cpt_lora:
            gain *= p.lora_gain_factor
            forget *= p.lora_forget_factor
        return min(max(native + gain - forget, 0.0), 100.0)

    def token_instruct(self, entry: ModelZooEntry) -> Optional[float]:
        shift = self.params.sft_token_shift.get(entry.name)
        if shift is None:
            return None  # the paper reports no instruct variant (Abstract row)
        return min(max(self.token_base(entry) + shift, 0.0), 100.0)

    def full_instruct(
        self, entry: ModelZooEntry, sft_astro_fraction: Optional[float] = None
    ) -> Optional[float]:
        """``sft_astro_fraction`` enables the remedy ablation: the paper's
        mixture is ~1/3 astronomy; raising it toward 1.0 closes the gap."""
        ti = self.token_instruct(entry)
        if ti is None:
            return None
        gap = self.params.instruct_gap.get(entry.name)
        if gap is None:
            return None
        if sft_astro_fraction is not None and not entry.is_native:
            baseline_fraction = 1.0 / 3.0
            extra = max(sft_astro_fraction - baseline_fraction, 0.0) / (
                1.0 - baseline_fraction
            )
            gap = gap * (1.0 - self.params.sft_gap_recoverable * extra)
        return min(max(ti - gap, 0.0), 100.0)

    # ------------------------------------------------------------------
    def scores(self, entry: ModelZooEntry) -> SurrogateScores:
        return SurrogateScores(
            token_base=self.token_base(entry),
            token_instruct=self.token_instruct(entry),
            full_instruct=self.full_instruct(entry),
        )

    def cpt_delta(self, entry: ModelZooEntry) -> float:
        """Base-token change CPT produced relative to the native baseline."""
        return self.token_base(entry) - self.params.native_token_base[
            entry.base_name
        ]

    # ------------------------------------------------------------------
    def with_params(self, **overrides) -> "SurrogateModel":
        """Ablation helper: a copy with some parameters replaced."""
        return SurrogateModel(replace(self.params, **overrides))
