"""The Ting et al. (2024) score/price trade-off and flagship comparisons.

Section VI: "an improvement of about 3.5 points is equivalent to
approximately a 10-fold increase in value", so the 70B model's +2.1-point
gain is "comparable to two-thirds of the performance gain observed between
models like Claude-Haiku to Claude-Sonnet or GPT-4o-mini to GPT-4o".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# Flagship full-instruct scores quoted in Section VI of the paper.
FLAGSHIP_SCORES: Dict[str, float] = {
    "Gemini-1.5-Pro-001": 77.6,
    "Claude-3.0-Sonnet": 76.7,
    "GLM-4-0520": 75.1,
}

# The paper's rule: 3.5 points per 10x value.
POINTS_PER_DECADE: float = 3.5


def cost_ratio_for_points(delta_points: float, points_per_decade: float = POINTS_PER_DECADE) -> float:
    """Value multiplier equivalent to a score improvement."""
    return 10.0 ** (delta_points / points_per_decade)


def points_for_cost_ratio(ratio: float, points_per_decade: float = POINTS_PER_DECADE) -> float:
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    return points_per_decade * math.log10(ratio)


@dataclass
class ScorePriceFrontier:
    """A log-linear score-vs-price frontier.

    ``anchor_score`` at ``anchor_price`` (arbitrary units) with the paper's
    slope; used to express score gains as cost-efficiency factors and to
    place models relative to the flagship set.
    """

    anchor_score: float = 73.9  # LLaMA-2-70B base token score
    anchor_price: float = 1.0
    points_per_decade: float = POINTS_PER_DECADE

    def equivalent_price(self, score: float) -> float:
        """Price at which ``score`` sits on the frontier."""
        decades = (score - self.anchor_score) / self.points_per_decade
        return self.anchor_price * (10.0**decades)

    def value_gain(self, old_score: float, new_score: float) -> float:
        """Cost-efficiency multiplier of moving old -> new at fixed price."""
        return cost_ratio_for_points(
            new_score - old_score, self.points_per_decade
        )

    # ------------------------------------------------------------------
    def paper_claims(self) -> Dict[str, float]:
        """The quantitative claims of Section VI, recomputed.

        * the 2.1-point CPT gain as a value multiplier;
        * the fraction of a Haiku->Sonnet-class gap it represents (the
          paper calls 2.1 points "two-thirds" of that gap, implying a
          ~3.15-point class gap).
        """
        gain = 76.0 - 73.9
        class_gap = gain / (2.0 / 3.0)
        return {
            "cpt_gain_points": gain,
            "cpt_gain_value_ratio": self.value_gain(73.9, 76.0),
            "implied_class_gap_points": class_gap,
            "fraction_of_class_gap": gain / class_gap,
            "ten_fold_points": self.points_per_decade,
        }

    def flagship_comparison(self, score: float) -> List[Tuple[str, float]]:
        """(flagship, score difference) sorted by closeness to ``score``."""
        return sorted(
            ((name, score - s) for name, s in FLAGSHIP_SCORES.items()),
            key=lambda kv: abs(kv[1]),
        )
