"""The scale surrogate: Table-I numbers without the GPU cluster.

The micro zoo demonstrates the paper's *mechanisms* with real training; it
cannot land on the paper's *absolute* scores (those require 7-70B models).
This package provides the documented substitution: an analytic
knowledge/forgetting/instruction model whose parameters are calibrated to
Table I, used by the headline benchmark to regenerate the full table and
figure, and by ablation benches to extrapolate (what if the SFT set were
astronomy-focused? what if CPT used more tokens?).

* :mod:`repro.scale.surrogate` — the mechanism model;
* :mod:`repro.scale.calibration` — the fitted parameter set + paper targets;
* :mod:`repro.scale.tradeoff` — the Ting-et-al score/cost frontier
  (+3.5 points ~= 10x cost-efficiency) and flagship comparisons.
"""

from repro.scale.surrogate import (
    MechanismParams,
    SurrogateModel,
    SurrogateScores,
)
from repro.scale.calibration import (
    CALIBRATED_PARAMS,
    PAPER_TABLE_ONE,
    calibration_error,
)
from repro.scale.tradeoff import (
    FLAGSHIP_SCORES,
    ScorePriceFrontier,
    cost_ratio_for_points,
    points_for_cost_ratio,
)

__all__ = [
    "MechanismParams",
    "SurrogateModel",
    "SurrogateScores",
    "CALIBRATED_PARAMS",
    "PAPER_TABLE_ONE",
    "calibration_error",
    "ScorePriceFrontier",
    "FLAGSHIP_SCORES",
    "cost_ratio_for_points",
    "points_for_cost_ratio",
]
