"""Calibration of the surrogate against the paper's Table I.

``PAPER_TABLE_ONE`` is the ground truth transcribed from the paper;
``CALIBRATED_PARAMS`` is the mechanism parameter set fitted to it.  The
fit procedure (documented per parameter):

* ``native_token_base`` — read directly from the native rows;
* ``alpha`` — identified from the AIC-vs-Summary contrast at 8B, where the
  forgetting term cancels: ``(72.3 - 71.9) = alpha * (q_summary - q_aic) *
  (1 - K0_8B)``;
* ``phi`` per tier — solved from each tier's AIC row once ``alpha`` is
  fixed;
* ``sft_token_shift`` / ``instruct_gap`` — per-row differences between the
  three methods (the paper's SFT effects are strongly row-specific; the
  mechanism model exposes them as interpretable per-row parameters rather
  than hiding them in a regression).

``calibration_error`` verifies the closed loop: every one of the paper's
22 reported scores must be reproduced to within ``tolerance``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.zoo import zoo_entries
from repro.scale.surrogate import MechanismParams, SurrogateModel

# (model, method) -> percent score, straight from Table I.  ``None`` marks
# cells the paper leaves empty (the Abstract model has no instruct variant).
PAPER_TABLE_ONE: Dict[str, Dict[str, Optional[float]]] = {
    "LLaMA-2-7B": {
        "full_instruct": 50.3,
        "token_instruct": 62.6,
        "token_base": 51.3,
    },
    "AstroLLaMA-2-7B-AIC": {
        "full_instruct": 41.4,
        "token_instruct": 47.2,
        "token_base": 44.3,
    },
    "AstroLLaMA-2-7B-Abstract": {
        "full_instruct": None,
        "token_instruct": None,
        "token_base": 43.5,
    },
    "LLaMA-3-8B": {
        "full_instruct": 72.9,
        "token_instruct": 73.6,
        "token_base": 72.0,
    },
    "AstroLLaMA-3-8B-AIC": {
        "full_instruct": 61.8,
        "token_instruct": 68.4,
        "token_base": 71.9,
    },
    "AstroLLaMA-3-8B-Summary": {
        "full_instruct": 69.0,
        "token_instruct": 70.9,
        "token_base": 72.3,
    },
    "LLaMA-2-70B": {
        "full_instruct": 70.7,
        "token_instruct": 71.4,
        "token_base": 73.9,
    },
    "AstroLLaMA-2-70B-AIC": {
        "full_instruct": 64.7,
        "token_instruct": 75.4,
        "token_base": 76.0,
    },
}


def _fit_params() -> MechanismParams:
    """Derive the calibrated parameter set from the paper targets.

    The derivation mirrors the procedure in the module docstring, executed
    numerically so changing ``PAPER_TABLE_ONE`` (e.g. to a revised
    camera-ready) re-fits automatically.
    """
    t = PAPER_TABLE_ONE
    native = {
        name: t[name]["token_base"]
        for name in ("LLaMA-2-7B", "LLaMA-3-8B", "LLaMA-2-70B")
    }
    k0_8b = (native["LLaMA-3-8B"] - 25.0) / 75.0
    k0_7b = (native["LLaMA-2-7B"] - 25.0) / 75.0
    k0_70b = (native["LLaMA-2-70B"] - 25.0) / 75.0

    q_aic, q_summary = 0.75, 0.80
    d_aic = t["AstroLLaMA-3-8B-AIC"]["token_base"] - native["LLaMA-3-8B"]
    d_sum = t["AstroLLaMA-3-8B-Summary"]["token_base"] - native["LLaMA-3-8B"]
    alpha = (d_sum - d_aic) / ((q_summary - q_aic) * (1.0 - k0_8b))

    # per-tier forgetting from each tier's AIC row (token pressure tau=1)
    phi = {
        "tiny": alpha * q_aic * (1.0 - k0_7b)
        - (t["AstroLLaMA-2-7B-AIC"]["token_base"] - native["LLaMA-2-7B"]),
        "small": alpha * q_aic * (1.0 - k0_8b) - d_aic,
        "large": alpha * q_aic * (1.0 - k0_70b)
        - (t["AstroLLaMA-2-70B-AIC"]["token_base"] - native["LLaMA-2-70B"]),
    }

    # Abstract row (LoRA): with gain factor fixed at 0.75 and tau=0.9,
    # solve the LoRA forgetting multiplier.
    q_abs, tau_abs, lora_gain = 0.45, 0.9, 0.75
    d_abs = t["AstroLLaMA-2-7B-Abstract"]["token_base"] - native["LLaMA-2-7B"]
    lora_forget = (alpha * q_abs * (1.0 - k0_7b) * lora_gain - d_abs) / (
        phi["tiny"] * tau_abs
    )

    sft_token_shift = {}
    instruct_gap = {}
    # token_base of each entry under the fitted CPT mechanism:
    def fitted_tb(name: str) -> float:
        return t[name]["token_base"]

    for name, row in t.items():
        if row["token_instruct"] is not None:
            sft_token_shift[name] = row["token_instruct"] - fitted_tb(name)
        if row["full_instruct"] is not None and row["token_instruct"] is not None:
            instruct_gap[name] = row["token_instruct"] - row["full_instruct"]

    return MechanismParams(
        native_token_base=native,
        alpha=alpha,
        dataset_quality={"abstract": q_abs, "aic": q_aic, "summary": q_summary},
        dataset_tokens={"abstract": tau_abs, "aic": 1.0, "summary": 1.0},
        phi=phi,
        lora_gain_factor=lora_gain,
        lora_forget_factor=lora_forget,
        sft_token_shift=sft_token_shift,
        instruct_gap=instruct_gap,
    )


CALIBRATED_PARAMS = _fit_params()


def calibration_error(tolerance: float = 0.5) -> Dict[str, float]:
    """Max |surrogate - paper| per method; raises if any exceeds tolerance."""
    model = SurrogateModel(CALIBRATED_PARAMS)
    errors: Dict[str, float] = {"token_base": 0.0, "token_instruct": 0.0, "full_instruct": 0.0}
    for entry in zoo_entries():
        scores = model.scores(entry).as_dict()
        for method, target in PAPER_TABLE_ONE[entry.name].items():
            if target is None:
                continue
            got = scores[method]
            if got is None:
                raise AssertionError(f"surrogate missing {entry.name}/{method}")
            err = abs(got - target)
            errors[method] = max(errors[method], err)
            if err > tolerance:
                raise AssertionError(
                    f"{entry.name}/{method}: surrogate {got:.2f} vs paper "
                    f"{target:.2f} (err {err:.2f} > {tolerance})"
                )
    return errors
