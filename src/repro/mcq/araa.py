"""Synthetic Annual Review of Astronomy and Astrophysics articles.

Each review comprehensively summarizes one subfield: it realizes many of
the topic's facts as consensus statements with connective review prose,
the structure the paper's MCQ extraction relies on ("a broad, non-myopic
view of each topic ... from world leaders").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.corpus.knowledge import Fact, KnowledgeBase
from repro.utils.rng import new_rng

_REVIEW_CONNECTIVES = (
    "a consensus has emerged over the past decade",
    "multiple independent groups now agree on this picture",
    "the field has converged on the following view",
    "this has been confirmed across several surveys",
    "the evidence assembled in this review supports the interpretation",
)


@dataclass
class ReviewArticle:
    """One synthetic ARAA review."""

    article_id: str  # e.g. "2003ARAA..41..645"
    year: int
    volume: int
    topic: str
    text: str
    fact_ids: List[int]

    @property
    def word_count(self) -> int:
        return len(self.text.split())


def generate_review_articles(
    knowledge: KnowledgeBase,
    n_articles: int = 885,
    facts_per_article: int = 8,
    seed: int = 0,
    start_year: int = 1971,
    min_topic_facts: int = 0,
) -> List[ReviewArticle]:
    """Generate ``n_articles`` reviews, cycling topics round-robin.

    Fact sampling per article is deterministic in (seed, index).  Articles
    on the same topic overlap in fact coverage (as real reviews of the same
    subfield do), but the extractor downstream never asks the same fact
    twice within one article.  Topics with fewer than ``min_topic_facts``
    facts are skipped (small worlds can have sparse topics).
    """
    if n_articles < 1:
        raise ValueError("n_articles must be >= 1")
    topics = [
        t
        for t in knowledge.topics
        if len(knowledge.facts_for_topic(t)) >= min_topic_facts
    ]
    if not topics:
        raise ValueError(
            f"no topic has >= {min_topic_facts} facts (world too small)"
        )
    articles: List[ReviewArticle] = []
    for i in range(n_articles):
        rng = new_rng(seed, "araa", i)
        topic = topics[i % len(topics)]
        pool = knowledge.facts_for_topic(topic)
        k = min(facts_per_article, len(pool))
        idx = rng.choice(len(pool), size=k, replace=False)
        facts = [pool[j] for j in idx]
        sentences: List[str] = [f"this review surveys recent progress on {topic} ."]
        for f in facts:
            conn = _REVIEW_CONNECTIVES[int(rng.integers(0, len(_REVIEW_CONNECTIVES)))]
            sentences.append(f"{conn} : {f.statement(int(rng.integers(0, 4)))}")
        year = start_year + (i % 53)  # spread over 53 annual volumes
        volume = 9 + (i % 53)
        articles.append(
            ReviewArticle(
                article_id=f"{year}ARAA..{volume:02d}..{100 + i % 800}",
                year=year,
                volume=volume,
                topic=topic,
                text=" ".join(sentences),
                fact_ids=[f.fact_id for f in facts],
            )
        )
    return articles
