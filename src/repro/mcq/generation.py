"""MCQ extraction from review articles (the Gemini-1.5-Pro analogue).

The extractor enforces the paper's design principles:

* questions are standalone — realized purely from the fact, never
  referencing "this article" or its figures;
* options are equal-form — the fact's distractors share the unit and value
  style of the correct answer (no elimination "based on superficial
  characteristics");
* five questions per article, four options each;
* the answer letter is uniformly shuffled per question.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.knowledge import ANSWER_LETTERS, Fact, KnowledgeBase
from repro.mcq.araa import ReviewArticle
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class MCQuestion:
    """One benchmark item."""

    question_id: int
    article_id: str
    topic: str
    fact_id: int
    question: str
    options: Tuple[str, str, str, str]
    correct_idx: int  # 0..3
    explanation: str

    @property
    def correct_letter(self) -> str:
        return ANSWER_LETTERS[self.correct_idx]

    def option_block(self) -> str:
        """The ``A : ... / B : ...`` lines shared by every prompt style."""
        return "\n".join(
            f"{letter} : {value}"
            for letter, value in zip(ANSWER_LETTERS, self.options)
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "question_id": self.question_id,
            "article_id": self.article_id,
            "topic": self.topic,
            "fact_id": self.fact_id,
            "question": self.question,
            "options": list(self.options),
            "correct_idx": self.correct_idx,
            "explanation": self.explanation,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MCQuestion":
        return cls(
            question_id=int(data["question_id"]),
            article_id=str(data["article_id"]),
            topic=str(data["topic"]),
            fact_id=int(data["fact_id"]),
            question=str(data["question"]),
            options=tuple(data["options"]),  # type: ignore[arg-type]
            correct_idx=int(data["correct_idx"]),
            explanation=str(data["explanation"]),
        )


@dataclass
class MCQExtractor:
    """Extracts MCQs from reviews against the source knowledge base."""

    knowledge: KnowledgeBase
    questions_per_article: int = 5
    seed: int = 0

    def extract(self, articles: Sequence[ReviewArticle]) -> List[MCQuestion]:
        fact_by_id = {f.fact_id: f for f in self.knowledge.facts}
        questions: List[MCQuestion] = []
        qid = 0
        for art_index, article in enumerate(articles):
            rng = new_rng(self.seed, "mcq", art_index)
            facts = [fact_by_id[fid] for fid in article.fact_ids if fid in fact_by_id]
            if len(facts) < self.questions_per_article:
                raise ValueError(
                    f"article {article.article_id} realizes only {len(facts)} "
                    f"facts; need {self.questions_per_article}"
                )
            pick = rng.choice(
                len(facts), size=self.questions_per_article, replace=False
            )
            for j in pick:
                fact = facts[j]
                options, correct_idx = fact.option_values_shuffled(rng)
                explanation = (
                    f"the review states that {fact.statement(0)} hence option "
                    f"{ANSWER_LETTERS[correct_idx]} is correct ."
                )
                questions.append(
                    MCQuestion(
                        question_id=qid,
                        article_id=article.article_id,
                        topic=article.topic,
                        fact_id=fact.fact_id,
                        question=fact.question(),
                        options=tuple(options),
                        correct_idx=correct_idx,
                        explanation=explanation,
                    )
                )
                qid += 1
        return questions
