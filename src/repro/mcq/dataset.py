"""The benchmark container: splits, serialization, scoring."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.corpus.knowledge import KnowledgeBase
from repro.mcq.araa import generate_review_articles
from repro.mcq.generation import MCQExtractor, MCQuestion
from repro.utils.rng import new_rng

PathLike = Union[str, Path]


@dataclass
class MCQBenchmark:
    """A frozen MCQ set with a small dev split for few-shot prompting.

    The paper's two-shot next-token method needs example questions with
    answers; ``dev`` holds those (they are excluded from scoring), ``test``
    is everything else.
    """

    questions: List[MCQuestion]
    dev_size: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dev_size >= len(self.questions):
            raise ValueError("dev_size must be smaller than the question count")
        order = new_rng(self.seed, "benchmark-split").permutation(
            len(self.questions)
        )
        self._dev_idx = sorted(int(i) for i in order[: self.dev_size])
        dev_set = set(self._dev_idx)
        self._test_idx = [i for i in range(len(self.questions)) if i not in dev_set]

    def __len__(self) -> int:
        return len(self.questions)

    @property
    def dev(self) -> List[MCQuestion]:
        return [self.questions[i] for i in self._dev_idx]

    @property
    def test(self) -> List[MCQuestion]:
        return [self.questions[i] for i in self._test_idx]

    def few_shot(self, n: int = 2) -> List[MCQuestion]:
        if n > len(self._dev_idx):
            raise ValueError(f"only {len(self._dev_idx)} dev questions available")
        return self.dev[:n]

    def by_topic(self) -> Dict[str, List[MCQuestion]]:
        out: Dict[str, List[MCQuestion]] = {}
        for q in self.test:
            out.setdefault(q.topic, []).append(q)
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def accuracy(
        questions: Sequence[MCQuestion], predictions: Sequence[Optional[int]]
    ) -> float:
        """Fraction correct; unparseable predictions (None) count wrong."""
        if len(questions) != len(predictions):
            raise ValueError("questions and predictions must align")
        if not questions:
            raise ValueError("empty question set")
        hits = sum(
            1
            for q, p in zip(questions, predictions)
            if p is not None and p == q.correct_idx
        )
        return hits / len(questions)

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        payload = {
            "dev_size": self.dev_size,
            "seed": self.seed,
            "questions": [q.as_dict() for q in self.questions],
        }
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "MCQBenchmark":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            questions=[MCQuestion.from_dict(q) for q in data["questions"]],
            dev_size=int(data["dev_size"]),
            seed=int(data["seed"]),
        )


def build_benchmark(
    knowledge: KnowledgeBase,
    n_articles: int = 885,
    questions_per_article: int = 5,
    facts_per_article: int = 8,
    dev_size: int = 8,
    seed: int = 0,
) -> MCQBenchmark:
    """End-to-end benchmark build: reviews -> extraction -> container.

    Defaults reproduce the paper's 885 x 5 = 4,425-question set.
    """
    articles = generate_review_articles(
        knowledge,
        n_articles=n_articles,
        facts_per_article=facts_per_article,
        seed=seed,
        min_topic_facts=questions_per_article,
    )
    extractor = MCQExtractor(
        knowledge, questions_per_article=questions_per_article, seed=seed
    )
    return MCQBenchmark(extractor.extract(articles), dev_size=dev_size, seed=seed)
