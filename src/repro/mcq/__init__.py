"""The astronomy MCQ benchmark (the Ting et al. 2024 dataset analogue).

Pipeline mirrors Section IV of the paper:

* :mod:`repro.mcq.araa` — synthetic Annual-Review-style articles: one
  comprehensive review per (topic, volume), synthesizing that subfield's
  facts;
* :mod:`repro.mcq.generation` — the long-context MCQ extractor (the
  Gemini-1.5-Pro analogue): 5 questions per article, 4 options each,
  honouring the paper's design principles (standalone questions, equal-
  length options, consensus knowledge);
* :mod:`repro.mcq.dataset` — the benchmark container with dev/test splits
  and (de)serialization;
* :mod:`repro.mcq.quality` — validators for the design rules.

The default build is 885 articles x 5 questions = 4,425 MCQs, exactly the
paper's benchmark size.
"""

from repro.mcq.araa import ReviewArticle, generate_review_articles
from repro.mcq.generation import MCQExtractor, MCQuestion
from repro.mcq.dataset import MCQBenchmark, build_benchmark
from repro.mcq.release import (
    ScoringServer,
    export_answer_key,
    export_public,
    verify_release_integrity,
)
from repro.mcq.quality import (
    QualityReport,
    check_option_lengths,
    check_option_uniqueness,
    check_letter_balance,
    validate_benchmark,
)

__all__ = [
    "ReviewArticle",
    "generate_review_articles",
    "MCQuestion",
    "MCQExtractor",
    "MCQBenchmark",
    "build_benchmark",
    "ScoringServer",
    "export_public",
    "export_answer_key",
    "verify_release_integrity",
    "QualityReport",
    "check_option_lengths",
    "check_option_uniqueness",
    "check_letter_balance",
    "validate_benchmark",
]
