"""Benchmark quality validators (the paper's MCQ design rules)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.corpus.knowledge import ANSWER_LETTERS
from repro.mcq.generation import MCQuestion

# phrases a standalone question must never contain (article-dependence)
_FORBIDDEN = ("this article", "this review", "the figure", "the table", "section")


@dataclass
class QualityReport:
    """Aggregate validation outcome."""

    n_questions: int
    option_length_violations: List[int] = field(default_factory=list)
    duplicate_option_violations: List[int] = field(default_factory=list)
    dependence_violations: List[int] = field(default_factory=list)
    letter_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not (
            self.option_length_violations
            or self.duplicate_option_violations
            or self.dependence_violations
        )

    @property
    def max_letter_skew(self) -> float:
        """Deviation of the most common answer letter from uniform (0.25)."""
        if not self.letter_counts or self.n_questions == 0:
            return 0.0
        top = max(self.letter_counts.values())
        return top / self.n_questions - 0.25


def check_option_lengths(q: MCQuestion, tolerance: float = 2.0) -> bool:
    """Options must be of comparable length (ratio longest/shortest)."""
    lengths = [max(len(opt.split()), 1) for opt in q.options]
    return max(lengths) / min(lengths) <= tolerance


def check_option_uniqueness(q: MCQuestion) -> bool:
    return len(set(q.options)) == len(q.options)


def check_standalone(q: MCQuestion) -> bool:
    lowered = q.question.lower()
    return not any(phrase in lowered for phrase in _FORBIDDEN)


def check_letter_balance(
    questions: Sequence[MCQuestion], max_skew: float = 0.08
) -> bool:
    """The correct letter should be near-uniform over A-D."""
    if not questions:
        return True
    counts = np.zeros(4)
    for q in questions:
        counts[q.correct_idx] += 1
    return float(counts.max() / counts.sum() - 0.25) <= max_skew


def validate_benchmark(
    questions: Sequence[MCQuestion], length_tolerance: float = 2.0
) -> QualityReport:
    """Run every design-rule check; returns a full report."""
    report = QualityReport(n_questions=len(questions))
    for q in questions:
        if not check_option_lengths(q, length_tolerance):
            report.option_length_violations.append(q.question_id)
        if not check_option_uniqueness(q):
            report.duplicate_option_violations.append(q.question_id)
        if not check_standalone(q):
            report.dependence_violations.append(q.question_id)
        letter = ANSWER_LETTERS[q.correct_idx]
        report.letter_counts[letter] = report.letter_counts.get(letter, 0) + 1
    return report
