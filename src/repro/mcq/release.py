"""Benchmark release tooling.

Appendix A: "We are in the process of releasing this benchmarking dataset
but will withhold the answer key to prevent question leakage and maintain
an objective benchmark."  This module implements that release flow:

* :func:`export_public` — questions + options only (no ``correct_idx``,
  no explanations);
* :func:`export_answer_key` — the withheld key, separately;
* :class:`ScoringServer` — the key-holder side: accepts predictions,
  returns the score without revealing per-question correctness (leakage-
  resistant scoring);
* :func:`verify_release_integrity` — checks a public file leaks nothing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.mcq.dataset import MCQBenchmark
from repro.mcq.generation import MCQuestion

PathLike = Union[str, Path]

_FORBIDDEN_PUBLIC_FIELDS = ("correct_idx", "explanation", "fact_id")


def _fingerprint(question: MCQuestion) -> str:
    """Stable id binding a public question to its key entry.

    Includes the source article id: distinct reviews of the same subfield
    can legitimately ask the same fact with the same option order (they do
    in this synthetic world and plausibly in the real dataset), and key
    entries must still be one-to-one with public items.
    """
    payload = json.dumps(
        {
            "article": question.article_id,
            "q": question.question,
            "options": list(question.options),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def export_public(benchmark: MCQBenchmark, path: PathLike) -> int:
    """Write the answer-free public benchmark; returns question count."""
    items = []
    for q in benchmark.questions:
        items.append(
            {
                "fingerprint": _fingerprint(q),
                "article_id": q.article_id,
                "topic": q.topic,
                "question": q.question,
                "options": list(q.options),
            }
        )
    Path(path).write_text(
        json.dumps({"questions": items}, indent=2), encoding="utf-8"
    )
    return len(items)


def export_answer_key(benchmark: MCQBenchmark, path: PathLike) -> None:
    """Write the withheld key (fingerprint -> correct option index)."""
    key = {_fingerprint(q): q.correct_idx for q in benchmark.questions}
    Path(path).write_text(json.dumps(key, indent=2), encoding="utf-8")


def verify_release_integrity(public_path: PathLike) -> List[str]:
    """Return a list of leakage problems in a public release (empty = ok)."""
    data = json.loads(Path(public_path).read_text(encoding="utf-8"))
    problems: List[str] = []
    seen = set()
    for i, item in enumerate(data.get("questions", [])):
        for field_name in _FORBIDDEN_PUBLIC_FIELDS:
            if field_name in item:
                problems.append(f"question {i}: leaks {field_name!r}")
        fp = item.get("fingerprint")
        if not fp:
            problems.append(f"question {i}: missing fingerprint")
        elif fp in seen:
            problems.append(f"question {i}: duplicate fingerprint {fp}")
        else:
            seen.add(fp)
        if len(item.get("options", [])) != 4:
            problems.append(f"question {i}: must have exactly 4 options")
    return problems


@dataclass
class ScoringServer:
    """Key-holder scoring: aggregate accuracy only, never per-item truth."""

    key: Dict[str, int]
    min_batch: int = 20  # refuse tiny batches that would leak single answers

    @classmethod
    def from_key_file(cls, path: PathLike, min_batch: int = 20) -> "ScoringServer":
        return cls(
            key=json.loads(Path(path).read_text(encoding="utf-8")),
            min_batch=min_batch,
        )

    def score(self, predictions: Dict[str, Optional[int]]) -> Dict[str, float]:
        """Score a fingerprint->prediction map.

        Unparseable (None) predictions count wrong, exactly as the paper's
        evaluation does.  Raises on batches small enough to reverse-engineer
        individual answers.
        """
        if len(predictions) < self.min_batch:
            raise ValueError(
                f"batch of {len(predictions)} < minimum {self.min_batch} "
                f"(single-question probing would leak the key)"
            )
        unknown = [fp for fp in predictions if fp not in self.key]
        if unknown:
            raise KeyError(f"{len(unknown)} unknown fingerprints (e.g. {unknown[0]})")
        hits = sum(
            1
            for fp, pred in predictions.items()
            if pred is not None and pred == self.key[fp]
        )
        return {
            "n": float(len(predictions)),
            "accuracy": hits / len(predictions),
        }
