"""Supervised fine-tuning (SFT) driver.

Turns conversations into (prompt, response) token pairs under a chat
template, then trains with the LM objective restricted to response tokens.
The paper's SFT recipe (Section III): learning rate 3e-7, one epoch, total
batch 48, max token length 2048, warmup 0.03, cosine decay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.model.transformer import TransformerLM
from repro.train.dataloader import PaddedBatch, pad_examples
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.utils.rng import new_rng


class TokenizerLike(Protocol):
    def encode(self, text: str, add_bos: bool = ..., add_eos: bool = ...) -> List[int]:
        ...


@dataclass(frozen=True)
class ChatTemplate:
    """Plain-text chat markup.

    The micro zoo uses in-vocabulary words rather than reserved control
    tokens so that base models (which have seen only prose) are not thrown
    fully out of distribution by the template — the same reason real chat
    templates reuse the base tokenizer's vocabulary.
    """

    user_prefix: str = "User :"
    assistant_prefix: str = "Assistant :"
    turn_separator: str = "\n"

    def render_prompt(self, user_message: str, system: str = "") -> str:
        parts = []
        if system:
            parts.append(system)
        parts.append(f"{self.user_prefix} {user_message}")
        parts.append(self.assistant_prefix)
        return self.turn_separator.join(parts)

    def render_full(self, user_message: str, assistant_message: str, system: str = "") -> str:
        return f"{self.render_prompt(user_message, system)} {assistant_message}"


@dataclass
class SFTExample:
    """One single-turn conversation."""

    user: str
    assistant: str
    system: str = ""
    source: str = ""  # provenance tag: "astro-qa" | "lima" | "open-orca" | ...

    def is_astronomy(self) -> bool:
        return self.source == "astro-qa"


@dataclass
class SFTConfig:
    """SFT hyperparameters (defaults = the paper's reported values)."""

    learning_rate: float = 3e-7
    total_batch_size: int = 48
    max_token_length: int = 2048
    warmup_ratio: float = 0.03
    epochs: float = 1.0
    schedule: str = "cosine"
    clip_norm: float = 1.0
    weight_decay: float = 0.0
    bf16: bool = True
    microbatch_size: int = 0
    seed: int = 0
    min_steps: int = 1

    def __post_init__(self) -> None:
        if self.microbatch_size == 0:
            self.microbatch_size = self.total_batch_size
        if self.total_batch_size % self.microbatch_size != 0:
            raise ValueError("total_batch_size must be a multiple of microbatch_size")

    @property
    def grad_accum(self) -> int:
        return self.total_batch_size // self.microbatch_size

    @classmethod
    def paper(cls, **overrides) -> "SFTConfig":
        base = dict(
            learning_rate=3e-7,
            total_batch_size=48,
            max_token_length=2048,
            warmup_ratio=0.03,
            epochs=1.0,
            schedule="cosine",
            bf16=True,
        )
        base.update(overrides)
        return cls(**base)


@dataclass
class SFTResult:
    history: TrainingHistory
    examples: int
    steps: int
    response_tokens: int
    config: SFTConfig


class SupervisedFineTuner:
    """Fine-tunes a model on chat conversations with prompt-loss masking."""

    def __init__(
        self,
        tokenizer: TokenizerLike,
        pad_id: int,
        eos_id: int,
        template: Optional[ChatTemplate] = None,
        config: Optional[SFTConfig] = None,
    ) -> None:
        self.tokenizer = tokenizer
        self.pad_id = pad_id
        self.eos_id = eos_id
        self.template = template or ChatTemplate()
        self.config = config or SFTConfig()

    # ------------------------------------------------------------------
    def tokenize_example(
        self, example: SFTExample, max_len: Optional[int] = None
    ) -> Tuple[List[int], List[int]]:
        """Return (prompt_ids, response_ids) for one conversation."""
        prompt_text = self.template.render_prompt(example.user, example.system)
        prompt_ids = self.tokenizer.encode(prompt_text, add_bos=True)
        response_ids = self.tokenizer.encode(example.assistant) + [self.eos_id]
        if max_len is not None and len(prompt_ids) + len(response_ids) > max_len:
            keep = max(max_len - len(response_ids), 8)
            prompt_ids = prompt_ids[:keep]
            response_ids = response_ids[: max(max_len - len(prompt_ids), 1)]
        return prompt_ids, response_ids

    def build_batches(
        self,
        examples: Sequence[SFTExample],
        batch_size: int,
        max_len: int,
        seed: int,
        epoch: int,
    ) -> List[PaddedBatch]:
        rng = new_rng(seed, "sft-epoch", epoch)
        order = rng.permutation(len(examples))
        batches: List[PaddedBatch] = []
        pairs = [self.tokenize_example(examples[i], max_len) for i in order]
        for start in range(0, len(pairs), batch_size):
            chunk = pairs[start : start + batch_size]
            if not chunk:
                break
            batches.append(pad_examples(chunk, self.pad_id, max_len))
        return batches

    # ------------------------------------------------------------------
    def run(
        self, model: TransformerLM, examples: Sequence[SFTExample]
    ) -> SFTResult:
        if not examples:
            raise ValueError("no SFT examples provided")
        cfg = self.config
        max_len = min(cfg.max_token_length, model.config.max_seq_len)
        micro_per_epoch = max(
            (len(examples) + cfg.microbatch_size - 1) // cfg.microbatch_size, 1
        )
        steps_per_epoch = max(micro_per_epoch // cfg.grad_accum, 1)
        total_steps = max(int(round(steps_per_epoch * cfg.epochs)), cfg.min_steps)
        trainer = Trainer(
            model,
            TrainingConfig(
                learning_rate=cfg.learning_rate,
                total_steps=total_steps,
                warmup_ratio=cfg.warmup_ratio,
                schedule=cfg.schedule,
                grad_accum=cfg.grad_accum,
                clip_norm=cfg.clip_norm,
                weight_decay=cfg.weight_decay,
                bf16=cfg.bf16,
            ),
        )
        epoch_counter = {"epoch": 0}
        response_tokens = 0

        def make_batches():
            batches = self.build_batches(
                examples,
                cfg.microbatch_size,
                max_len,
                cfg.seed,
                epoch_counter["epoch"],
            )
            epoch_counter["epoch"] += 1
            for b in batches:
                yield b.inputs, b.targets, b.loss_mask

        history = trainer.train(make_batches)
        for ex in examples:
            _, resp = self.tokenize_example(ex, max_len)
            response_tokens += len(resp)
        return SFTResult(
            history=history,
            examples=len(examples),
            steps=total_steps,
            response_tokens=response_tokens,
            config=cfg,
        )
