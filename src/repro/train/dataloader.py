"""Data loading: document packing for CPT, padded batching for SFT.

Packing follows the standard pretraining recipe: documents are tokenized,
joined with EOS separators into one long stream, and the stream is sliced
into fixed-length windows.  No token is wasted on padding, and each window
yields ``seq_len`` prediction targets (the shifted window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import new_rng


def pack_documents(
    token_docs: Sequence[Sequence[int]],
    seq_len: int,
    eos_id: int,
    drop_last: bool = True,
) -> np.ndarray:
    """Concatenate documents (EOS-separated) and slice into windows.

    Returns an int64 array of shape ``(n_windows, seq_len + 1)``; window
    ``[i, :-1]`` is the input and ``[i, 1:]`` the target.  The final
    partial window is dropped unless ``drop_last=False``, in which case it
    is padded with EOS (EOS predictions are harmless for the LM objective).
    """
    if seq_len < 1:
        raise ValueError("seq_len must be >= 1")
    stream: List[int] = []
    for doc in token_docs:
        stream.extend(int(t) for t in doc)
        stream.append(eos_id)
    window = seq_len + 1
    if len(stream) < window:
        if drop_last:
            return np.zeros((0, window), dtype=np.int64)
        stream = stream + [eos_id] * (window - len(stream))
    n_full = len(stream) // window
    remainder = len(stream) - n_full * window
    if remainder and not drop_last:
        stream = stream + [eos_id] * (window - remainder)
        n_full += 1
    arr = np.asarray(stream[: n_full * window], dtype=np.int64)
    return arr.reshape(n_full, window)


class PackedDataset:
    """Shuffled mini-batch iterator over packed windows.

    Iteration order is reshuffled every epoch from a per-epoch derived seed,
    so runs are reproducible regardless of how many epochs were consumed
    beforehand.
    """

    def __init__(
        self,
        windows: np.ndarray,
        batch_size: int,
        seed: int = 0,
        drop_last_batch: bool = False,
    ) -> None:
        if windows.ndim != 2:
            raise ValueError("windows must be 2-D (n, seq_len+1)")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.windows = windows
        self.batch_size = batch_size
        self.seed = seed
        self.drop_last_batch = drop_last_batch
        self.epoch = 0

    def __len__(self) -> int:
        n = self.windows.shape[0]
        if self.drop_last_batch:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def num_windows(self) -> int:
        return int(self.windows.shape[0])

    @property
    def tokens_per_epoch(self) -> int:
        return int(self.windows.shape[0] * (self.windows.shape[1] - 1))

    def batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(inputs, targets)`` batches for one epoch, then bump epoch."""
        rng = new_rng(self.seed, "epoch", self.epoch)
        order = rng.permutation(self.windows.shape[0])
        n = len(self) * self.batch_size if self.drop_last_batch else len(order)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if len(idx) == 0:
                break
            batch = self.windows[idx]
            yield batch[:, :-1], batch[:, 1:]
        self.epoch += 1


@dataclass
class PaddedBatch:
    """A right-padded SFT batch: inputs, shifted targets, and a loss mask."""

    inputs: np.ndarray  # (B, T) int64
    targets: np.ndarray  # (B, T) int64
    loss_mask: np.ndarray  # (B, T) float32; 1 where the loss applies


def pad_examples(
    examples: Sequence[Tuple[Sequence[int], Sequence[int]]],
    pad_id: int,
    max_len: Optional[int] = None,
) -> PaddedBatch:
    """Assemble (prompt_ids, response_ids) pairs into a masked LM batch.

    The model is trained to predict the response tokens only: positions
    whose *target* falls inside the prompt (or padding) carry zero loss
    mask.  Sequences longer than ``max_len`` are truncated from the right.
    """
    seqs = []
    prompt_lens = []
    for prompt, response in examples:
        seq = list(prompt) + list(response)
        if max_len is not None and len(seq) > max_len:
            seq = seq[:max_len]
        seqs.append(seq)
        prompt_lens.append(min(len(prompt), len(seq)))
    T = max(len(s) for s in seqs)
    if T < 2:
        raise ValueError("examples must contain at least 2 tokens")
    B = len(seqs)
    inputs = np.full((B, T - 1), pad_id, dtype=np.int64)
    targets = np.full((B, T - 1), pad_id, dtype=np.int64)
    mask = np.zeros((B, T - 1), dtype=np.float32)
    for i, (seq, p_len) in enumerate(zip(seqs, prompt_lens)):
        L = len(seq)
        inputs[i, : L - 1] = seq[:-1]
        targets[i, : L - 1] = seq[1:]
        # target position j predicts seq[j+1]; loss applies iff j+1 >= p_len
        start = max(p_len - 1, 0)
        mask[i, start : L - 1] = 1.0
    return PaddedBatch(inputs, targets, mask)
