"""Optimizers operating on named parameter/gradient dicts.

Parameters are updated in place (the model exposes references, not copies),
so an optimizer bound to a model at construction keeps working as training
proceeds.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

ParamDict = Dict[str, np.ndarray]


def clip_grad_norm(grads: ParamDict, max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging / divergence detection).
    """
    total = 0.0
    for g in grads.values():
        total += float(np.sum(g.astype(np.float64) ** 2))
    norm = math.sqrt(total)
    if max_norm > 0 and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for g in grads.values():
            g *= scale
    return norm


class Optimizer:
    """Base optimizer over a (params, grads) pair of name-aligned dicts."""

    def __init__(self, params: ParamDict, grads: ParamDict) -> None:
        if set(params) != set(grads):
            raise KeyError("params and grads must have identical keys")
        self.params = params
        self.grads = grads
        self.step_count = 0

    def step(self, lr: float) -> None:
        raise NotImplementedError


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Weight decay is skipped for 1-D parameters (norm gains, biases), the
    standard practice that LMFlow and friends follow.
    """

    def __init__(
        self,
        params: ParamDict,
        grads: ParamDict,
        betas: tuple = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, grads)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.m: ParamDict = {k: np.zeros_like(v) for k, v in params.items()}
        self.v: ParamDict = {k: np.zeros_like(v) for k, v in params.items()}

    def step(self, lr: float) -> None:
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for key, p in self.params.items():
            g = self.grads[key]
            m, v = self.m[key], self.v[key]
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            m_hat = m / bc1
            v_hat = v / bc2
            if self.weight_decay > 0 and p.ndim > 1:
                p -= lr * self.weight_decay * p
            p -= lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SGD(Optimizer):
    """Plain SGD with optional classical momentum."""

    def __init__(
        self, params: ParamDict, grads: ParamDict, momentum: float = 0.0
    ) -> None:
        super().__init__(params, grads)
        self.momentum = momentum
        self.velocity: Optional[ParamDict] = None
        if momentum > 0:
            self.velocity = {k: np.zeros_like(v) for k, v in params.items()}

    def step(self, lr: float) -> None:
        self.step_count += 1
        for key, p in self.params.items():
            g = self.grads[key]
            if self.velocity is not None:
                vel = self.velocity[key]
                vel *= self.momentum
                vel += g
                p -= lr * vel
            else:
                p -= lr * g
