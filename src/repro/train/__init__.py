"""Training framework — the reproduction's LMFlow analogue.

Provides the two-stage recipe from the paper (Section III):

* :mod:`repro.train.cpt` — continual pretraining on a domain corpus
  (next-token objective over packed documents);
* :mod:`repro.train.sft` — supervised fine-tuning on conversations
  (next-token objective with the prompt positions masked out of the loss).

Both drivers share the :class:`~repro.train.trainer.Trainer` engine, which
implements the optimizer step loop with warmup + cosine decay, gradient
accumulation, global-norm clipping and bf16 parameter rounding — the same
knobs the paper reports (lr 2e-5 / 3e-7, warmup ratio 0.03, cosine decay,
bf16, one epoch).
"""

from repro.train.optimizer import SGD, AdamW, Optimizer, clip_grad_norm
from repro.train.schedule import (
    ConstantSchedule,
    CosineSchedule,
    LinearSchedule,
    make_schedule,
)
from repro.train.dataloader import (
    PackedDataset,
    PaddedBatch,
    pack_documents,
    pad_examples,
)
from repro.train.trainer import Trainer, TrainerHooks, TrainingConfig, TrainingHistory
from repro.train.checkpointing import (
    CheckpointIntegrityError,
    checkpoint_dir_for_step,
    latest_valid_checkpoint,
    list_checkpoints,
    load_state_arrays,
    load_training_state,
    save_state_arrays,
    save_training_state,
    set_post_save_hook,
    verify_checkpoint,
    write_manifest,
)
from repro.train.cpt import ContinualPretrainer, CPTConfig, CPTResult
from repro.train.sft import (
    ChatTemplate,
    SFTConfig,
    SFTExample,
    SFTResult,
    SupervisedFineTuner,
)
from repro.train.metrics import corpus_perplexity, ema

__all__ = [
    "Optimizer",
    "AdamW",
    "SGD",
    "clip_grad_norm",
    "CosineSchedule",
    "LinearSchedule",
    "ConstantSchedule",
    "make_schedule",
    "PackedDataset",
    "PaddedBatch",
    "pack_documents",
    "pad_examples",
    "Trainer",
    "TrainerHooks",
    "TrainingConfig",
    "TrainingHistory",
    "CheckpointIntegrityError",
    "checkpoint_dir_for_step",
    "latest_valid_checkpoint",
    "list_checkpoints",
    "load_state_arrays",
    "load_training_state",
    "save_state_arrays",
    "save_training_state",
    "set_post_save_hook",
    "verify_checkpoint",
    "write_manifest",
    "ContinualPretrainer",
    "CPTConfig",
    "CPTResult",
    "ChatTemplate",
    "SFTExample",
    "SFTConfig",
    "SFTResult",
    "SupervisedFineTuner",
    "corpus_perplexity",
    "ema",
]
