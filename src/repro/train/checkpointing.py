"""Training-state checkpointing: resume-exact snapshots.

The paper's 70B CPT ran ~2,000 GPU-hours on a shared leadership facility —
the kind of job that *will* be preempted.  A checkpoint captures model
parameters, AdamW moments, and the step counter, and restores them so that
a resumed run is bit-identical to an uninterrupted one (asserted by tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.model.layers import Module
from repro.train.optimizer import AdamW

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_training_state(
    path: PathLike,
    model: Module,
    optimizer: AdamW,
    step: int,
    extra: Optional[dict] = None,
) -> None:
    """Snapshot model + optimizer + progress under ``path`` (a directory)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path / "model.npz", **model.named_parameters())
    moments = {}
    for key, arr in optimizer.m.items():
        moments[f"m::{key}"] = arr
    for key, arr in optimizer.v.items():
        moments[f"v::{key}"] = arr
    np.savez_compressed(path / "optimizer.npz", **moments)
    meta = {
        "format_version": _FORMAT_VERSION,
        "step": int(step),
        "optimizer_step_count": int(optimizer.step_count),
        "beta1": optimizer.beta1,
        "beta2": optimizer.beta2,
        "eps": optimizer.eps,
        "weight_decay": optimizer.weight_decay,
        "extra": extra or {},
    }
    (path / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")


def load_training_state(
    path: PathLike, model: Module, optimizer: AdamW
) -> dict:
    """Restore a snapshot into existing model/optimizer objects.

    Returns the metadata dict (including ``step``).  Shapes and parameter
    names must match exactly; mismatches raise rather than partially load.
    """
    path = Path(path)
    meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {meta.get('format_version')} != {_FORMAT_VERSION}"
        )
    with np.load(path / "model.npz") as data:
        model.load_state({k: data[k] for k in data.files})
    with np.load(path / "optimizer.npz") as data:
        m_keys = {k[3:] for k in data.files if k.startswith("m::")}
        if m_keys != set(optimizer.m):
            raise KeyError("optimizer state keys do not match checkpoint")
        for key in optimizer.m:
            src_m = data[f"m::{key}"]
            src_v = data[f"v::{key}"]
            if src_m.shape != optimizer.m[key].shape:
                raise ValueError(f"moment shape mismatch for {key}")
            optimizer.m[key][...] = src_m
            optimizer.v[key][...] = src_v
    optimizer.step_count = int(meta["optimizer_step_count"])
    return meta
