"""Training-state checkpointing: resume-exact, integrity-checked snapshots.

The paper's 70B CPT ran ~2,000 GPU-hours on a shared leadership facility —
the kind of job that *will* be preempted.  A checkpoint captures model
parameters, AdamW moments, and the step counter, and restores them so that
a resumed run is bit-identical to an uninterrupted one (asserted by tests).

Every snapshot also carries a ``manifest.json`` of SHA-256 digests, so a
shard that was truncated or corrupted on the shared filesystem is detected
at load time (:class:`CheckpointIntegrityError`) instead of silently
resuming from garbage; the fault-injection recovery layer
(:mod:`repro.faults.recovery`) uses :func:`latest_valid_checkpoint` to fall
back to the newest snapshot whose digests still verify.

A module-level post-save hook gives the fault injector a seam to corrupt
freshly written shards *without* the save path knowing anything about
faults; the happy path is unchanged when no hook is installed.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.model.layers import Module
from repro.train.optimizer import AdamW

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

_STEP_DIR_RE = re.compile(r"^step-(\d+)$")

#: Called after every successful snapshot write as ``hook(path, step)``.
PostSaveHook = Callable[[Path, int], None]

_post_save_hook: Optional[PostSaveHook] = None


class CheckpointIntegrityError(ValueError):
    """A snapshot failed checksum validation (corrupt/truncated shard).

    This is a *detection* error raised by the loader — distinct from the
    injected fault types in :mod:`repro.faults.errors`, which only the
    fault injector may raise.  Subclasses :class:`ValueError` because a
    corrupt snapshot is one way checkpoint data can be invalid.
    """


def set_post_save_hook(hook: Optional[PostSaveHook]) -> Optional[PostSaveHook]:
    """Install (or clear, with ``None``) the post-save hook; returns the
    previous hook so callers can restore it."""
    global _post_save_hook
    previous = _post_save_hook
    _post_save_hook = hook
    return previous


def _sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def write_manifest(path: PathLike) -> Dict[str, str]:
    """Hash every file in the snapshot directory into ``manifest.json``."""
    path = Path(path)
    digests = {
        p.name: _sha256(p)
        for p in sorted(path.iterdir())
        if p.is_file() and p.name != MANIFEST_NAME
    }
    manifest = {"format_version": _FORMAT_VERSION, "sha256": digests}
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return digests


def verify_checkpoint(path: PathLike) -> List[str]:
    """Names of snapshot files whose SHA-256 no longer matches the manifest.

    Returns an empty list when the snapshot is intact.  A missing manifest
    (pre-manifest snapshot) verifies trivially; a missing or unreadable
    *file* listed in the manifest counts as corrupt.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        return []
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        digests = dict(manifest["sha256"])
    except (ValueError, KeyError, TypeError):
        return [MANIFEST_NAME]
    bad = []
    for name, expected in sorted(digests.items()):
        target = path / name
        if not target.exists() or _sha256(target) != expected:
            bad.append(name)
    return bad


def save_training_state(
    path: PathLike,
    model: Module,
    optimizer: AdamW,
    step: int,
    extra: Optional[dict] = None,
) -> None:
    """Snapshot model + optimizer + progress under ``path`` (a directory)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path / "model.npz", **model.named_parameters())
    moments = {}
    for key, arr in optimizer.m.items():
        moments[f"m::{key}"] = arr
    for key, arr in optimizer.v.items():
        moments[f"v::{key}"] = arr
    np.savez_compressed(path / "optimizer.npz", **moments)
    meta = {
        "format_version": _FORMAT_VERSION,
        "step": int(step),
        "optimizer_step_count": int(optimizer.step_count),
        "beta1": optimizer.beta1,
        "beta2": optimizer.beta2,
        "eps": optimizer.eps,
        "weight_decay": optimizer.weight_decay,
        "extra": extra or {},
    }
    (path / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")
    write_manifest(path)
    if _post_save_hook is not None:
        _post_save_hook(path, int(step))


def load_training_state(
    path: PathLike, model: Module, optimizer: AdamW, verify: bool = True
) -> dict:
    """Restore a snapshot into existing model/optimizer objects.

    Returns the metadata dict (including ``step``).  Shapes and parameter
    names must match exactly; mismatches raise rather than partially load.
    With ``verify`` (the default) the manifest digests are checked first
    and a corrupt snapshot raises :class:`CheckpointIntegrityError` before
    anything is loaded.
    """
    path = Path(path)
    if verify:
        bad = verify_checkpoint(path)
        if bad:
            raise CheckpointIntegrityError(
                f"checkpoint {path} failed checksum validation: {', '.join(bad)}"
            )
    meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {meta.get('format_version')} != {_FORMAT_VERSION}"
        )
    with np.load(path / "model.npz") as data:
        model.load_state({k: data[k] for k in data.files})
    with np.load(path / "optimizer.npz") as data:
        m_keys = {k[3:] for k in data.files if k.startswith("m::")}
        if m_keys != set(optimizer.m):
            raise KeyError("optimizer state keys do not match checkpoint")
        for key in optimizer.m:
            src_m = data[f"m::{key}"]
            src_v = data[f"v::{key}"]
            if src_m.shape != optimizer.m[key].shape:
                raise ValueError(f"moment shape mismatch for {key}")
            optimizer.m[key][...] = src_m
            optimizer.v[key][...] = src_v
    optimizer.step_count = int(meta["optimizer_step_count"])
    return meta


# ----------------------------------------------------------------------
# Generic array-state snapshots (sharded trainables that are not Modules)
# ----------------------------------------------------------------------
def save_state_arrays(
    path: PathLike, arrays: Dict[str, np.ndarray], meta: Optional[dict] = None
) -> None:
    """Snapshot an arbitrary named-array state dict with the same
    manifest/hook machinery as :func:`save_training_state`.

    Used by trainables whose state is not a :class:`Module` — e.g. the
    tensor-parallel sharded trainer, whose parameters and moments live in
    per-rank shard dicts.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path / "state.npz", **arrays)
    payload = {"format_version": _FORMAT_VERSION, "extra": meta or {}}
    (path / "meta.json").write_text(json.dumps(payload, indent=2), encoding="utf-8")
    write_manifest(path)
    if _post_save_hook is not None:
        _post_save_hook(path, int((meta or {}).get("step", -1)))


def load_state_arrays(
    path: PathLike, verify: bool = True
) -> Tuple[Dict[str, np.ndarray], dict]:
    """Load a :func:`save_state_arrays` snapshot; returns ``(arrays, extra)``."""
    path = Path(path)
    if verify:
        bad = verify_checkpoint(path)
        if bad:
            raise CheckpointIntegrityError(
                f"checkpoint {path} failed checksum validation: {', '.join(bad)}"
            )
    meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {meta.get('format_version')} != {_FORMAT_VERSION}"
        )
    with np.load(path / "state.npz") as data:
        arrays = {k: data[k] for k in data.files}
    return arrays, dict(meta.get("extra", {}))


# ----------------------------------------------------------------------
# Snapshot discovery
# ----------------------------------------------------------------------
def checkpoint_dir_for_step(root: PathLike, step: int) -> Path:
    """Canonical per-step snapshot directory name under ``root``."""
    return Path(root) / f"step-{int(step):08d}"


def list_checkpoints(root: PathLike) -> List[Tuple[int, Path]]:
    """All ``step-*`` snapshot directories under ``root``, oldest first."""
    root = Path(root)
    if not root.exists():
        return []
    found = []
    for child in root.iterdir():
        match = _STEP_DIR_RE.match(child.name)
        if child.is_dir() and match:
            found.append((int(match.group(1)), child))
    return sorted(found)


def latest_valid_checkpoint(
    root: PathLike,
) -> Optional[Tuple[int, Path, List[Tuple[int, Path]]]]:
    """Newest snapshot under ``root`` that passes checksum validation.

    Returns ``(step, path, skipped)`` where ``skipped`` lists the newer
    snapshots that failed validation and were passed over (the recovery
    log records these fallbacks), or ``None`` when no intact snapshot
    exists.
    """
    skipped: List[Tuple[int, Path]] = []
    for step, path in reversed(list_checkpoints(root)):
        if verify_checkpoint(path):
            skipped.append((step, path))
            continue
        try:
            json.loads((path / "meta.json").read_text(encoding="utf-8"))
        except (OSError, ValueError):
            skipped.append((step, path))
            continue
        return step, path, skipped
    return None
