"""Learning-rate schedules.

The paper uses linear warmup (ratio 0.03) into cosine decay (SGDR-style,
Loshchilov & Hutter 2016) for both CPT and SFT; we provide that plus linear
and constant schedules for ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CosineSchedule:
    """Linear warmup to ``peak_lr`` then cosine decay to ``min_lr``."""

    peak_lr: float
    total_steps: int
    warmup_ratio: float = 0.03
    min_lr: float = 0.0

    def __post_init__(self) -> None:
        if self.total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if not 0.0 <= self.warmup_ratio < 1.0:
            raise ValueError("warmup_ratio must be in [0, 1)")

    @property
    def warmup_steps(self) -> int:
        return int(round(self.total_steps * self.warmup_ratio))

    def lr(self, step: int) -> float:
        """Learning rate at 0-indexed optimizer step ``step``."""
        w = self.warmup_steps
        if w > 0 and step < w:
            return self.peak_lr * (step + 1) / w
        span = max(self.total_steps - w, 1)
        progress = min(max(step - w, 0) / span, 1.0)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.peak_lr - self.min_lr) * cos


@dataclass(frozen=True)
class LinearSchedule:
    """Linear warmup then linear decay to ``min_lr``."""

    peak_lr: float
    total_steps: int
    warmup_ratio: float = 0.03
    min_lr: float = 0.0

    @property
    def warmup_steps(self) -> int:
        return int(round(self.total_steps * self.warmup_ratio))

    def lr(self, step: int) -> float:
        w = self.warmup_steps
        if w > 0 and step < w:
            return self.peak_lr * (step + 1) / w
        span = max(self.total_steps - w, 1)
        progress = min(max(step - w, 0) / span, 1.0)
        return self.peak_lr + (self.min_lr - self.peak_lr) * progress


@dataclass(frozen=True)
class ConstantSchedule:
    """Optional warmup then a flat learning rate."""

    peak_lr: float
    total_steps: int = 0
    warmup_ratio: float = 0.0

    @property
    def warmup_steps(self) -> int:
        return int(round(self.total_steps * self.warmup_ratio))

    def lr(self, step: int) -> float:
        w = self.warmup_steps
        if w > 0 and step < w:
            return self.peak_lr * (step + 1) / w
        return self.peak_lr


def make_schedule(
    name: str,
    peak_lr: float,
    total_steps: int,
    warmup_ratio: float = 0.03,
    min_lr: float = 0.0,
):
    """Factory keyed by name: ``cosine`` | ``linear`` | ``constant``."""
    if name == "cosine":
        return CosineSchedule(peak_lr, total_steps, warmup_ratio, min_lr)
    if name == "linear":
        return LinearSchedule(peak_lr, total_steps, warmup_ratio, min_lr)
    if name == "constant":
        return ConstantSchedule(peak_lr, total_steps, warmup_ratio)
    raise ValueError(f"unknown schedule {name!r}")
