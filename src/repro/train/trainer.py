"""The optimizer step loop shared by CPT and SFT.

Implements the knobs the paper reports using: AdamW, linear warmup + cosine
decay, gradient accumulation (total batch = ``batch_size * grad_accum``),
global-norm clipping, and bf16 parameter rounding after each step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.model.layers import Module
from repro.model.precision import bf16_round_
from repro.train.optimizer import AdamW, clip_grad_norm
from repro.train.schedule import make_schedule

Batch = Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]
# (inputs, targets, loss_mask-or-None)


@dataclass
class TrainingConfig:
    """Hyperparameters of one training run.

    ``grad_accum`` microbatches are accumulated before each optimizer step,
    reproducing "total batch size" semantics: the paper's 70B run uses total
    batch 160 assembled from per-device microbatches.
    """

    learning_rate: float = 1e-3
    total_steps: int = 100
    warmup_ratio: float = 0.03
    schedule: str = "cosine"
    min_lr: float = 0.0
    grad_accum: int = 1
    clip_norm: float = 1.0
    weight_decay: float = 0.0
    betas: Tuple[float, float] = (0.9, 0.95)
    bf16: bool = False
    log_every: int = 10

    def __post_init__(self) -> None:
        if self.total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if self.grad_accum < 1:
            raise ValueError("grad_accum must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class TrainingHistory:
    """Per-step log of one run."""

    losses: List[float] = field(default_factory=list)
    lrs: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    tokens_seen: int = 0
    steps: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]

    def smoothed_final_loss(self, window: int = 10) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        tail = self.losses[-window:]
        return float(np.mean(tail))


class TrainerHooks:
    """Optional observation/injection points around the step loop.

    The fault injector (:mod:`repro.faults`) subclasses this to preempt a
    run at a step boundary or perturb accumulated gradients; the default
    implementations do nothing, so a hook-less trainer behaves exactly as
    before.  ``on_step_start`` fires before any microbatch of the step;
    ``on_gradients`` fires after accumulation, before clipping and the
    optimizer update.
    """

    def on_step_start(self, step: int) -> None:  # pragma: no cover - trivial
        return None

    def on_gradients(self, step: int, grads: dict) -> None:  # pragma: no cover
        return None


class Trainer:
    """Runs a model over a batch stream for ``total_steps`` optimizer steps.

    ``batch_stream`` must be an iterable of ``(inputs, targets, mask)``
    *microbatches*; the trainer consumes ``grad_accum`` of them per optimizer
    step and loops the stream if it is exhausted (via the ``reset`` callable).
    """

    def __init__(
        self,
        model: Module,
        config: TrainingConfig,
        step_callback: Optional[Callable[[int, float, float], None]] = None,
        hooks: Optional[TrainerHooks] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.hooks = hooks
        self.schedule = make_schedule(
            config.schedule,
            config.learning_rate,
            config.total_steps,
            config.warmup_ratio,
            config.min_lr,
        )
        self.optimizer = AdamW(
            model.named_parameters(),
            model.named_gradients(),
            betas=config.betas,
            weight_decay=config.weight_decay,
        )
        self.step_callback = step_callback

    def train(
        self,
        make_batches: Callable[[], Iterable[Batch]],
    ) -> TrainingHistory:
        """Run the full step budget; returns the training history.

        ``make_batches`` is called to (re)start an epoch whenever the
        previous iterator is exhausted, so one call trains for however many
        epochs the step budget implies.
        """
        history = TrainingHistory()
        cfg = self.config
        iterator = iter(make_batches())
        for step in range(cfg.total_steps):
            if self.hooks is not None:
                self.hooks.on_step_start(step)
            self.model.zero_grad()
            accum_loss = 0.0
            tokens = 0
            for _ in range(cfg.grad_accum):
                try:
                    inputs, targets, mask = next(iterator)
                except StopIteration:
                    iterator = iter(make_batches())
                    inputs, targets, mask = next(iterator)
                logits = self.model.forward(inputs)
                loss, dlogits = self.model.cross_entropy(logits, targets, mask)
                # mean over microbatches: scale each contribution
                self.model.backward(dlogits / cfg.grad_accum)
                accum_loss += loss / cfg.grad_accum
                if mask is None:
                    tokens += int(np.asarray(targets).size)
                else:
                    tokens += int(np.asarray(mask).sum())
            grads = self.model.named_gradients()
            if self.hooks is not None:
                self.hooks.on_gradients(step, grads)
            norm = clip_grad_norm(grads, cfg.clip_norm)
            lr = self.schedule.lr(step)
            self.optimizer.step(lr)
            if cfg.bf16:
                for p in self.model.named_parameters().values():
                    bf16_round_(p)
            history.losses.append(accum_loss)
            history.lrs.append(lr)
            history.grad_norms.append(norm)
            history.tokens_seen += tokens
            history.steps += 1
            if self.step_callback and (step % max(cfg.log_every, 1) == 0):
                self.step_callback(step, accum_loss, lr)
        return history
