"""Training metrics: corpus perplexity and loss smoothing."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.model.transformer import TransformerLM
from repro.train.dataloader import pack_documents


def ema(values: Sequence[float], alpha: float = 0.1) -> List[float]:
    """Exponential moving average of a series (same length as input)."""
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    out: List[float] = []
    acc: Optional[float] = None
    for v in values:
        acc = v if acc is None else alpha * v + (1 - alpha) * acc
        out.append(acc)
    return out


def corpus_perplexity(
    model: TransformerLM,
    token_docs: Sequence[Sequence[int]],
    eos_id: int,
    seq_len: Optional[int] = None,
    batch_size: int = 16,
    max_windows: Optional[int] = None,
) -> float:
    """Token-level perplexity of ``model`` over packed documents.

    Computes the exact mean negative log-likelihood across all evaluated
    windows (weighted by token count, which is constant per window here).
    """
    seq_len = seq_len or model.config.max_seq_len
    windows = pack_documents(token_docs, seq_len, eos_id, drop_last=False)
    if max_windows is not None:
        windows = windows[:max_windows]
    if windows.shape[0] == 0:
        raise ValueError("no evaluation windows produced")
    total_nll = 0.0
    total_tokens = 0
    for start in range(0, windows.shape[0], batch_size):
        batch = windows[start : start + batch_size]
        inputs, targets = batch[:, :-1], batch[:, 1:]
        logits = model.forward(inputs)
        loss, _ = model.cross_entropy(logits, targets)
        n = targets.size
        total_nll += loss * n
        total_tokens += n
    return float(np.exp(min(total_nll / total_tokens, 30.0)))
