"""Continual pretraining (CPT) driver.

Reproduces the paper's Section III recipe: pack the domain corpus, train
with the LM objective for one epoch (by default) under AdamW + warmup +
cosine decay + bf16.  The paper's hyperparameters are kept as named presets
(learning rate 2e-5, total batch 96/160, max token length 512/2048, warmup
ratio 0.03); the micro zoo scales the learning rate up because micro models
sit far from the converged regime of a real 70B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.model.transformer import TransformerLM
from repro.train.dataloader import PackedDataset, pack_documents
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory


@dataclass
class CPTConfig:
    """CPT hyperparameters.

    ``epochs`` converts to a step budget from the packed dataset size; the
    paper trains one epoch in all cases.
    """

    learning_rate: float = 2e-5
    total_batch_size: int = 96
    max_token_length: int = 512
    warmup_ratio: float = 0.03
    epochs: float = 1.0
    schedule: str = "cosine"
    weight_decay: float = 0.0
    clip_norm: float = 1.0
    bf16: bool = True
    microbatch_size: int = 0  # 0 -> equal to total batch (no accumulation)
    seed: int = 0
    min_steps: int = 1

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.microbatch_size < 0:
            raise ValueError("microbatch_size must be >= 0")
        if self.microbatch_size == 0:
            self.microbatch_size = self.total_batch_size
        if self.total_batch_size % self.microbatch_size != 0:
            raise ValueError(
                "total_batch_size must be a multiple of microbatch_size"
            )

    @property
    def grad_accum(self) -> int:
        return self.total_batch_size // self.microbatch_size

    @classmethod
    def paper_8b(cls, **overrides) -> "CPTConfig":
        """Hyperparameters reported for AstroLLaMA-3-8B."""
        base = dict(
            learning_rate=2e-5,
            total_batch_size=96,
            max_token_length=512,
            warmup_ratio=0.03,
            epochs=1.0,
            schedule="cosine",
            bf16=True,
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def paper_70b(cls, **overrides) -> "CPTConfig":
        """Hyperparameters reported for AstroLLaMA-2-70B."""
        base = dict(
            learning_rate=2e-5,
            total_batch_size=160,
            max_token_length=2048,
            warmup_ratio=0.03,
            epochs=1.0,
            schedule="cosine",
            bf16=True,
        )
        base.update(overrides)
        return cls(**base)


@dataclass
class CPTResult:
    """Outcome of one CPT run."""

    history: TrainingHistory
    dataset_tokens: int
    windows: int
    steps: int
    config: CPTConfig


class ContinualPretrainer:
    """Runs CPT over pre-tokenized documents."""

    def __init__(self, config: Optional[CPTConfig] = None) -> None:
        self.config = config or CPTConfig()

    def run(
        self,
        model: TransformerLM,
        token_docs: Sequence[Sequence[int]],
        eos_id: int,
    ) -> CPTResult:
        cfg = self.config
        if not token_docs:
            raise ValueError("corpus produced no training windows")
        seq_len = min(cfg.max_token_length, model.config.max_seq_len)
        windows = pack_documents(token_docs, seq_len, eos_id, drop_last=False)
        if windows.shape[0] == 0:
            raise ValueError("corpus produced no training windows")
        dataset = PackedDataset(
            windows, cfg.microbatch_size, seed=cfg.seed, drop_last_batch=False
        )
        micro_per_epoch = max(len(dataset), 1)
        steps_per_epoch = max(micro_per_epoch // cfg.grad_accum, 1)
        total_steps = max(int(round(steps_per_epoch * cfg.epochs)), cfg.min_steps)
        trainer = Trainer(
            model,
            TrainingConfig(
                learning_rate=cfg.learning_rate,
                total_steps=total_steps,
                warmup_ratio=cfg.warmup_ratio,
                schedule=cfg.schedule,
                grad_accum=cfg.grad_accum,
                clip_norm=cfg.clip_norm,
                weight_decay=cfg.weight_decay,
                bf16=cfg.bf16,
            ),
        )

        def make_batches():
            for inputs, targets in dataset.batches():
                yield inputs, targets, None

        history = trainer.train(make_batches)
        return CPTResult(
            history=history,
            dataset_tokens=int(windows.size - windows.shape[0]),
            windows=int(windows.shape[0]),
            steps=total_steps,
            config=cfg,
        )
