"""Bounded admission queue with backpressure.

A production benchmark service must refuse load it cannot carry:
an unbounded queue converts overload into unbounded latency and
memory growth.  :class:`AdmissionQueue` is the engine's front door —
bounded capacity, explicit :class:`QueueFullError` rejection with a
deterministic retry-after hint, priority or FIFO ordering, and
deadline expiry for requests that waited too long to be admitted.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.serve.request import RequestState, RequestStatus

__all__ = [
    "AdmissionQueue",
    "QueueFullError",
    "OversizedRequestError",
    "QUEUE_POLICIES",
]

QUEUE_POLICIES = ("fifo", "priority")


class QueueFullError(RuntimeError):
    """Raised by :meth:`AdmissionQueue.push` when the queue is at capacity.

    ``retry_after`` is a deterministic backoff hint (seconds, on the
    engine's clock) derived from the queue depth and the configured
    per-request service-time estimate — callers should resubmit no
    sooner than that.
    """

    def __init__(self, capacity: int, retry_after: float) -> None:
        self.capacity = capacity
        self.retry_after = retry_after
        super().__init__(
            f"admission queue full ({capacity} waiting); "
            f"retry after {retry_after:g}s"
        )


class OversizedRequestError(ValueError):
    """The request can never be admitted (exceeds the token budget)."""

    def __init__(self, request_id: str, needed: int, budget: int) -> None:
        self.request_id = request_id
        self.needed = needed
        self.budget = budget
        super().__init__(
            f"request {request_id!r} needs {needed} tokens but the "
            f"scheduler budget is {budget}"
        )


class AdmissionQueue:
    """Bounded wait queue ordered by ``(priority, arrival)`` or FIFO.

    ``policy="fifo"`` ignores priorities entirely; ``policy="priority"``
    orders by ``(priority, seq)`` so equal priorities stay FIFO.  Both are
    deterministic: ``seq`` is the engine's submission counter, never a
    timestamp, so two runs of the same schedule order identically.
    """

    def __init__(
        self,
        capacity: int = 64,
        policy: str = "fifo",
        service_time_hint: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {policy!r}; expected one of "
                f"{QUEUE_POLICIES}"
            )
        if service_time_hint <= 0:
            raise ValueError("service_time_hint must be > 0")
        self.capacity = capacity
        self.policy = policy
        self.service_time_hint = float(service_time_hint)
        self._heap: List[Tuple[Tuple[int, int], RequestState]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _key(self, state: RequestState) -> Tuple[int, int]:
        if self.policy == "priority":
            return (state.request.priority, state.seq)
        return (0, state.seq)

    def retry_after(self) -> float:
        """Deterministic backoff hint for a rejected submit."""
        return (len(self._heap) + 1) * self.service_time_hint

    def push(self, state: RequestState) -> None:
        """Enqueue, or raise :class:`QueueFullError` at capacity."""
        if len(self._heap) >= self.capacity:
            raise QueueFullError(self.capacity, self.retry_after())
        heapq.heappush(self._heap, (self._key(state), state))

    def expire_overdue(self, now: float) -> List[RequestState]:
        """Remove and mark every queued request whose deadline passed."""
        expired = [
            state
            for _, state in self._heap
            if state.request.deadline is not None
            and now > state.request.deadline
        ]
        if expired:
            keep = [
                item
                for item in self._heap
                if item[1] not in expired  # identity: states are unhashable-safe
            ]
            heapq.heapify(keep)
            self._heap = keep
            for state in expired:
                state.status = RequestStatus.EXPIRED
                state.finish_reason = "deadline"
                state.finished_at = now
        expired.sort(key=lambda s: s.seq)
        return expired

    def peek(self) -> Optional[RequestState]:
        return self._heap[0][1] if self._heap else None

    def pop(self) -> RequestState:
        return heapq.heappop(self._heap)[1]

    def remove(self, state: RequestState) -> bool:
        """Withdraw one queued state (cancellation); False if absent."""
        kept = [item for item in self._heap if item[1] is not state]
        if len(kept) == len(self._heap):
            return False
        heapq.heapify(kept)
        self._heap = kept
        return True

    def requeue(self, state: RequestState) -> None:
        """Put a preempted request back; its original ``seq`` restores its
        position among equals, so preemption never reorders peers."""
        state.status = RequestStatus.QUEUED
        heapq.heappush(self._heap, (self._key(state), state))
