"""Counters and histograms for the serving engine.

Everything snapshots to plain, JSON-serializable dicts with sorted keys,
so a metrics snapshot participates in the simulator's bit-identical
replay contract: same ``(schedule, seed)`` → same snapshot.  No metric
ever reads a clock itself — durations are observed by the engine from
its injected :class:`~repro.serve.clock.Clock`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.kv_cache import PrefixCacheStore

__all__ = ["Counter", "Histogram", "ServeMetrics"]

#: default latency bucket boundaries (seconds on the engine clock)
DEFAULT_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0)


class Counter:
    """A monotonically increasing integer counter."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus-style).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``sum`` accumulates exactly the observed values, so two runs
    observing the same sequence snapshot identically.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> Dict[str, object]:
        labels = [f"le_{b:g}" for b in self.bounds] + ["le_inf"]
        return {
            "count": self.total,
            "sum": self.sum,
            "buckets": dict(zip(labels, self.counts)),
        }


class ServeMetrics:
    """The engine's whole observable surface, snapshotable as one dict.

    Counter semantics:

    * ``submitted`` / ``admitted`` / ``finished`` — lifecycle edges;
    * ``rejected`` / ``expired`` — admission-control refusals (overload)
      and deadline expiries while queued;
    * ``preempted`` — requests bumped from the in-flight batch back to
      the queue (fault injection or scheduler policy);
    * ``engine_steps`` / ``decode_steps`` — scheduler iterations, and the
      subset that advanced at least one decoding request (the virtual-
      clock throughput measure the serving benchmark asserts on);
    * ``prefill_tokens`` / ``decoded_tokens`` — work actually forwarded;
    * ``prefix_hit_tokens`` — prompt tokens served from the prefix cache
      instead of re-prefilled.
    """

    COUNTERS = (
        "submitted",
        "admitted",
        "finished",
        "rejected",
        "expired",
        "preempted",
        "engine_steps",
        "decode_steps",
        "prefill_tokens",
        "decoded_tokens",
        "prefix_hit_tokens",
    )

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {
            name: Counter() for name in self.COUNTERS
        }
        self.queue_depth = Histogram(buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128))
        self.batch_size = Histogram(buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128))
        self.time_to_first_token = Histogram()
        self.e2e_latency = Histogram()
        self._stores: List[Tuple[str, PrefixCacheStore]] = []

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name].inc(n)

    def watch_store(self, store: PrefixCacheStore, name: str = "prefix_cache") -> None:
        """Fold ``store.stats()`` into every snapshot under ``name``."""
        self._stores.append((name, store))

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            name: counter.value for name, counter in sorted(self.counters.items())
        }
        out["queue_depth"] = self.queue_depth.snapshot()
        out["batch_size"] = self.batch_size.snapshot()
        out["time_to_first_token"] = self.time_to_first_token.snapshot()
        out["e2e_latency"] = self.e2e_latency.snapshot()
        for name, store in self._stores:
            out[name] = store.stats()
        return out

    def observe_finish(self, submitted_at: Optional[float], first_token_at: Optional[float], finished_at: float) -> None:
        """Record the latency pair for one finished request."""
        if submitted_at is not None:
            self.e2e_latency.observe(finished_at - submitted_at)
            if first_token_at is not None:
                self.time_to_first_token.observe(first_token_at - submitted_at)
