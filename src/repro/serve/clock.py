"""Time source abstraction for the serving stack.

The scheduler never reads the wall clock (lint rule R7
``wall-clock-hygiene`` enforces this: ``time.*`` calls inside
``repro/serve/`` are legal only in this module).  All time flows through
an injected :class:`Clock`, so the entire engine — admission deadlines,
time-to-first-token, latency histograms — is bit-reproducible under the
:class:`VirtualClock` used by the simulator and the test suites, and a
``(schedule, seed)`` pair replays to an identical event log.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "VirtualClock", "WallClock"]


@runtime_checkable
class Clock(Protocol):
    """What the engine needs from a time source."""

    def now(self) -> float:
        """Current time in seconds (monotonic, arbitrary epoch)."""
        ...

    def advance(self, seconds: float) -> None:
        """Account for ``seconds`` of simulated work (no-op on wall time)."""
        ...


class VirtualClock:
    """A manually advanced clock: deterministic, replayable time.

    The engine calls :meth:`advance` with each step's modeled duration;
    the simulator additionally advances it across idle gaps between
    request arrivals.  Nothing moves unless something advances it.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        self._now += float(seconds)

    def advance_to(self, timestamp: float) -> None:
        """Jump forward to ``timestamp`` (never backwards)."""
        if timestamp > self._now:
            self._now = float(timestamp)


class WallClock:
    """Real monotonic time, for live (non-simulated) serving.

    :meth:`advance` is a no-op — real time passes on its own.  This class
    is the single sanctioned wall-clock reader in ``repro.serve``.
    """

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> None:
        del seconds
