"""The user-facing serving engine: ``submit() / step() / drain()``.

:class:`ServeEngine` composes the bounded admission queue, the
continuous-batching scheduler, the prefix-cache store, metrics, and an
injected clock into one loop:

    engine = ServeEngine(model)
    state = engine.submit(InferenceRequest("r1", prompt_ids))
    while engine.has_work:
        engine.step()
    print(state.output_ids, engine.metrics.snapshot())

With the default :class:`~repro.serve.clock.VirtualClock`, each step
advances time by a deterministic modeled duration (``StepCostModel``,
scaled by any fault-injected latency factor), so latency metrics and
deadline behavior are bit-reproducible; pass
:class:`~repro.serve.clock.WallClock` for live serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.model.kv_cache import PrefixCacheStore
from repro.serve.admission import AdmissionQueue, OversizedRequestError, QueueFullError
from repro.serve.clock import Clock, VirtualClock
from repro.serve.metrics import ServeMetrics
from repro.serve.request import (
    InferenceRequest,
    RequestKind,
    RequestState,
    RequestStatus,
)
from repro.serve.scheduler import (
    ContinuousBatchingScheduler,
    SchedulerConfig,
    StepDirectives,
)

__all__ = ["StepCostModel", "ServeConfig", "ServeEngine"]


@dataclass(frozen=True)
class StepCostModel:
    """Deterministic virtual duration of one engine step.

    ``base`` models per-iteration launch overhead; prefilled prompt
    tokens and decode rows add linear terms.  Purely a simulation
    device — it never affects scheduling decisions' *order*, only the
    virtual timestamps (and thus deadlines/latency histograms).
    """

    base: float = 1.0
    per_prefill_token: float = 0.01
    per_decode_row: float = 0.05

    def duration(self, prefill_tokens: int, decode_rows: int) -> float:
        return (
            self.base
            + self.per_prefill_token * prefill_tokens
            + self.per_decode_row * decode_rows
        )


@dataclass(frozen=True)
class ServeConfig:
    """Engine-level configuration (queue + scheduler + cost model)."""

    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    queue_capacity: int = 64
    queue_policy: str = "fifo"
    service_time_hint: float = 1.0
    step_cost: StepCostModel = field(default_factory=StepCostModel)


class ServeEngine:
    """Continuous-batching inference engine over one model.

    ``submit`` applies admission control *immediately*: an oversized
    request raises :class:`OversizedRequestError`, a full queue raises
    :class:`QueueFullError` carrying a deterministic ``retry_after``
    hint — overload is refused, never buffered unboundedly.  ``step``
    runs one scheduler iteration; ``drain`` steps until idle.
    """

    def __init__(
        self,
        model,
        config: Optional[ServeConfig] = None,
        clock: Optional[Clock] = None,
        prefix_store: Optional[PrefixCacheStore] = None,
        metrics: Optional[ServeMetrics] = None,
        fault_hook=None,
    ) -> None:
        self.model = model
        self.config = config or ServeConfig()
        self.clock = clock if clock is not None else VirtualClock()
        self.metrics = metrics or ServeMetrics()
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.queue_policy,
            service_time_hint=self.config.service_time_hint,
        )
        self.scheduler = ContinuousBatchingScheduler(
            model,
            self.queue,
            config=self.config.scheduler,
            prefix_store=prefix_store,
            metrics=self.metrics,
        )
        self.metrics.watch_store(self.scheduler.prefix_store)
        self.fault_hook = fault_hook
        self.states: Dict[str, RequestState] = {}
        self._seq = 0
        self._step_index = 0

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[tuple]:
        """The scheduler's append-only event log (replay-comparable)."""
        return self.scheduler.events

    @property
    def has_work(self) -> bool:
        return bool(self.queue) or bool(self.scheduler.running)

    def state_of(self, request_id: str) -> RequestState:
        return self.states[request_id]

    # ------------------------------------------------------------------
    def _clamp_prompt(self, request: InferenceRequest) -> tuple:
        """Left-truncate the prompt to the context window, exactly as
        :func:`repro.model.sampling.generate` does, and return
        ``(prompt, decode_budget)``."""
        max_ctx = self.model.config.max_seq_len
        if request.kind is RequestKind.SCORE:
            budget = 0
        else:
            budget = min(request.generation.max_new_tokens, max(0, max_ctx - 1))
        prompt = list(request.prompt_ids)
        keep = max_ctx - budget
        if budget > 0 and len(prompt) > keep:
            prompt = prompt[-keep:]
        elif budget == 0 and len(prompt) > max_ctx:
            prompt = prompt[-max_ctx:]
        return tuple(prompt), budget

    def submit(self, request: InferenceRequest) -> RequestState:
        """Admission-control a new request into the wait queue.

        Raises :class:`OversizedRequestError` if the request can never
        fit the scheduler's token budget, :class:`QueueFullError` (with
        ``retry_after``) under overload, ``ValueError`` on a duplicate
        request id.
        """
        if request.request_id in self.states:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        prompt, budget = self._clamp_prompt(request)
        state = RequestState(
            request=request,
            submitted_at=self.clock.now(),
            prompt=prompt,
            budget=budget,
            seq=self._seq,
        )
        needed = state.tokens_reserved()
        if needed > self.config.scheduler.token_budget:
            self.metrics.inc("rejected")
            self.scheduler.events.append(
                ("reject", self._step_index, request.request_id, "oversized")
            )
            raise OversizedRequestError(
                request.request_id, needed, self.config.scheduler.token_budget
            )
        try:
            self.queue.push(state)
        except QueueFullError:
            self.metrics.inc("rejected")
            self.scheduler.events.append(
                ("reject", self._step_index, request.request_id, "queue-full")
            )
            raise
        self._seq += 1
        self.states[request.request_id] = state
        self.metrics.inc("submitted")
        self.scheduler.events.append(
            ("submit", self._step_index, request.request_id)
        )
        return state

    def cancel(self, request_id: str) -> bool:
        """Withdraw a *queued* request; running ones are not interrupted."""
        state = self.states.get(request_id)
        if state is None or state.status is not RequestStatus.QUEUED:
            return False
        if not self.queue.remove(state):
            return False
        state.status = RequestStatus.CANCELLED
        state.finish_reason = "cancelled"
        state.finished_at = self.clock.now()
        self.scheduler.events.append(
            ("cancel", self._step_index, request_id)
        )
        return True

    # ------------------------------------------------------------------
    def step(self) -> List[tuple]:
        """One scheduler iteration; returns the events it produced."""
        step = self._step_index
        directives = None
        if self.fault_hook is not None:
            directives = self.fault_hook.on_step(step)
        before = len(self.scheduler.events)
        self.metrics.queue_depth.observe(len(self.queue))
        report = self.scheduler.step(step, self.clock.now(), directives)
        # batch width = requests that touched the model this step
        self.metrics.batch_size.observe(report.decode_rows + report.admitted)
        self.metrics.inc("prefill_tokens", report.prefill_tokens)
        self.metrics.inc("prefix_hit_tokens", report.prefix_hit_tokens)
        if report.did_work:
            self.metrics.inc("engine_steps")
        if report.decode_rows > 0:
            self.metrics.inc("decode_steps")
        factor = directives.latency_factor if directives else 1.0
        self.clock.advance(
            self.config.step_cost.duration(
                report.prefill_tokens, report.decode_rows
            )
            * factor
        )
        self._step_index += 1
        return self.scheduler.events[before:]

    def drain(self, max_steps: int = 100_000) -> List[RequestState]:
        """Step until no queued or running work remains.

        Returns every tracked request's state in submission order.  A
        ``RuntimeError`` after ``max_steps`` flags a liveness bug rather
        than hanging the caller.
        """
        steps = 0
        while self.has_work:
            if steps >= max_steps:
                raise RuntimeError(
                    f"engine failed to drain within {max_steps} steps "
                    f"({len(self.queue)} queued, "
                    f"{len(self.scheduler.running)} running)"
                )
            self.step()
            steps += 1
        return sorted(self.states.values(), key=lambda s: s.seq)

    def metrics_snapshot(self) -> Dict[str, object]:
        return self.metrics.snapshot()
