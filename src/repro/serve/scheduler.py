"""Iteration-level continuous-batching scheduler.

Classic batch serving admits a fixed set of requests, runs them to
completion, then admits the next set — long generations hold short ones
hostage.  Continuous batching (Orca-style) re-forms the in-flight batch
*every decode step*: finished requests leave immediately, waiting
requests are admitted the moment their tokens fit, and a prefill rides
alongside ongoing decodes.

Invariants this scheduler maintains:

* **token budget** — the sum of every running request's *reserved*
  length (truncated prompt + decode budget) never exceeds
  ``token_budget``, so admission can never strand a request mid-decode;
* **head-of-line order** — admission pops the queue strictly in policy
  order; the head blocks until it fits, so equal-priority requests are
  FIFO and nothing is starved (every admitted request finishes within
  its decode budget, freeing tokens for the head);
* **prefix reuse** — admission routes through a
  :class:`~repro.model.kv_cache.PrefixCacheStore`: prompts sharing the
  MCQ scaffold fork a cached prefix instead of re-prefilling it;
* **determinism** — no wall-clock reads (all time arrives as ``now``
  arguments), no unseeded randomness; per-request decode streams come
  from each request's own seeded generator, so outputs are independent
  of batch composition and bit-equal to sequential
  :func:`repro.model.sampling.generate`.

Fault injection enters through :class:`StepDirectives` (produced by
``repro.faults.serve.ServeFaultInjector`` from a ``FaultPlan``): a
preempted request is evicted back to the queue and deterministically
restarted, so a faulted run still produces identical final outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.kv_cache import PrefixCacheStore
from repro.model.sampling import _select_token
from repro.serve.admission import AdmissionQueue
from repro.serve.metrics import ServeMetrics
from repro.serve.request import RequestKind, RequestState, RequestStatus

__all__ = ["SchedulerConfig", "StepDirectives", "StepReport", "ContinuousBatchingScheduler"]


@dataclass(frozen=True)
class StepDirectives:
    """Per-step fault-injection directives (see ``repro.faults.serve``).

    ``preempt_ranks`` indexes into the running batch (admission order);
    out-of-range ranks are ignored, so a plan written for a busier run
    replays harmlessly on a quieter one.  ``latency_factor`` scales the
    step's modeled duration (degraded-link analogue) without touching
    any arithmetic.
    """

    latency_factor: float = 1.0
    preempt_ranks: Tuple[int, ...] = ()


@dataclass(frozen=True)
class SchedulerConfig:
    """Continuous-batching knobs.

    ``token_budget`` bounds the sum of reserved sequence lengths across
    the in-flight batch (the KV-memory analogue); ``max_running`` bounds
    batch width.  ``min_prefix_overlap`` is the shortest shared prefix
    worth forking from the store.
    """

    token_budget: int = 2048
    max_running: int = 8
    min_prefix_overlap: int = 1
    store_entries: int = 4

    def __post_init__(self) -> None:
        if self.token_budget < 1:
            raise ValueError("token_budget must be >= 1")
        if self.max_running < 1:
            raise ValueError("max_running must be >= 1")
        if self.min_prefix_overlap < 1:
            raise ValueError("min_prefix_overlap must be >= 1")


@dataclass
class StepReport:
    """What one scheduler step did (the engine's cost-model input)."""

    prefill_tokens: int = 0
    prefix_hit_tokens: int = 0
    decode_rows: int = 0
    finished: int = 0
    admitted: int = 0
    preempted: int = 0
    expired: int = 0

    @property
    def did_work(self) -> bool:
        return (
            self.prefill_tokens > 0
            or self.decode_rows > 0
            or self.finished > 0
            or self.expired > 0
            or self.preempted > 0
        )


class ContinuousBatchingScheduler:
    """Admits, decodes, evicts — one iteration per :meth:`step` call.

    The scheduler owns the running batch; the engine owns the clock, the
    metrics, and the admission queue's backpressure contract.
    """

    def __init__(
        self,
        model,
        queue: AdmissionQueue,
        config: Optional[SchedulerConfig] = None,
        prefix_store: Optional[PrefixCacheStore] = None,
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        self.model = model
        self.queue = queue
        self.config = config or SchedulerConfig()
        self.prefix_store = prefix_store or PrefixCacheStore(
            max_entries=self.config.store_entries
        )
        self.metrics = metrics or ServeMetrics()
        self.running: List[RequestState] = []
        self.events: List[tuple] = []

    # ------------------------------------------------------------------
    def reserved_tokens(self) -> int:
        return sum(state.tokens_reserved() for state in self.running)

    def _log(self, *event: object) -> None:
        self.events.append(tuple(event))

    # -- admission ------------------------------------------------------
    def _fits(self, state: RequestState) -> bool:
        return (
            len(self.running) < self.config.max_running
            and self.reserved_tokens() + state.tokens_reserved()
            <= self.config.token_budget
        )

    def _start(self, state: RequestState, step: int, now: float) -> int:
        """Prefill (via the prefix store) and move ``state`` to running.

        Returns the number of prompt tokens actually forwarded.  The
        forward sequence mirrors :func:`repro.model.sampling.generate`
        exactly — fork the longest cached prefix, forward the remainder
        (always at least the final prompt token for GENERATE, so step
        logits come from a real forward) — which is what makes engine
        outputs bit-equal to sequential generation.
        """
        prompt = list(state.prompt)
        hit = self.prefix_store.match(
            prompt, min_overlap=self.config.min_prefix_overlap
        )
        kind = state.request.kind
        forwarded = 0
        if hit is None:
            prefix = self.prefix_store.put(self.model.prefill(prompt))
            forwarded += len(prompt)
            overlap = len(prompt)
        else:
            prefix, overlap = hit
            state.prefix_hit_tokens = overlap

        if kind is RequestKind.SCORE:
            if overlap == len(prompt) and prefix.length == len(prompt):
                # exact hit (or our own fresh prefill): boundary logits
                # are already computed
                state.final_logits = prefix.last_logits
            else:
                reused = min(overlap, len(prompt) - 1)
                cache = prefix.fork(batch_size=1, length=reused)
                logits = self.model.forward(
                    np.asarray(prompt[reused:], dtype=np.int64),
                    start_pos=reused,
                    cache=cache,
                )
                state.final_logits = logits[0, -1]
                forwarded += len(prompt) - reused
        else:
            reused = min(overlap, len(prompt) - 1)
            state.cache = prefix.fork(batch_size=1, length=reused)
            logits = self.model.forward(
                np.asarray(prompt[reused:], dtype=np.int64),
                start_pos=reused,
                cache=state.cache,
            )
            state.step_logits = logits[0, -1]
            forwarded += len(prompt) - reused
            state.pos = len(prompt)
            state.rng = np.random.default_rng(state.request.generation.seed)

        state.status = RequestStatus.RUNNING
        state.admitted_at = now
        self.running.append(state)
        self._log("admit", step, state.request_id, state.prefix_hit_tokens)
        self.metrics.inc("admitted")
        return forwarded

    # -- lifecycle ------------------------------------------------------
    def _finish(
        self, state: RequestState, step: int, now: float, reason: str
    ) -> None:
        state.status = RequestStatus.FINISHED
        state.finish_reason = reason
        state.finished_at = now
        state.release_engine_state()
        if state in self.running:
            self.running.remove(state)
        self._log("finish", step, state.request_id, reason, len(state.output_ids))
        self.metrics.inc("finished")
        self.metrics.observe_finish(
            state.submitted_at, state.first_token_at, now
        )

    def preempt(self, state: RequestState, step: int) -> None:
        """Evict a running request back to the queue.

        Decoding restarts from scratch on re-admission (fresh seeded rng,
        fresh prefill), so the eventual output is identical to an
        uninterrupted run — preemption costs work, never correctness.
        Already-streamed tokens will be re-streamed (at-least-once).
        """
        self.running.remove(state)
        state.release_engine_state()
        state.output_ids = []
        state.first_token_at = None
        state.pos = 0
        state.preemptions += 1
        self.queue.requeue(state)
        self._log("preempt", step, state.request_id)
        self.metrics.inc("preempted")

    # -- one iteration --------------------------------------------------
    def step(
        self,
        step: int,
        now: float,
        directives: Optional[StepDirectives] = None,
    ) -> StepReport:
        """One continuous-batching iteration.

        Order matters and is fixed: fault preemptions, deadline expiry,
        admission (until the head no longer fits), then one decode token
        for every running GENERATE request.  SCOREs complete within their
        admission step.
        """
        report = StepReport()
        directives = directives or StepDirectives()

        # 1. scheduled preemptions (highest rank first so earlier indexes
        #    stay valid while removing)
        for rank in sorted(set(directives.preempt_ranks), reverse=True):
            if 0 <= rank < len(self.running):
                self.preempt(self.running[rank], step)
                report.preempted += 1

        # 2. expire queued requests whose admission deadline passed
        for state in self.queue.expire_overdue(now):
            self._log("expire", step, state.request_id)
            self.metrics.inc("expired")
            report.expired += 1

        # 3. admit while the head of the queue fits
        while True:
            head = self.queue.peek()
            if head is None or not self._fits(head):
                break
            state = self.queue.pop()
            report.prefill_tokens += self._start(state, step, now)
            report.prefix_hit_tokens += state.prefix_hit_tokens
            report.admitted += 1
            if state.request.kind is RequestKind.SCORE:
                self._finish(state, step, now, "scored")
                report.finished += 1
            elif state.budget == 0:
                self._finish(state, step, now, "length")
                report.finished += 1

        # 4. one decode token per running request (admission order)
        for state in list(self.running):
            tok = _select_token(
                state.step_logits, state.request.generation, state.rng
            )
            state.output_ids.append(tok)
            if state.first_token_at is None:
                state.first_token_at = now
            report.decode_rows += 1
            self.metrics.inc("decoded_tokens")

            reason = None
            if tok in state.request.generation.stop_token_ids:
                reason = "stop"
            elif len(state.output_ids) >= state.budget:
                reason = "length"
            elif state.pos >= self.model.config.max_seq_len:
                reason = "context"
            if state.request.stream is not None:
                state.request.stream(state.request_id, tok, reason is not None)
            if reason is not None:
                self._finish(state, step, now, reason)
                report.finished += 1
            else:
                logits = self.model.forward(
                    np.asarray([[tok]], dtype=np.int64),
                    start_pos=state.pos,
                    cache=state.cache,
                )
                state.step_logits = logits[0, -1]
                state.pos += 1

        return report
