"""Request and request-state dataclasses for the serving engine.

The paper's three benchmarking methodologies map onto two request kinds:

* :data:`RequestKind.GENERATE` — full-instruct evaluation: decode up to
  ``GenerationConfig.max_new_tokens`` tokens (512 in the paper), with
  per-request decoding controls and seed;
* :data:`RequestKind.SCORE` — both next-token methods: a single prefill
  whose final-position logits are the result (the caller restricts them
  to the four answer-letter ids).

A request is immutable intent; all mutable progress lives in
:class:`RequestState`, which the engine owns and the caller observes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.model.kv_cache import KVCache
from repro.model.sampling import GenerationConfig

__all__ = [
    "RequestKind",
    "RequestStatus",
    "InferenceRequest",
    "RequestState",
    "TERMINAL_STATUSES",
]

#: ``stream`` callback signature: (request_id, token_id, is_final).
TokenCallback = Callable[[str, int, bool], None]


class RequestKind(enum.Enum):
    GENERATE = "generate"  # full-instruct: autoregressive decode
    SCORE = "score"  # token-pred: one prefill, final logits


class RequestStatus(enum.Enum):
    QUEUED = "queued"  # admitted to the wait queue, not yet running
    RUNNING = "running"  # in the in-flight decode batch
    FINISHED = "finished"  # completed (stop token, length, or scored)
    REJECTED = "rejected"  # refused at submit (overload / oversized)
    EXPIRED = "expired"  # deadline passed while still queued
    CANCELLED = "cancelled"  # withdrawn by the caller


#: states a request never leaves
TERMINAL_STATUSES = (
    RequestStatus.FINISHED,
    RequestStatus.REJECTED,
    RequestStatus.EXPIRED,
    RequestStatus.CANCELLED,
)


@dataclass(frozen=True)
class InferenceRequest:
    """One unit of serving work.

    ``priority`` orders the admission queue when the engine runs the
    ``"priority"`` policy (lower value = more urgent; ties break FIFO).
    ``deadline`` is an absolute clock time by which the request must be
    *admitted* — a queued request whose deadline passes is expired, never
    silently served late (admission-control semantics, see
    ``docs/serving.md``).  ``stream`` receives each generated token as it
    is decoded.
    """

    request_id: str
    prompt_ids: Tuple[int, ...]
    kind: RequestKind = RequestKind.GENERATE
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    priority: int = 0
    deadline: Optional[float] = None
    stream: Optional[TokenCallback] = None

    def __post_init__(self) -> None:
        if not self.prompt_ids:
            raise ValueError("prompt_ids must contain at least one token")
        object.__setattr__(
            self, "prompt_ids", tuple(int(t) for t in self.prompt_ids)
        )


@dataclass(eq=False)  # identity equality: states hold arrays and are unique
class RequestState:
    """Mutable per-request progress, owned by the engine.

    Timestamps are clock readings (virtual or wall, per the injected
    :class:`~repro.serve.clock.Clock`); ``None`` until the corresponding
    lifecycle edge happens.
    """

    request: InferenceRequest
    status: RequestStatus = RequestStatus.QUEUED
    submitted_at: Optional[float] = None
    admitted_at: Optional[float] = None
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    output_ids: List[int] = field(default_factory=list)
    final_logits: Optional[np.ndarray] = None  # SCORE result
    finish_reason: Optional[str] = None  # "stop" | "length" | "scored" | ...
    prefix_hit_tokens: int = 0  # prompt tokens served from the prefix cache
    preemptions: int = 0
    # -- engine internals (not part of the caller-facing result) --------
    cache: Optional[KVCache] = None
    step_logits: Optional[np.ndarray] = None
    rng: Optional[np.random.Generator] = None
    pos: int = 0  # absolute position of the next forward
    prompt: Tuple[int, ...] = ()  # possibly left-truncated prompt
    budget: int = 0  # decode-token budget after context clamping
    seq: int = 0  # submission sequence number (FIFO tiebreak)

    @property
    def request_id(self) -> str:
        return self.request.request_id

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def tokens_reserved(self) -> int:
        """Worst-case sequence length this request can reach (the token-
        budget unit the scheduler admits against)."""
        return len(self.prompt) + self.budget

    def release_engine_state(self) -> None:
        """Drop decode state (cache, logits, rng) on finish/preemption."""
        self.cache = None
        self.step_logits = None
        self.rng = None

    def result_summary(self) -> dict:
        """Plain-dict view for logs and tests (no arrays)."""
        return {
            "request_id": self.request_id,
            "kind": self.request.kind.value,
            "status": self.status.value,
            "finish_reason": self.finish_reason,
            "n_output": len(self.output_ids),
            "prefix_hit_tokens": self.prefix_hit_tokens,
            "preemptions": self.preemptions,
        }
