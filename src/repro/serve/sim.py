"""Deterministic scheduler simulation: workloads, driving loop, replay.

The simulator is how the serving stack is tested and benchmarked
without wall time: a seeded workload of mixed GENERATE/SCORE requests
arrives on a :class:`~repro.serve.clock.VirtualClock`, the engine steps
whenever it has work, and the clock jumps across idle gaps.  Everything
downstream of ``(workload args, seed)`` is deterministic — the event
log, the metrics snapshot, every request's output tokens — so a replay
must match **bit-identically**, which is exactly what
``tests/test_serve_sim.py`` asserts (and what makes scheduler fairness
and fault-injection behavior regression-testable at all).

Backpressure is simulated honestly: a submit refused with
:class:`~repro.serve.admission.QueueFullError` is retried at
``now + retry_after`` (the engine's own hint), up to ``max_retries``,
after which the request is dropped — mirroring a well-behaved client.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.sampling import GenerationConfig
from repro.serve.admission import QueueFullError
from repro.serve.clock import VirtualClock
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.request import InferenceRequest, RequestKind
from repro.utils.rng import new_rng

__all__ = ["SimRequestSpec", "SimulationResult", "make_workload", "simulate"]


@dataclass(frozen=True)
class SimRequestSpec:
    """One scripted arrival: what shows up, when, asking for what."""

    request_id: str
    arrival: float
    prompt_ids: Tuple[int, ...]
    kind: RequestKind = RequestKind.GENERATE
    max_new_tokens: int = 16
    temperature: float = 0.0
    top_k: int = 0
    top_p: float = 1.0
    seed: int = 0
    priority: int = 0
    deadline_offset: Optional[float] = None  # deadline = arrival + offset

    def to_request(self) -> InferenceRequest:
        deadline = (
            self.arrival + self.deadline_offset
            if self.deadline_offset is not None
            else None
        )
        return InferenceRequest(
            request_id=self.request_id,
            prompt_ids=self.prompt_ids,
            kind=self.kind,
            generation=GenerationConfig(
                max_new_tokens=self.max_new_tokens,
                temperature=self.temperature,
                top_k=self.top_k,
                top_p=self.top_p,
                seed=self.seed,
            ),
            priority=self.priority,
            deadline=deadline,
        )


@dataclass
class SimulationResult:
    """Everything a replay must reproduce bit-identically."""

    events: List[tuple] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    summaries: List[dict] = field(default_factory=list)
    outputs: Dict[str, List[int]] = field(default_factory=dict)
    dropped: List[str] = field(default_factory=list)
    end_time: float = 0.0

    def replay_key_view(self) -> tuple:
        """One comparable value covering the whole deterministic surface."""
        return (
            tuple(self.events),
            _freeze(self.metrics),
            tuple(_freeze(s) for s in self.summaries),
            tuple(sorted((k, tuple(v)) for k, v in self.outputs.items())),
            tuple(self.dropped),
            self.end_time,
        )


def _freeze(value: object) -> object:
    """Recursively hashable view of a snapshot dict."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def make_workload(
    n_requests: int,
    seed: int,
    vocab_size: int,
    scaffold_len: int = 12,
    mean_gap: float = 0.5,
    generate_fraction: float = 0.5,
    prompt_len_range: Tuple[int, int] = (4, 10),
    max_new_range: Tuple[int, int] = (4, 16),
    temperature: float = 0.0,
    priority_levels: int = 1,
    deadline_offset: Optional[float] = None,
) -> List[SimRequestSpec]:
    """A seeded mixed workload sharing one scaffold prefix.

    Every prompt starts with the same ``scaffold_len`` tokens (the MCQ
    two-shot scaffold analogue) followed by a per-request random tail,
    so the prefix cache has something real to do.  Arrival gaps are
    exponential with mean ``mean_gap``; all draws come from one
    namespaced generator, so the workload *is* its ``(args, seed)`` key.
    """
    if vocab_size < 4:
        raise ValueError("vocab_size must be >= 4")
    rng = new_rng(seed, "serve-sim")
    scaffold = [int(t) for t in rng.integers(1, vocab_size, size=scaffold_len)]
    specs: List[SimRequestSpec] = []
    t = 0.0
    for i in range(n_requests):
        t += float(rng.exponential(mean_gap))
        tail_len = int(rng.integers(prompt_len_range[0], prompt_len_range[1] + 1))
        tail = [int(x) for x in rng.integers(1, vocab_size, size=tail_len)]
        is_generate = bool(rng.random() < generate_fraction)
        specs.append(
            SimRequestSpec(
                request_id=f"req-{i:04d}",
                arrival=t,
                prompt_ids=tuple(scaffold + tail),
                kind=RequestKind.GENERATE if is_generate else RequestKind.SCORE,
                max_new_tokens=int(
                    rng.integers(max_new_range[0], max_new_range[1] + 1)
                ),
                temperature=temperature,
                seed=int(rng.integers(0, 2**31)),
                priority=int(rng.integers(0, priority_levels)),
                deadline_offset=deadline_offset,
            )
        )
    return specs


def simulate(
    model,
    specs: Sequence[SimRequestSpec],
    config: Optional[ServeConfig] = None,
    fault_hook=None,
    max_retries: int = 10,
    max_steps: int = 1_000_000,
) -> SimulationResult:
    """Drive ``specs`` through a fresh engine on a virtual clock.

    ``fault_hook`` is any object with ``on_step(step) -> StepDirectives``
    (e.g. :class:`repro.faults.serve.ServeFaultInjector`), keeping the
    simulator decoupled from the fault subsystem.
    """
    clock = VirtualClock()
    engine = ServeEngine(model, config=config, clock=clock, fault_hook=fault_hook)
    #: (due_time, arrival_order, retries_left, spec) — order is stable
    pending: List[Tuple[float, int, int, SimRequestSpec]] = sorted(
        (spec.arrival, i, max_retries, spec) for i, spec in enumerate(specs)
    )
    result = SimulationResult()
    steps = 0
    while pending or engine.has_work:
        if steps >= max_steps:
            raise RuntimeError(f"simulation did not converge in {max_steps} steps")
        # deliver every arrival that is due
        while pending and pending[0][0] <= clock.now():
            due, order, retries, spec = pending.pop(0)
            try:
                engine.submit(spec.to_request())
            except QueueFullError as err:
                if retries > 0:
                    retry_at = clock.now() + err.retry_after
                    bisect.insort(pending, (retry_at, order, retries - 1, spec))
                else:
                    result.dropped.append(spec.request_id)
        if engine.has_work:
            engine.step()
            steps += 1
        elif pending:
            clock.advance_to(pending[0][0])
        else:
            break
    result.events = list(engine.events)
    result.metrics = engine.metrics_snapshot()
    states = sorted(engine.states.values(), key=lambda s: s.seq)
    result.summaries = [s.result_summary() for s in states]
    result.outputs = {s.request_id: list(s.output_ids) for s in states}
    result.end_time = clock.now()
    return result
