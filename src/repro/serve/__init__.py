"""Continuous-batching inference serving for the benchmark stack.

The ROADMAP's north star is a service, not a script: heavy mixed
traffic of long full-instruct generations and single-step next-token
scorings — exactly the paper's three evaluation methodologies — served
from one model with bounded memory and explicit overload behavior.
This package is that serving layer:

* :mod:`~repro.serve.request` — request/state dataclasses covering both
  workload shapes, with per-request decoding configs and seeds;
* :mod:`~repro.serve.admission` — bounded queue with priority/FIFO
  ordering, admission deadlines, and ``QueueFullError`` backpressure;
* :mod:`~repro.serve.scheduler` — iteration-level continuous batching
  under a token budget, routed through the ``PrefixCacheStore`` so
  shared scaffolds are never re-prefilled;
* :mod:`~repro.serve.engine` — the ``submit()/step()/drain()`` loop with
  per-token streaming callbacks;
* :mod:`~repro.serve.clock` / :mod:`~repro.serve.sim` — the injected
  time source and the deterministic simulator (lint rule R7 keeps wall
  clocks out of everything but ``clock.py``);
* :mod:`~repro.serve.metrics` — counters/histograms snapshotable as
  plain dicts.

See ``docs/serving.md`` for the architecture tour and
``repro.eval.serving`` for the benchmark replayed through this engine.
"""

from repro.serve.admission import (
    AdmissionQueue,
    OversizedRequestError,
    QueueFullError,
)
from repro.serve.clock import Clock, VirtualClock, WallClock
from repro.serve.engine import ServeConfig, ServeEngine, StepCostModel
from repro.serve.metrics import Counter, Histogram, ServeMetrics
from repro.serve.request import (
    InferenceRequest,
    RequestKind,
    RequestState,
    RequestStatus,
    TERMINAL_STATUSES,
)
from repro.serve.scheduler import (
    ContinuousBatchingScheduler,
    SchedulerConfig,
    StepDirectives,
    StepReport,
)
from repro.serve.sim import (
    SimRequestSpec,
    SimulationResult,
    make_workload,
    simulate,
)

__all__ = [
    "AdmissionQueue",
    "QueueFullError",
    "OversizedRequestError",
    "Clock",
    "VirtualClock",
    "WallClock",
    "ServeConfig",
    "ServeEngine",
    "StepCostModel",
    "Counter",
    "Histogram",
    "ServeMetrics",
    "InferenceRequest",
    "RequestKind",
    "RequestState",
    "RequestStatus",
    "TERMINAL_STATUSES",
    "ContinuousBatchingScheduler",
    "SchedulerConfig",
    "StepDirectives",
    "StepReport",
    "SimRequestSpec",
    "SimulationResult",
    "make_workload",
    "simulate",
]
