"""SFT mixture assembly with the paper's exact ratios."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.corpus.arxiv import ArxivArchive
from repro.corpus.knowledge import KnowledgeBase
from repro.sft_data.conversations import AstroQAGenerator
from repro.sft_data.lima import LimaGenerator
from repro.sft_data.openorca import OpenOrcaGenerator
from repro.sft_data.ultrachat import UltraChatGenerator
from repro.train.sft import SFTExample
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class MixtureSpec:
    """Sample counts per component.

    Defaults are the paper's: 10,356 astronomy conversations + LIMA (1,030)
    + 10,000 Open Orca + 10,000 UltraChat ~= 31k samples, about one-third
    astronomy-focused.  ``scaled`` shrinks all components proportionally
    for micro-zoo experiments.
    """

    astro_qa: int = 10356
    lima: int = 1030
    open_orca: int = 10000
    ultrachat: int = 10000

    @property
    def total(self) -> int:
        return self.astro_qa + self.lima + self.open_orca + self.ultrachat

    @property
    def astronomy_fraction(self) -> float:
        return self.astro_qa / self.total

    def scaled(self, factor: float) -> "MixtureSpec":
        if factor <= 0:
            raise ValueError("factor must be positive")
        return MixtureSpec(
            astro_qa=max(1, int(round(self.astro_qa * factor))),
            lima=max(1, int(round(self.lima * factor))),
            open_orca=max(1, int(round(self.open_orca * factor))),
            ultrachat=max(1, int(round(self.ultrachat * factor))),
        )


@dataclass
class SFTMixture:
    """The assembled conversation set plus composition statistics."""

    examples: List[SFTExample]
    spec: MixtureSpec

    def __len__(self) -> int:
        return len(self.examples)

    def counts_by_source(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ex in self.examples:
            out[ex.source] = out.get(ex.source, 0) + 1
        return out

    @property
    def astronomy_fraction(self) -> float:
        if not self.examples:
            return 0.0
        astro = sum(1 for ex in self.examples if ex.is_astronomy())
        return astro / len(self.examples)

    def astronomy_only(self) -> List[SFTExample]:
        return [ex for ex in self.examples if ex.is_astronomy()]


def build_paper_mixture(
    archive: ArxivArchive,
    astro_knowledge: KnowledgeBase,
    general_knowledge: KnowledgeBase,
    spec: Optional[MixtureSpec] = None,
    seed: int = 0,
    shuffle: bool = True,
) -> SFTMixture:
    """Assemble the Section III SFT set (deterministically)."""
    spec = spec or MixtureSpec()
    examples: List[SFTExample] = []
    examples += AstroQAGenerator(archive, astro_knowledge, seed=seed).generate(
        spec.astro_qa
    )
    examples += LimaGenerator(general_knowledge, seed=seed).generate(spec.lima)
    examples += OpenOrcaGenerator(general_knowledge, seed=seed).generate(
        spec.open_orca
    )
    examples += UltraChatGenerator(seed=seed).generate(spec.ultrachat)
    if shuffle:
        order = new_rng(seed, "sft-mixture").permutation(len(examples))
        examples = [examples[i] for i in order]
    return SFTMixture(examples=examples, spec=spec)
