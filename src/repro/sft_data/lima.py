"""LIMA analogue: a small, curated set of long-form general conversations.

LIMA (Zhou et al. 2024) is ~1,000 carefully written prompts with thorough
answers; the analogue produces long multi-sentence answers about the
general knowledge world so the set plays the same role in the mixture:
high-quality, general-domain, zero astronomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.corpus.knowledge import KnowledgeBase
from repro.train.sft import SFTExample
from repro.utils.rng import new_rng

_LEAD_INS = (
    "that is a great question .",
    "happy to explain .",
    "here is what is known .",
    "let us go through this carefully .",
)

_CLOSERS = (
    "i hope this gives a clear picture .",
    "let me know if you would like more detail .",
    "this is the current understanding .",
    "further reading is available in regional surveys .",
)


@dataclass
class LimaGenerator:
    """Curated long-form general Q&A."""

    knowledge: KnowledgeBase
    seed: int = 0

    def generate(self, n_samples: int = 1000) -> List[SFTExample]:
        rng = new_rng(self.seed, "lima")
        out: List[SFTExample] = []
        facts = self.knowledge.facts
        if not facts:
            raise ValueError("general knowledge base is empty")
        for k in range(n_samples):
            fact = facts[int(rng.integers(0, len(facts)))]
            extra = facts[int(rng.integers(0, len(facts)))]
            user = f"could you tell me about {fact.subject} ?"
            assistant = " ".join(
                [
                    _LEAD_INS[int(rng.integers(0, len(_LEAD_INS)))],
                    fact.statement(int(rng.integers(0, 4))),
                    extra.statement(int(rng.integers(0, 4))),
                    _CLOSERS[int(rng.integers(0, len(_CLOSERS)))],
                ]
            )
            out.append(SFTExample(user=user, assistant=assistant, source="lima"))
        return out
