"""SFT conversation datasets.

Reproduces the paper's SFT mixture (Section III): 10,356 astronomy-centred
conversations generated from arXiv abstracts by GPT-4, the full LIMA set,
10,000 Open Orca samples and 10,000 UltraChat samples — "not highly tuned
to astronomy Q&A, with only one-third of the samples being astronomy-
focused", which is precisely the deficiency the paper's results expose.

Each generator is an analogue producing the same *distributional role*:

* :mod:`repro.sft_data.conversations` — astronomy Q&A derived from paper
  abstracts (the GPT-4 generation stand-in);
* :mod:`repro.sft_data.lima` — small, curated, long-form general answers;
* :mod:`repro.sft_data.openorca` — reasoning-trace style general Q&A;
* :mod:`repro.sft_data.ultrachat` — conversational chitchat;
* :mod:`repro.sft_data.mixer` — the paper-ratio mixture assembler.
"""

from repro.sft_data.conversations import AstroQAGenerator
from repro.sft_data.lima import LimaGenerator
from repro.sft_data.openorca import OpenOrcaGenerator
from repro.sft_data.ultrachat import UltraChatGenerator
from repro.sft_data.mixer import SFTMixture, MixtureSpec, build_paper_mixture

__all__ = [
    "AstroQAGenerator",
    "LimaGenerator",
    "OpenOrcaGenerator",
    "UltraChatGenerator",
    "SFTMixture",
    "MixtureSpec",
    "build_paper_mixture",
]
