"""Open Orca analogue: reasoning-trace style general Q&A.

Open Orca samples are FLAN-style tasks answered with step-by-step
explanations; the analogue asks comparison/derivation questions over the
general world and answers with explicit chained reasoning, including the
MCQ form so the instruct model keeps *some* exposure to quiz formats —
just not astronomy ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.corpus.knowledge import ANSWER_LETTERS, KnowledgeBase
from repro.train.sft import SFTExample
from repro.utils.rng import new_rng


@dataclass
class OpenOrcaGenerator:
    """Step-by-step general reasoning conversations."""

    knowledge: KnowledgeBase
    seed: int = 0
    mcq_fraction: float = 0.3  # fraction realized as multiple choice

    def generate(self, n_samples: int = 10000) -> List[SFTExample]:
        rng = new_rng(self.seed, "open-orca")
        facts = self.knowledge.facts
        if not facts:
            raise ValueError("general knowledge base is empty")
        out: List[SFTExample] = []
        for k in range(n_samples):
            fact = facts[int(rng.integers(0, len(facts)))]
            if rng.random() < self.mcq_fraction:
                options, correct_idx = fact.option_values_shuffled(rng)
                lines = [f"Question : {fact.question()}"]
                for letter, value in zip(ANSWER_LETTERS, options):
                    lines.append(f"{letter} : {value}")
                user = "\n".join(lines)
                assistant = (
                    f"let us think step by step . "
                    f"{fact.statement(int(rng.integers(0, 4)))} "
                    f"therefore the answer is {ANSWER_LETTERS[correct_idx]} ."
                )
            else:
                user = fact.question()
                assistant = (
                    f"let us think step by step . the question asks about "
                    f"{fact.subject} . {fact.statement(int(rng.integers(0, 4)))} "
                    f"so the value is {fact.correct} ."
                )
            out.append(SFTExample(user=user, assistant=assistant, source="open-orca"))
        return out
