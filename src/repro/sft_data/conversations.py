"""Astronomy Q&A conversations (the GPT-4-from-abstracts analogue).

For each archive paper, questions are generated about the facts its
*abstract* realizes — matching the original pipeline, which prompted GPT-4
with abstracts only.  Assistant answers state the answer letter and then
the fact, the behaviour the full-instruct evaluation wants models to
produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.corpus.arxiv import ArxivArchive
from repro.corpus.knowledge import ANSWER_LETTERS, Fact, KnowledgeBase
from repro.train.sft import SFTExample
from repro.utils.rng import new_rng


def render_mcq_question(fact: Fact, rng: np.random.Generator) -> Dict[str, object]:
    """Shared MCQ realization for SFT and (held-out) evaluation."""
    options, correct_idx = fact.option_values_shuffled(rng)
    lines = [f"Question : {fact.question()}"]
    for letter, value in zip(ANSWER_LETTERS, options):
        lines.append(f"{letter} : {value}")
    return {
        "text": "\n".join(lines),
        "options": options,
        "correct_idx": correct_idx,
        "correct_letter": ANSWER_LETTERS[correct_idx],
    }


@dataclass
class AstroQAGenerator:
    """Generates astronomy SFT conversations from archive abstracts."""

    archive: ArxivArchive
    knowledge: KnowledgeBase
    seed: int = 0

    def generate(self, n_samples: int) -> List[SFTExample]:
        """Produce up to ``n_samples`` conversations (cycling the archive)."""
        fact_by_id = {f.fact_id: f for f in self.knowledge.facts}
        rng = new_rng(self.seed, "astro-qa")
        out: List[SFTExample] = []
        papers = self.archive.papers
        i = 0
        while len(out) < n_samples and papers:
            paper = papers[i % len(papers)]
            candidates = [
                fact_by_id[fid]
                for fid in paper.abstract_fact_ids
                if fid in fact_by_id
            ]
            i += 1
            if not candidates:
                continue
            fact = candidates[int(rng.integers(0, len(candidates)))]
            mcq = render_mcq_question(fact, rng)
            answer = (
                f"the answer is {mcq['correct_letter']} . "
                f"{fact.statement(int(rng.integers(0, 4)))}"
            )
            out.append(
                SFTExample(
                    user=str(mcq["text"]),
                    assistant=answer,
                    source="astro-qa",
                )
            )
        return out
