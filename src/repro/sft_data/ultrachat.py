"""UltraChat analogue: broad conversational chitchat.

UltraChat is large-scale synthetic dialogue about everyday topics; the
analogue generates short conversations with generic, knowledge-light answers.
This is the mixture component that pulls an instruct model hardest toward
"general answers" — the drift the paper blames for full-instruct
degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.train.sft import SFTExample
from repro.utils.rng import new_rng

_TOPICS = (
    "planning a trip along the coast",
    "learning to bake bread at home",
    "keeping a small garden in the city",
    "choosing a musical instrument to learn",
    "organizing a neighborhood book club",
    "training for a long distance walk",
    "repairing an old wooden chair",
    "writing letters to distant friends",
    "keeping notes for a personal journal",
    "preparing a simple evening meal",
)

_OPENERS = (
    "there are many ways to approach this .",
    "it depends on what you enjoy most .",
    "a good starting point is to keep things simple .",
    "most people find it helpful to begin slowly .",
)

_ADVICE = (
    "start with small steps and build a routine",
    "ask friends or neighbors for their experience",
    "keep track of what works and adjust as you go",
    "set aside a regular time each week",
    "do not worry about making everything perfect",
    "focus on enjoying the process rather than the outcome",
)


@dataclass
class UltraChatGenerator:
    """Everyday conversational data with deliberately generic answers."""

    seed: int = 0

    def generate(self, n_samples: int = 10000) -> List[SFTExample]:
        rng = new_rng(self.seed, "ultrachat")
        out: List[SFTExample] = []
        for k in range(n_samples):
            topic = _TOPICS[int(rng.integers(0, len(_TOPICS)))]
            user = f"do you have any advice about {topic} ?"
            assistant = " ".join(
                [
                    _OPENERS[int(rng.integers(0, len(_OPENERS)))],
                    _ADVICE[int(rng.integers(0, len(_ADVICE)))] + " .",
                    _ADVICE[int(rng.integers(0, len(_ADVICE)))] + " .",
                ]
            )
            out.append(SFTExample(user=user, assistant=assistant, source="ultrachat"))
        return out
