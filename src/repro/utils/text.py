"""Small text helpers shared by corpus generation and evaluation parsing."""

from __future__ import annotations

import re
from typing import Iterable, List

_WS_RE = re.compile(r"\s+")


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return _WS_RE.sub(" ", text).strip()


def word_count(text: str) -> int:
    """Count whitespace-delimited words."""
    stripped = text.strip()
    if not stripped:
        return 0
    return len(_WS_RE.split(stripped))


def sentence_join(sentences: Iterable[str]) -> str:
    """Join sentences with single spaces, ensuring terminal punctuation."""
    parts: List[str] = []
    for sentence in sentences:
        s = sentence.strip()
        if not s:
            continue
        if s[-1] not in ".!?":
            s += "."
        parts.append(s)
    return " ".join(parts)


def truncate_tokens(tokens: List[int], max_len: int) -> List[int]:
    """Truncate a token list to at most ``max_len`` items (no-op if shorter)."""
    if max_len < 0:
        raise ValueError(f"max_len must be >= 0, got {max_len}")
    if len(tokens) <= max_len:
        return tokens
    return tokens[:max_len]
