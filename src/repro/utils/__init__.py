"""Shared utilities: seeded RNG management, text helpers, and lightweight I/O.

Everything in the reproduction is deterministic given a seed; these helpers
centralise how seeds are derived so that independent subsystems (corpus
generation, model init, data shuffling) never share RNG streams by accident.
"""

from repro.utils.rng import (
    SeedSequenceRegistry,
    derive_seed,
    new_rng,
    spawn_rngs,
)
from repro.utils.text import (
    normalize_whitespace,
    sentence_join,
    truncate_tokens,
    word_count,
)
from repro.utils.io import (
    atomic_write_json,
    read_json,
    atomic_write_text,
    read_text,
)

__all__ = [
    "SeedSequenceRegistry",
    "derive_seed",
    "new_rng",
    "spawn_rngs",
    "normalize_whitespace",
    "sentence_join",
    "truncate_tokens",
    "word_count",
    "atomic_write_json",
    "read_json",
    "atomic_write_text",
    "read_text",
]
