"""Atomic file I/O helpers for checkpoints and dataset artifacts."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, Path]


def _atomic_write(path: PathLike, data: bytes) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write text to ``path`` atomically (write-temp + rename)."""
    _atomic_write(path, text.encode("utf-8"))


def atomic_write_json(path: PathLike, obj: Any, *, indent: int = 2) -> None:
    """Serialize ``obj`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(obj, indent=indent, sort_keys=True))


def read_text(path: PathLike) -> str:
    return Path(path).read_text(encoding="utf-8")


def read_json(path: PathLike) -> Any:
    return json.loads(read_text(path))
