"""Deterministic RNG derivation.

All stochastic components take an integer seed (or an ``np.random.Generator``)
and derive child streams through :func:`derive_seed` / :func:`spawn_rngs`.
Derivation hashes a namespace string together with the parent seed so that

* the same (seed, name) pair always yields the same stream, and
* distinct subsystems get statistically independent streams even when the
  user passes the same top-level seed everywhere.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator]

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, *names: Union[str, int]) -> int:
    """Derive a 64-bit child seed from ``seed`` and a namespace path.

    The derivation is a SHA-256 hash of the parent seed and each path
    component, so it is stable across processes and Python versions
    (unlike ``hash``).
    """
    h = hashlib.sha256()
    h.update(int(seed).to_bytes(16, "little", signed=True))
    for name in names:
        part = str(name).encode("utf-8")
        h.update(len(part).to_bytes(4, "little"))
        h.update(part)
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def new_rng(seed: SeedLike, *names: Union[str, int]) -> np.random.Generator:
    """Build a ``Generator`` from a seed (optionally namespaced) or pass one through.

    If ``seed`` is already a Generator it is returned unchanged; namespacing
    then has no effect (the caller owns the stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if names:
        seed = derive_seed(int(seed), *names)
    return np.random.default_rng(int(seed) & _MASK64)


def spawn_rngs(seed: int, names: Iterable[str]) -> Dict[str, np.random.Generator]:
    """Spawn one independent generator per name, all derived from ``seed``."""
    return {name: new_rng(seed, name) for name in names}


class SeedSequenceRegistry:
    """Registry handing out reproducible, non-colliding child seeds.

    Used by long-lived orchestrators (e.g. the end-to-end pipeline) that
    need many child streams and want an audit trail of what was derived.

    Repeated requests for the same path return the same seed; the registry
    also counts how many times each path was requested, which tests use to
    assert that no component silently re-seeds.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._issued: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}

    def seed_for(self, *names: Union[str, int]) -> int:
        key = "/".join(str(n) for n in names)
        if key not in self._issued:
            self._issued[key] = derive_seed(self.root_seed, *names)
        self._counts[key] = self._counts.get(key, 0) + 1
        return self._issued[key]

    def rng_for(self, *names: Union[str, int]) -> np.random.Generator:
        return np.random.default_rng(self.seed_for(*names))

    @property
    def issued_paths(self) -> List[str]:
        return sorted(self._issued)

    def request_count(self, *names: Union[str, int]) -> int:
        return self._counts.get("/".join(str(n) for n in names), 0)
