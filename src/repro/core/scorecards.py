"""Table-I assembly: scores, comparison arrows, rendering."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.zoo import ModelZooEntry, zoo_entries

METHODS = ("full_instruct", "token_instruct", "token_base")

METHOD_LABELS = {
    "full_instruct": "Full Instruct (%)",
    "token_instruct": "Token Prediction (Instruct Model) (%)",
    "token_base": "Token Prediction (Base Model) (%)",
}


class Arrow(enum.Enum):
    """Better / worse / similar markers from the paper's Table I."""

    UP = "↑"
    DOWN = "↓"
    SIMILAR = "⇒"
    NONE = ""


def arrow_for(
    score: float, baseline: float, similar_band: float = 1.0
) -> Arrow:
    """The paper marks AstroLLaMA rows relative to their native baseline."""
    if abs(score - baseline) <= similar_band:
        return Arrow.SIMILAR
    return Arrow.UP if score > baseline else Arrow.DOWN


@dataclass
class ScoreCard:
    """One model's scores across the three methods (percent)."""

    entry: ModelZooEntry
    scores: Dict[str, Optional[float]] = field(default_factory=dict)

    def score(self, method: str) -> Optional[float]:
        return self.scores.get(method)

    def paper_score(self, method: str) -> Optional[float]:
        return {
            "full_instruct": self.entry.paper_full_instruct,
            "token_instruct": self.entry.paper_token_instruct,
            "token_base": self.entry.paper_token_base,
        }[method]


@dataclass
class TableOne:
    """The full benchmark grid with arrows relative to native baselines."""

    cards: Dict[str, ScoreCard] = field(default_factory=dict)
    similar_band: float = 1.0

    def add(self, card: ScoreCard) -> None:
        self.cards[card.entry.name] = card

    def arrow(self, name: str, method: str) -> Arrow:
        card = self.cards.get(name)
        if card is None or card.entry.is_native:
            return Arrow.NONE
        base_card = self.cards.get(card.entry.base_name)
        if base_card is None:
            return Arrow.NONE
        score = card.score(method)
        base = base_card.score(method)
        if score is None or base is None:
            return Arrow.NONE
        return arrow_for(score, base, self.similar_band)

    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        out = []
        for entry in zoo_entries():
            card = self.cards.get(entry.name)
            if card is None:
                continue
            row: Dict[str, object] = {"model": entry.paper_name}
            for method in METHODS:
                score = card.score(method)
                arrow = self.arrow(entry.name, method)
                row[method] = score
                row[f"{method}_arrow"] = arrow.value
                row[f"{method}_paper"] = card.paper_score(method)
            row["source"] = entry.source
            row["reference"] = entry.reference
            out.append(row)
        return out

    def render(self, show_paper: bool = True) -> str:
        """Plain-text Table I."""
        lines = []
        header = (
            f"{'Model':<28s} {'Full Instr':>12s} {'Tok(Instr)':>12s} "
            f"{'Tok(Base)':>12s}"
        )
        if show_paper:
            header += "   | paper: FI / TI / TB"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows():
            cells = []
            for method in METHODS:
                score = row[method]
                arrow = row[f"{method}_arrow"]
                cells.append(
                    f"{score:10.1f}{arrow or ' ':>2s}" if score is not None else f"{'-':>12s}"
                )
            line = f"{row['model']:<28s} {cells[0]} {cells[1]} {cells[2]}"
            if show_paper:
                papers = [
                    f"{row[f'{m}_paper']:.1f}" if row[f"{m}_paper"] is not None else "-"
                    for m in METHODS
                ]
                line += f"   | {papers[0]} / {papers[1]} / {papers[2]}"
            lines.append(line)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def shape_checks(self) -> Dict[str, bool]:
        """The paper's qualitative findings as boolean checks.

        These are the reproduction contract for Table I: orderings and
        gaps, not absolute values.
        """
        def s(name: str, method: str) -> Optional[float]:
            card = self.cards.get(name)
            return card.score(method) if card else None

        checks: Dict[str, bool] = {}

        def have(*vals) -> bool:
            return all(v is not None for v in vals)

        a, b = s("AstroLLaMA-2-7B-AIC", "token_base"), s("LLaMA-2-7B", "token_base")
        if have(a, b):
            checks["7b_cpt_degrades_base_token"] = a < b
        a, b = (
            s("AstroLLaMA-2-70B-AIC", "token_base"),
            s("LLaMA-2-70B", "token_base"),
        )
        if have(a, b):
            checks["70b_cpt_improves_base_token"] = a > b
        a, b = (
            s("AstroLLaMA-2-70B-AIC", "token_instruct"),
            s("LLaMA-2-70B", "token_instruct"),
        )
        if have(a, b):
            checks["70b_cpt_improves_instruct_token"] = a > b
        a, b = (
            s("AstroLLaMA-3-8B-AIC", "token_base"),
            s("LLaMA-3-8B", "token_base"),
        )
        if have(a, b):
            checks["8b_aic_roughly_retains_base_token"] = abs(a - b) <= 5.0
        a, b = (
            s("AstroLLaMA-3-8B-Summary", "token_base"),
            s("AstroLLaMA-3-8B-AIC", "token_base"),
        )
        if have(a, b):
            checks["summary_at_least_aic_base_token"] = a >= b - 1.0
        # SFT drag: full instruct below base-token for every AstroLLaMA row
        for name in (
            "AstroLLaMA-2-7B-AIC",
            "AstroLLaMA-3-8B-AIC",
            "AstroLLaMA-3-8B-Summary",
            "AstroLLaMA-2-70B-AIC",
        ):
            a, b = s(name, "full_instruct"), s(name, "token_base")
            if have(a, b):
                checks[f"sft_drag_{name}"] = a <= b + 1.0
        return checks
