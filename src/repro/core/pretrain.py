"""Streaming base-model pretraining.

Base LLMs see effectively infinite data: no quiz rendering repeats, so the
only way to lower loss on answer letters is the general match-and-emit
circuit, and the only way to lower loss on fact values is parametric
binding.  The pretrainer regenerates its document mix with fresh option
shuffles every epoch to live in that regime.

Per-epoch mixture:

* every general fact: one statement + two fresh quiz renderings;
* every *covered* astro fact (the entry's ``base_astro_coverage``): one
  statement + one fresh quiz rendering;
* filler documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.world import MicroWorld
from repro.core.zoo import ModelZooEntry
from repro.corpus.general import _EVERYDAY, render_mcq_exercise
from repro.model.config import ModelConfig, scaled_config
from repro.model.transformer import TransformerLM
from repro.tokenizer import WordTokenizer
from repro.train.dataloader import PackedDataset, pack_documents
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.utils.rng import new_rng


@dataclass
class BasePretrainConfig:
    """Pretraining run knobs (independent of the zoo entry's identity)."""

    total_steps: Optional[int] = None  # None -> family default
    learning_rate: Optional[float] = None  # None -> family default
    batch_size: int = 16
    seq_len: int = 192
    warmup_ratio: float = 0.03
    general_exercises_per_fact: int = 2
    astro_exercises_per_fact: int = 1
    filler_documents: int = 12
    tie_embeddings: bool = True
    seed: int = 0


@dataclass
class PretrainedBase:
    """A base model plus the provenance needed by later stages."""

    entry: ModelZooEntry
    model: TransformerLM
    tokenizer: WordTokenizer
    covered_fact_ids: List[int]
    history: TrainingHistory

    @property
    def eos_id(self) -> int:
        return self.tokenizer.vocab.eos_id

    @property
    def prefix_ids(self) -> List[int]:
        """Document-boundary prefix for evaluation prompts."""
        return [self.eos_id]


class BasePretrainer:
    """Builds and trains the base model for one zoo entry."""

    def __init__(
        self,
        world: MicroWorld,
        config: Optional[BasePretrainConfig] = None,
    ) -> None:
        self.world = world
        self.config = config or BasePretrainConfig()

    # ------------------------------------------------------------------
    def model_config(self, entry: ModelZooEntry) -> ModelConfig:
        tokenizer = self.world.tokenizer_for(entry.family.name)
        return scaled_config(
            vocab_size=tokenizer.vocab_size,
            scale=entry.tier,
            max_seq_len=self.config.seq_len,
            tie_embeddings=self.config.tie_embeddings,
        )

    QUIZ_HEADER = "Astrophysics and Cosmology Multiple choice questions Solution set :"
    GENERAL_HEADER = "Multiple choice questions Solution set :"

    def _epoch_documents(
        self, entry: ModelZooEntry, covered: Set[int], epoch: int
    ) -> List[str]:
        cfg = self.config
        rng = new_rng(cfg.seed, "pretrain", entry.family.name, entry.tier, epoch)
        docs: List[str] = []
        exercises: List[str] = []
        astro_exercises: List[str] = []
        for fact in self.world.general.facts:
            docs.append(fact.statement(int(rng.integers(0, 4))))
            for _ in range(cfg.general_exercises_per_fact):
                exercises.append(render_mcq_exercise(fact, rng))
        for fact in self.world.astro.facts:
            if fact.fact_id not in covered:
                continue
            docs.append(fact.statement(int(rng.integers(0, 4))))
            for _ in range(cfg.astro_exercises_per_fact):
                astro_exercises.append(render_mcq_exercise(fact, rng))
        # Exercises appear as multi-question "solution set" documents — the
        # web-quiz pattern the paper's two-shot prompt exploits — so the
        # few-shot evaluation format is in-distribution for base models.
        docs.extend(self._quiz_documents(exercises, self.GENERAL_HEADER, rng))
        docs.extend(self._quiz_documents(astro_exercises, self.QUIZ_HEADER, rng))
        for _ in range(cfg.filler_documents):
            n = int(rng.integers(2, 5))
            idx = rng.integers(0, len(_EVERYDAY), size=n)
            docs.append(" . ".join(_EVERYDAY[i] for i in idx) + " .")
        order = rng.permutation(len(docs))
        return [docs[i] for i in order]

    @staticmethod
    def _quiz_documents(
        exercises: List[str], header: str, rng: np.random.Generator
    ) -> List[str]:
        """Group exercises into 1-3-question quiz docs, most with a header."""
        order = rng.permutation(len(exercises))
        docs: List[str] = []
        i = 0
        while i < len(order):
            k = int(rng.integers(1, 4))
            block = [exercises[j] for j in order[i : i + k]]
            i += k
            if rng.random() < 0.7:
                docs.append(header + "\n" + "\n".join(block))
            else:
                docs.append("\n".join(block))
        return docs

    # ------------------------------------------------------------------
    def run(self, entry: ModelZooEntry, seed: int = 0) -> PretrainedBase:
        cfg = self.config
        tokenizer = self.world.tokenizer_for(entry.family.name)
        covered_ids = self.world.covered_fact_ids(
            entry.base_astro_coverage, stream=entry.family.name
        )
        covered = set(covered_ids)
        model = TransformerLM(self.model_config(entry), seed=seed)

        total_steps = cfg.total_steps or entry.family.base_train_steps
        lr = cfg.learning_rate or entry.family.base_lr
        epoch_counter = {"epoch": 0}
        eos = tokenizer.vocab.eos_id

        def make_batches():
            e = epoch_counter["epoch"]
            epoch_counter["epoch"] += 1
            docs = self._epoch_documents(entry, covered, e)
            token_docs = [tokenizer.encode(d) for d in docs]
            windows = pack_documents(token_docs, cfg.seq_len, eos, drop_last=False)
            dataset = PackedDataset(windows, cfg.batch_size, seed=e)
            for inputs, targets in dataset.batches():
                yield inputs, targets, None

        trainer = Trainer(
            model,
            TrainingConfig(
                learning_rate=lr,
                total_steps=total_steps,
                warmup_ratio=cfg.warmup_ratio,
                schedule="cosine",
                clip_norm=1.0,
            ),
        )
        history = trainer.train(make_batches)
        return PretrainedBase(
            entry=entry,
            model=model,
            tokenizer=tokenizer,
            covered_fact_ids=covered_ids,
            history=history,
        )
