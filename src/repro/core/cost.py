"""Section III cost accounting, regenerated from the cluster model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.parallel.cluster import A100_40GB, ClusterModel, TrainingCostEstimate


@dataclass(frozen=True)
class PaperCostFigures:
    """The GPU-hour figures the paper reports (A100-hours)."""

    cpt_8b: float = 32.0
    cpt_70b: float = 2000.0
    sft_8b: float = 12.0
    sft_70b: float = 100.0
    inference_70b_full_instruct: float = 64.0


@dataclass
class CostReport:
    """Estimated-vs-paper GPU-hours for every reported figure."""

    estimates: Dict[str, TrainingCostEstimate] = field(default_factory=dict)
    paper: PaperCostFigures = field(default_factory=PaperCostFigures)

    def paper_value(self, key: str) -> float:
        return {
            "cpt_8b": self.paper.cpt_8b,
            "cpt_70b": self.paper.cpt_70b,
            "sft_8b": self.paper.sft_8b,
            "sft_70b": self.paper.sft_70b,
            "inference_70b": self.paper.inference_70b_full_instruct,
        }[key]

    def ratio(self, key: str) -> float:
        """estimated / paper; 1.0 is perfect agreement."""
        return self.estimates[key].gpu_hours / self.paper_value(key)

    def within_band(self, factor: float = 2.0) -> bool:
        """All estimates within a multiplicative band of the paper."""
        return all(1.0 / factor <= self.ratio(k) <= factor for k in self.estimates)

    def render(self) -> str:
        lines = [f"{'phase':<16s} {'estimated (A100-h)':>20s} {'paper':>10s} {'ratio':>7s}"]
        lines.append("-" * len(lines[0]))
        for key, est in self.estimates.items():
            lines.append(
                f"{key:<16s} {est.gpu_hours:>20.1f} {self.paper_value(key):>10.0f} "
                f"{self.ratio(key):>7.2f}"
            )
        return "\n".join(lines)


def forecast_full_text_cpt(
    cluster: Optional[ClusterModel] = None,
    n_params: float = 70e9,
    papers: float = 330_000,
    tokens_per_paper: float = 8_000,
    corpus_multiplier: float = 1.0,
) -> TrainingCostEstimate:
    """The Section VII feasibility forecast.

    "Expanding that to the full text in astro-ph and beyond would easily
    necessitate O(10^4) to O(10^5) GPU hours" — regenerated here: full-text
    astro-ph is ~330k papers x ~8k tokens ~= 2.6B tokens; at the 70B
    multi-node MFU that is ~1.5e4 A100-hours, and "beyond" (textbooks,
    Wikipedia, curated literature; ``corpus_multiplier`` > 1) pushes toward
    1e5.
    """
    cluster = cluster or ClusterModel()
    tokens = papers * tokens_per_paper * corpus_multiplier
    return cluster.estimate_cpt(n_params, tokens)


def paper_cost_accounting(
    cluster: Optional[ClusterModel] = None,
    cpt_tokens: float = 0.34e9,
    sft_samples: int = 30356,
    sft_padded_len: int = 2048,
    n_mcqs: int = 4425,
    prompt_tokens: int = 600,
    gen_tokens: int = 512,
) -> CostReport:
    """Regenerate the paper's five GPU-hour figures.

    ``cpt_tokens`` ~= 0.34B is the AIC token count implied by the reported
    32 A100-hours at single-node MFU (326k papers x ~1k tokens); the other
    defaults come straight from Section III / V.
    """
    cluster = cluster or ClusterModel()
    report = CostReport()
    report.estimates["cpt_8b"] = cluster.estimate_cpt(8e9, cpt_tokens)
    report.estimates["cpt_70b"] = cluster.estimate_cpt(70e9, cpt_tokens)
    report.estimates["sft_8b"] = cluster.estimate_sft(
        8e9, sft_samples, sft_padded_len
    )
    report.estimates["sft_70b"] = cluster.estimate_sft(
        70e9, sft_samples, sft_padded_len
    )
    report.estimates["inference_70b"] = cluster.estimate_inference(
        70e9, n_mcqs, prompt_tokens, gen_tokens
    )
    return report
