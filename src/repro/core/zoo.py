"""The model zoo: micro analogues of every Table-I row.

Each :class:`ModelZooEntry` describes one paper model:

* the **family** fixes architecture generation and tokenizer convention —
  the llama-2 analogue family uses bare answer tokens, the llama-3 family
  space-prefixed ones (exercising the eval harness's dynamic discovery);
* the **tier** fixes capacity (the 7B/8B/70B ladder);
* ``base_astro_coverage`` fixes how much of the astronomy world the base
  pretraining corpus exposes (the "LLaMA already knows some astronomy"
  knob; larger/newer models know more, matching their Table-I baselines);
* ``cpt_dataset`` names which CPT corpus the AstroLLaMA variant trains on
  (``None`` for native baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FamilySpec:
    """An architecture generation (LLaMA-2 vs LLaMA-3 analogue)."""

    name: str
    space_prefix_tokens: bool  # tokenizer answer-letter convention
    base_train_steps: int  # pretraining budget (newer gen: more tokens)
    base_lr: float


@dataclass(frozen=True)
class ModelZooEntry:
    """One Table-I row."""

    name: str  # e.g. "AstroLLaMA-2-70B-AIC"
    paper_name: str  # exact Table-I label
    family: FamilySpec
    tier: str  # "tiny" (7B) | "small" (8B) | "large" (70B)
    params_label: str  # "7B" | "8B" | "70B"
    base_astro_coverage: float
    cpt_dataset: Optional[str] = None  # None | "abstract" | "aic" | "summary"
    cpt_lora: bool = False  # the original AstroLLaMA used LoRA
    source: str = "Meta"
    reference: str = "[3]"
    # paper Table-I scores (percent), for calibration/report comparison:
    paper_full_instruct: Optional[float] = None
    paper_token_instruct: Optional[float] = None
    paper_token_base: Optional[float] = None

    @property
    def is_native(self) -> bool:
        return self.cpt_dataset is None

    @property
    def base_name(self) -> str:
        """The native baseline this entry is compared against."""
        if self.family.name == "llama-2" and self.tier == "tiny":
            return "LLaMA-2-7B"
        if self.family.name == "llama-3":
            return "LLaMA-3-8B"
        return "LLaMA-2-70B"


# Step budgets sit past the circuit-emergence ("grokking") point measured
# for each tier: the match-and-emit MCQ circuit forms at ~700-800 optimizer
# steps in this world. The llama-3 family gets a larger budget (newer
# generation = more pretraining tokens), which is what lifts its baseline.
LLAMA2_FAMILY = FamilySpec(
    name="llama-2", space_prefix_tokens=False, base_train_steps=1000, base_lr=2.2e-3
)
LLAMA3_FAMILY = FamilySpec(
    name="llama-3", space_prefix_tokens=True, base_train_steps=1150, base_lr=2.2e-3
)

MICRO_ZOO: Dict[str, ModelZooEntry] = {
    entry.name: entry
    for entry in [
        ModelZooEntry(
            name="LLaMA-2-7B",
            paper_name="LLaMA-2-7B",
            family=LLAMA2_FAMILY,
            tier="tiny",
            params_label="7B",
            base_astro_coverage=0.35,
            paper_full_instruct=50.3,
            paper_token_instruct=62.6,
            paper_token_base=51.3,
        ),
        ModelZooEntry(
            name="AstroLLaMA-2-7B-Abstract",
            paper_name="AstroLLaMA-2-7B-Abstract",
            family=LLAMA2_FAMILY,
            tier="tiny",
            params_label="7B",
            base_astro_coverage=0.35,
            cpt_dataset="abstract",
            cpt_lora=True,
            source="uTBD",
            reference="[27]",
            paper_token_base=43.5,
        ),
        ModelZooEntry(
            name="AstroLLaMA-2-7B-AIC",
            paper_name="AstroLLaMA-2-7B-AIC",
            family=LLAMA2_FAMILY,
            tier="tiny",
            params_label="7B",
            base_astro_coverage=0.35,
            cpt_dataset="aic",
            source="uTBD",
            reference="[28]",
            paper_full_instruct=41.4,
            paper_token_instruct=47.2,
            paper_token_base=44.3,
        ),
        ModelZooEntry(
            name="LLaMA-3-8B",
            paper_name="LLaMA-3-8B",
            family=LLAMA3_FAMILY,
            tier="small",
            params_label="8B",
            base_astro_coverage=0.65,
            reference="[4]",
            paper_full_instruct=72.9,
            paper_token_instruct=73.6,
            paper_token_base=72.0,
        ),
        ModelZooEntry(
            name="AstroLLaMA-3-8B-AIC",
            paper_name="AstroLLaMA-3-8B-AIC",
            family=LLAMA3_FAMILY,
            tier="small",
            params_label="8B",
            base_astro_coverage=0.65,
            cpt_dataset="aic",
            source="AstroMLab",
            reference="This Study",
            paper_full_instruct=61.8,
            paper_token_instruct=68.4,
            paper_token_base=71.9,
        ),
        ModelZooEntry(
            name="AstroLLaMA-3-8B-Summary",
            paper_name="AstroLLaMA-3-8B-Summary",
            family=LLAMA3_FAMILY,
            tier="small",
            params_label="8B",
            base_astro_coverage=0.65,
            cpt_dataset="summary",
            source="AstroMLab",
            reference="This Study",
            paper_full_instruct=69.0,
            paper_token_instruct=70.9,
            paper_token_base=72.3,
        ),
        ModelZooEntry(
            name="LLaMA-2-70B",
            paper_name="LLaMA-2-70B",
            family=LLAMA2_FAMILY,
            tier="large",
            params_label="70B",
            base_astro_coverage=0.68,
            paper_full_instruct=70.7,
            paper_token_instruct=71.4,
            paper_token_base=73.9,
        ),
        ModelZooEntry(
            name="AstroLLaMA-2-70B-AIC",
            paper_name="AstroLLaMA-2-70B-AIC",
            family=LLAMA2_FAMILY,
            tier="large",
            params_label="70B",
            base_astro_coverage=0.68,
            cpt_dataset="aic",
            source="AstroMLab",
            reference="This Study",
            paper_full_instruct=64.7,
            paper_token_instruct=75.4,
            paper_token_base=76.0,
        ),
    ]
}


def zoo_entries() -> List[ModelZooEntry]:
    """All Table-I rows in the paper's presentation order."""
    order = [
        "LLaMA-2-7B",
        "AstroLLaMA-2-7B-AIC",
        "AstroLLaMA-2-7B-Abstract",
        "LLaMA-3-8B",
        "AstroLLaMA-3-8B-AIC",
        "AstroLLaMA-3-8B-Summary",
        "LLaMA-2-70B",
        "AstroLLaMA-2-70B-AIC",
    ]
    return [MICRO_ZOO[name] for name in order]


def get_entry(name: str) -> ModelZooEntry:
    if name not in MICRO_ZOO:
        raise KeyError(f"unknown zoo entry {name!r}; known: {sorted(MICRO_ZOO)}")
    return MICRO_ZOO[name]
