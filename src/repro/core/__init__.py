"""The paper's contribution, end to end.

* :mod:`repro.core.zoo` — the model registry: micro analogues of every
  Table-I row (native LLaMA baselines and AstroLLaMA variants), with
  per-family tokenizer conventions and capability knobs;
* :mod:`repro.core.pretrain` — streaming base-model pretraining (fresh
  quiz shuffles every epoch, the infinite-data regime base LLMs live in);
* :mod:`repro.core.pipeline` — pretrain -> CPT -> SFT -> three-method
  evaluation for one zoo member;
* :mod:`repro.core.scorecards` — Table-I assembly with better/worse/similar
  arrows;
* :mod:`repro.core.cost` — the Section III GPU-hour accounting.
"""

from repro.core.zoo import (
    MICRO_ZOO,
    FamilySpec,
    ModelZooEntry,
    get_entry,
    zoo_entries,
)
from repro.core.pretrain import BasePretrainConfig, BasePretrainer, PretrainedBase
from repro.core.pipeline import (
    AstroLLaMAPipeline,
    PipelineConfig,
    PipelineResult,
)
from repro.core.scorecards import ScoreCard, TableOne, Arrow, arrow_for
from repro.core.cost import CostReport, forecast_full_text_cpt, paper_cost_accounting

__all__ = [
    "FamilySpec",
    "ModelZooEntry",
    "MICRO_ZOO",
    "zoo_entries",
    "get_entry",
    "BasePretrainConfig",
    "BasePretrainer",
    "PretrainedBase",
    "PipelineConfig",
    "AstroLLaMAPipeline",
    "PipelineResult",
    "ScoreCard",
    "TableOne",
    "Arrow",
    "arrow_for",
    "CostReport",
    "paper_cost_accounting",
    "forecast_full_text_cpt",
]
