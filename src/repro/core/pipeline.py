"""The end-to-end AstroLLaMA pipeline for one zoo entry.

Stages (paper Section III):

1. **Base pretraining** — streaming general+astronomy mixture (native
   LLaMA analogue);
2. **CPT** — continual pretraining on the entry's astro dataset
   (Abstract / AIC / Summary), full-parameter or LoRA;
3. **SFT** — the paper-ratio conversation mixture;
4. **Evaluation** — the three benchmarking methods over the world's MCQ
   benchmark.

Native baselines skip stage 2.  The result carries both models (base and
instruct) plus every score, so Table I assembles directly from a list of
:class:`PipelineResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.pretrain import BasePretrainConfig, BasePretrainer, PretrainedBase
from repro.core.scorecards import ScoreCard
from repro.core.world import MicroWorld
from repro.core.zoo import ModelZooEntry
from repro.corpus.datasets import (
    CorpusDataset,
    build_abstract_dataset,
    build_aic_dataset,
    build_summary_dataset,
    with_qa_bridge,
)
from repro.eval.full_instruct import FullInstructEvaluator
from repro.eval.runner import BatchedEvaluationRunner, EvaluationResult
from repro.eval.token_pred import TokenPredictionEvaluator
from repro.model.lora import LoRAConfig, apply_lora, merge_lora
from repro.model.sampling import GenerationConfig
from repro.model.transformer import TransformerLM
from repro.sft_data.mixer import MixtureSpec, build_paper_mixture
from repro.train.cpt import ContinualPretrainer, CPTConfig
from repro.train.sft import SFTConfig, SupervisedFineTuner
from repro.train.trainer import TrainingHistory


def clone_model(model: TransformerLM) -> TransformerLM:
    """Deep copy a model (same config, independent parameters)."""
    twin = TransformerLM(model.config)
    twin.load_state(model.state_copy())
    return twin


@dataclass
class PipelineConfig:
    """Every stage's knobs, tuned for the micro world.

    The CPT learning rate / epoch ladder is the micro analogue of the
    paper's fixed recipe: all entries share it (the paper used the same
    hyperparameters across scales, which is exactly why small models
    suffered — see Section VI).
    """

    pretrain: BasePretrainConfig = field(default_factory=BasePretrainConfig)
    # CPT
    cpt_learning_rate: float = 9e-4
    cpt_epochs: float = 6.0
    cpt_batch_size: int = 16
    cpt_qa_bridge: float = 0.3
    cpt_word_budget: Optional[int] = None  # fixed token budget across datasets
    lora_rank: int = 8
    # SFT
    sft_scale: float = 0.01  # fraction of the paper's 31k mixture
    sft_learning_rate: float = 4e-4
    sft_epochs: float = 2.0
    sft_batch_size: int = 8
    # evaluation
    max_questions: Optional[int] = None
    few_shot: int = 2
    gen_max_new_tokens: int = 32
    eval_batch_size: int = 32  # suffix batch for prefix-cached token scoring
    seed: int = 0


@dataclass
class PipelineResult:
    """Everything one zoo entry's run produced."""

    entry: ModelZooEntry
    base: PretrainedBase
    instruct_model: TransformerLM
    cpt_history: Optional[TrainingHistory]
    sft_history: TrainingHistory
    evaluations: Dict[str, EvaluationResult] = field(default_factory=dict)

    def score_card(self) -> ScoreCard:
        return ScoreCard(
            entry=self.entry,
            scores={
                method: result.score_percent
                for method, result in self.evaluations.items()
            },
        )


class AstroLLaMAPipeline:
    """Runs zoo entries against one micro world."""

    def __init__(
        self, world: MicroWorld, config: Optional[PipelineConfig] = None
    ) -> None:
        self.world = world
        self.config = config or PipelineConfig()
        self._base_cache: Dict[str, PretrainedBase] = {}
        self._cpt_cache: Dict[str, tuple] = {}
        self._result_cache: Dict[str, PipelineResult] = {}

    # ------------------------------------------------------------------
    # stage 1: base model (cached per family+tier+coverage)
    # ------------------------------------------------------------------
    def base_for(self, entry: ModelZooEntry) -> PretrainedBase:
        key = f"{entry.family.name}/{entry.tier}/{entry.base_astro_coverage}"
        if key not in self._base_cache:
            pretrainer = BasePretrainer(self.world, self.config.pretrain)
            self._base_cache[key] = pretrainer.run(entry, seed=self.config.seed)
        cached = self._base_cache[key]
        if cached.entry.name != entry.name:
            # same weights, different zoo identity
            cached = PretrainedBase(
                entry=entry,
                model=cached.model,
                tokenizer=cached.tokenizer,
                covered_fact_ids=cached.covered_fact_ids,
                history=cached.history,
            )
        return cached

    # ------------------------------------------------------------------
    # stage 2: CPT
    # ------------------------------------------------------------------
    def cpt_dataset(self, name: str) -> CorpusDataset:
        builders = {
            "abstract": build_abstract_dataset,
            "aic": build_aic_dataset,
            "summary": build_summary_dataset,
        }
        if name not in builders:
            raise KeyError(f"unknown CPT dataset {name!r}")
        dataset = builders[name](self.world.archive)
        if self.config.cpt_word_budget is not None:
            dataset = dataset.truncate_words(self.config.cpt_word_budget)
        if self.config.cpt_qa_bridge > 0:
            dataset = with_qa_bridge(
                dataset,
                self.world.astro,
                self.config.cpt_qa_bridge,
                seed=self.config.seed,
            )
        return dataset

    def run_cpt(
        self, entry: ModelZooEntry, base: PretrainedBase
    ) -> tuple:
        """Returns (cpt_model, history)."""
        cfg = self.config
        assert entry.cpt_dataset is not None
        dataset = self.cpt_dataset(entry.cpt_dataset)
        model = clone_model(base.model)
        tokenizer = base.tokenizer
        docs = [tokenizer.encode(d) for d in dataset.documents]
        adapters = None
        if entry.cpt_lora:
            adapters = apply_lora(
                model, LoRAConfig(rank=cfg.lora_rank), seed=cfg.seed
            )
        cpt = ContinualPretrainer(
            CPTConfig(
                learning_rate=cfg.cpt_learning_rate
                * (4.0 if entry.cpt_lora else 1.0),
                total_batch_size=cfg.cpt_batch_size,
                max_token_length=model.config.max_seq_len,
                epochs=cfg.cpt_epochs,
                bf16=False,
                seed=cfg.seed,
            )
        )
        result = cpt.run(model, docs, tokenizer.vocab.eos_id)
        if adapters is not None:
            merge_lora(model)
        return model, result.history

    # ------------------------------------------------------------------
    # stage 3: SFT
    # ------------------------------------------------------------------
    def run_sft(
        self, base_model: TransformerLM, tokenizer
    ) -> tuple:
        """Returns (instruct_model, history)."""
        cfg = self.config
        mixture = build_paper_mixture(
            self.world.archive,
            self.world.astro,
            self.world.general,
            spec=MixtureSpec().scaled(cfg.sft_scale),
            seed=cfg.seed,
        )
        model = clone_model(base_model)
        tuner = SupervisedFineTuner(
            tokenizer,
            pad_id=tokenizer.vocab.pad_id,
            eos_id=tokenizer.vocab.eos_id,
            config=SFTConfig(
                learning_rate=cfg.sft_learning_rate,
                total_batch_size=cfg.sft_batch_size,
                max_token_length=min(192, model.config.max_seq_len),
                epochs=cfg.sft_epochs,
                bf16=False,
                seed=cfg.seed,
            ),
        )
        result = tuner.run(model, mixture.examples)
        return model, result.history

    # ------------------------------------------------------------------
    # stage 4: evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        base_model: TransformerLM,
        instruct_model: TransformerLM,
        tokenizer,
        model_name: str,
    ) -> Dict[str, EvaluationResult]:
        cfg = self.config
        runner = BatchedEvaluationRunner(self.world.benchmark, cfg.max_questions)
        few_shot = self.world.benchmark.few_shot(cfg.few_shot)
        prefix = [tokenizer.vocab.eos_id]
        out: Dict[str, EvaluationResult] = {}

        base_eval = TokenPredictionEvaluator(
            base_model,
            tokenizer,
            few_shot,
            prefix_ids=prefix,
            batch_size=cfg.eval_batch_size,
        )
        out["token_base"] = runner.run(base_eval, "token_base", model_name)

        instr_eval = TokenPredictionEvaluator(
            instruct_model,
            tokenizer,
            few_shot,
            prefix_ids=prefix,
            batch_size=cfg.eval_batch_size,
        )
        out["token_instruct"] = runner.run(
            instr_eval, "token_instruct", model_name
        )

        full_eval = FullInstructEvaluator(
            instruct_model,
            tokenizer,
            generation=GenerationConfig(
                max_new_tokens=cfg.gen_max_new_tokens,
                temperature=0.0,
                stop_token_ids=(tokenizer.vocab.eos_id,),
            ),
            prefix_ids=prefix,
        )
        out["full_instruct"] = runner.run(
            full_eval, "full_instruct", model_name
        )
        return out

    # ------------------------------------------------------------------
    def run(self, entry: ModelZooEntry, use_cache: bool = True) -> PipelineResult:
        """All four stages for one zoo entry.

        Stage outputs are cached per entry (and bases per tier), so a
        harness that runs the whole zoo plus per-mechanism studies trains
        each model exactly once.  Pass ``use_cache=False`` for independent
        replicates.
        """
        if use_cache and entry.name in self._result_cache:
            return self._result_cache[entry.name]
        base = self.base_for(entry)
        cpt_history = None
        if entry.cpt_dataset is not None:
            if use_cache and entry.name in self._cpt_cache:
                knowledge_model, cpt_history = self._cpt_cache[entry.name]
            else:
                knowledge_model, cpt_history = self.run_cpt(entry, base)
                self._cpt_cache[entry.name] = (knowledge_model, cpt_history)
        else:
            knowledge_model = base.model
        instruct_model, sft_history = self.run_sft(knowledge_model, base.tokenizer)
        evaluations = self.evaluate(
            knowledge_model, instruct_model, base.tokenizer, entry.name
        )
        result = self._assemble_result(
            entry, base, knowledge_model, instruct_model,
            cpt_history, sft_history, evaluations,
        )
        if use_cache:
            self._result_cache[entry.name] = result
        return result

    def _assemble_result(
        self,
        entry,
        base,
        knowledge_model,
        instruct_model,
        cpt_history,
        sft_history,
        evaluations,
    ) -> PipelineResult:
        return PipelineResult(
            entry=entry,
            base=PretrainedBase(
                entry=entry,
                model=knowledge_model,
                tokenizer=base.tokenizer,
                covered_fact_ids=base.covered_fact_ids,
                history=base.history,
            ),
            instruct_model=instruct_model,
            cpt_history=cpt_history,
            sft_history=sft_history,
            evaluations=evaluations,
        )
