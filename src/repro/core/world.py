"""The micro world: one self-consistent universe for a whole experiment.

Bundles the two knowledge bases, the synthetic astro-ph archive, the MCQ
benchmark, and one tokenizer per model family (conventions differ), so
every zoo member trains and evaluates against the same closed world.

Two presets:

* ``MicroWorld.build_test()`` — tiny, for unit/integration tests;
* ``MicroWorld.build_bench()`` — the benchmark-harness size (larger fact
  base, more papers, more questions; minutes of training per model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.corpus.arxiv import ArxivArchive
from repro.corpus.general import render_mcq_exercise
from repro.corpus.knowledge import (
    KnowledgeBase,
    make_astro_knowledge,
    make_general_knowledge,
)
from repro.mcq.dataset import MCQBenchmark, build_benchmark
from repro.tokenizer import TextNormalizer, WordTokenizer
from repro.train.sft import ChatTemplate
from repro.utils.rng import new_rng


@dataclass
class WorldConfig:
    """Sizing of the micro world."""

    n_astro_facts: int = 64
    n_general_facts: int = 40
    n_papers: int = 120
    n_articles: int = 20
    questions_per_article: int = 5
    facts_per_article: int = 6
    dev_size: int = 6
    subject_multiplier: int = 4
    vocab_size: int = 6000
    seed: int = 0


@dataclass
class MicroWorld:
    """Everything an experiment needs, built deterministically from a seed."""

    config: WorldConfig
    astro: KnowledgeBase
    general: KnowledgeBase
    archive: ArxivArchive
    benchmark: MCQBenchmark
    tokenizers: Dict[str, WordTokenizer]  # family name -> tokenizer

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, config: Optional[WorldConfig] = None) -> "MicroWorld":
        config = config or WorldConfig()
        astro = make_astro_knowledge(
            n_facts=config.n_astro_facts,
            seed=config.seed,
            subject_multiplier=config.subject_multiplier,
        )
        general = make_general_knowledge(
            n_facts=config.n_general_facts,
            seed=config.seed,
            subject_multiplier=config.subject_multiplier,
        )
        archive = ArxivArchive(astro, n_papers=config.n_papers, seed=config.seed + 1)
        benchmark = build_benchmark(
            astro,
            n_articles=config.n_articles,
            questions_per_article=config.questions_per_article,
            facts_per_article=config.facts_per_article,
            dev_size=config.dev_size,
            seed=config.seed + 2,
        )
        vocab_text = cls._vocab_text(astro, general, config.seed)
        tokenizers = {
            "llama-2": WordTokenizer.train(
                vocab_text, vocab_size=config.vocab_size, space_prefix=False
            ),
            "llama-3": WordTokenizer.train(
                vocab_text, vocab_size=config.vocab_size, space_prefix=True
            ),
        }
        return cls(
            config=config,
            astro=astro,
            general=general,
            archive=archive,
            benchmark=benchmark,
            tokenizers=tokenizers,
        )

    @classmethod
    def build_test(cls, seed: int = 0) -> "MicroWorld":
        return cls.build(
            WorldConfig(
                n_astro_facts=32,
                n_general_facts=20,
                n_papers=36,
                n_articles=8,
                facts_per_article=5,
                dev_size=4,
                seed=seed,
            )
        )

    @classmethod
    def build_bench(cls, seed: int = 0) -> "MicroWorld":
        return cls.build(
            WorldConfig(
                n_astro_facts=64,
                n_general_facts=40,
                n_papers=140,
                n_articles=24,
                facts_per_article=6,
                dev_size=6,
                seed=seed,
            )
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _vocab_text(
        astro: KnowledgeBase, general: KnowledgeBase, seed: int
    ) -> List[str]:
        """Text spanning every token any pipeline stage can produce."""
        rng = new_rng(seed, "vocab-probe")
        texts: List[str] = []
        for kb in (astro, general):
            for f in kb.facts:
                texts.extend(f.statement(i) for i in range(4))
                texts.append(render_mcq_exercise(f, rng))
        template = ChatTemplate()
        texts.append(template.render_full("placeholder", "placeholder"))
        texts.append(
            "Astrophysics and Cosmology Multiple choice questions Solution set :"
        )
        texts.append(
            "the answer is A . let us think step by step . therefore so the "
            "value is . could you tell me about ? do you have any advice about"
        )
        # SFT chitchat vocabulary
        from repro.sft_data.lima import _CLOSERS, _LEAD_INS
        from repro.sft_data.ultrachat import _ADVICE, _OPENERS, _TOPICS
        from repro.corpus.general import _EVERYDAY
        from repro.corpus.generator import _BODY_NOISE, _FILLER_OPENERS

        texts.extend(_LEAD_INS + _CLOSERS + _TOPICS + _OPENERS + _ADVICE)
        texts.extend(_EVERYDAY + _FILLER_OPENERS + _BODY_NOISE)
        texts.append("summary of on the of .")
        texts.append(
            "this review surveys recent progress on . a consensus has emerged "
            "over the past decade : multiple independent groups now agree on "
            "this picture the field has converged on the following view this "
            "has been confirmed across several surveys the evidence assembled "
            "in this review supports the interpretation"
        )
        # Close the vocabulary under both word forms: under the space-prefix
        # convention a word is a *different token* at document start than
        # mid-text, and any word can start a packed document.  Emit every
        # word once standalone (bare form) and once space-preceded
        # (marker form) so neither convention ever hits <unk>.
        words = sorted({w for t in texts for w in t.split()})
        texts.extend(words)
        texts.extend(". " + w for w in words)
        return texts

    # ------------------------------------------------------------------
    def tokenizer_for(self, family_name: str) -> WordTokenizer:
        if family_name not in self.tokenizers:
            raise KeyError(f"unknown family {family_name!r}")
        return self.tokenizers[family_name]

    def covered_fact_ids(self, coverage: float, stream: str = "base") -> List[int]:
        """Deterministic astro-fact subset a base corpus exposes."""
        if not 0 <= coverage <= 1:
            raise ValueError("coverage must be in [0, 1]")
        n = int(round(len(self.astro) * coverage))
        order = new_rng(self.config.seed, "coverage", stream).permutation(
            len(self.astro)
        )
        return sorted(self.astro.facts[i].fact_id for i in order[:n])
