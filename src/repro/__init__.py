"""AstroMLab 2 reproduction: AstroLLaMA-2-70B and benchmarking specialised
LLMs for astronomy (SC 2024), on a micro-scale NumPy LLM substrate.

Public API tour
---------------

Worlds and data::

    from repro.core.world import MicroWorld
    world = MicroWorld.build_test()          # knowledge + archive + benchmark

Models and training::

    from repro.core import AstroLLaMAPipeline, get_entry
    pipe = AstroLLaMAPipeline(world)
    result = pipe.run(get_entry("AstroLLaMA-2-70B-AIC"))  # pretrain->CPT->SFT->eval

Headline results::

    from repro.analysis import table_one_from_surrogate
    print(table_one_from_surrogate().render())  # Table I, calibrated surrogate

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results of every table and figure.
"""

__version__ = "1.0.0"

from repro.core.world import MicroWorld, WorldConfig
from repro.core.zoo import MICRO_ZOO, get_entry, zoo_entries

__all__ = [
    "__version__",
    "MicroWorld",
    "WorldConfig",
    "MICRO_ZOO",
    "get_entry",
    "zoo_entries",
]
