"""Experiment reports: paper-vs-measured comparisons for EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def format_comparison(
    name: str, paper: Optional[float], measured: Optional[float], unit: str = "%"
) -> str:
    p = f"{paper:.1f}{unit}" if paper is not None else "–"
    m = f"{measured:.1f}{unit}" if measured is not None else "–"
    delta = ""
    if paper is not None and measured is not None:
        delta = f" (Δ {measured - paper:+.1f})"
    return f"{name}: paper {p} vs measured {m}{delta}"


@dataclass
class ExperimentReport:
    """A named collection of paper-vs-measured datapoints."""

    experiment_id: str
    title: str
    rows: List[Tuple[str, Optional[float], Optional[float]]] = field(
        default_factory=list
    )
    notes: List[str] = field(default_factory=list)

    def add(self, name: str, paper: Optional[float], measured: Optional[float]) -> None:
        self.rows.append((name, paper, measured))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [f"## {self.experiment_id}: {self.title}"]
        for name, paper, measured in self.rows:
            lines.append("  " + format_comparison(name, paper, measured))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def max_abs_delta(self) -> float:
        deltas = [
            abs(m - p) for _, p, m in self.rows if p is not None and m is not None
        ]
        return max(deltas) if deltas else 0.0
