"""Table I assembly and rendering."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.scorecards import METHODS, ScoreCard, TableOne
from repro.core.zoo import zoo_entries
from repro.scale.surrogate import SurrogateModel


def table_one_from_surrogate(
    model: Optional[SurrogateModel] = None, similar_band: float = 1.0
) -> TableOne:
    """Build the full Table I grid from the calibrated surrogate."""
    model = model or SurrogateModel()
    table = TableOne(similar_band=similar_band)
    for entry in zoo_entries():
        scores = model.scores(entry).as_dict()
        table.add(ScoreCard(entry=entry, scores=scores))
    return table


def render_table_one_markdown(table: TableOne, show_paper: bool = True) -> str:
    """GitHub-flavoured markdown rendering of a TableOne."""
    header = "| Model | Full Instruct (%) | Token Pred. (Instruct) (%) | Token Pred. (Base) (%) |"
    sep = "|---|---|---|---|"
    if show_paper:
        header += " Paper (FI/TI/TB) |"
        sep += "---|"
    lines = [header, sep]
    for row in table.rows():
        cells = []
        for method in METHODS:
            score = row[method]
            arrow = row[f"{method}_arrow"]
            cells.append(f"{score:.1f} {arrow}".strip() if score is not None else "–")
        line = f"| {row['model']} | {cells[0]} | {cells[1]} | {cells[2]} |"
        if show_paper:
            papers = [
                f"{row[f'{m}_paper']:.1f}" if row[f"{m}_paper"] is not None else "–"
                for m in METHODS
            ]
            line += f" {papers[0]} / {papers[1]} / {papers[2]} |"
        lines.append(line)
    return "\n".join(lines)
