"""Surrogate-driven ablation sweeps.

The calibrated mechanism model lets us ask the counterfactuals the paper
discusses but could not afford to run:

* :func:`sft_remedy_sweep` — the Section VI remedy: how full-instruct
  scores recover as the SFT set becomes astronomy-focused (the de Haan et
  al. 50M-Q&A direction);
* :func:`dataset_quality_sweep` — base-token score vs CPT data quality
  (the "textbooks + Wikipedia + summaries" path of Section VII);
* :func:`capacity_frontier` — CPT delta as a function of the forgetting
  fragility, locating the capacity break-even the paper observed between
  8B and 70B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.zoo import ModelZooEntry, get_entry
from repro.scale.surrogate import SurrogateModel


@dataclass
class Sweep:
    """One ablation curve."""

    name: str
    parameter: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def monotone_increasing(self) -> bool:
        return all(b >= a - 1e-9 for a, b in zip(self.ys, self.ys[1:]))

    def crossing(self, level: float) -> Optional[float]:
        """First x where the curve crosses ``level`` (linear interpolation)."""
        for (x0, y0), (x1, y1) in zip(
            zip(self.xs, self.ys), zip(self.xs[1:], self.ys[1:])
        ):
            if (y0 - level) * (y1 - level) <= 0 and y0 != y1:
                t = (level - y0) / (y1 - y0)
                return x0 + t * (x1 - x0)
        return None

    def render(self, width: int = 50) -> str:
        lo, hi = min(self.ys), max(self.ys)
        span = max(hi - lo, 1e-9)
        lines = [f"{self.name} ({self.parameter})"]
        for x, y in zip(self.xs, self.ys):
            bar = "#" * int(round((y - lo) / span * width))
            lines.append(f"  {x:8.3f} | {bar} {y:.1f}")
        return "\n".join(lines)


def sft_remedy_sweep(
    entry_name: str = "AstroLLaMA-2-70B-AIC",
    fractions: Sequence[float] = (1 / 3, 0.5, 0.7, 0.9, 1.0),
    model: Optional[SurrogateModel] = None,
) -> Sweep:
    """Full-instruct score vs astronomy fraction of the SFT mixture."""
    model = model or SurrogateModel()
    entry = get_entry(entry_name)
    sweep = Sweep(entry_name, "sft_astro_fraction")
    for fraction in fractions:
        score = model.full_instruct(entry, sft_astro_fraction=fraction)
        if score is None:
            raise ValueError(f"{entry_name} has no full-instruct surrogate")
        sweep.add(fraction, score)
    return sweep


def dataset_quality_sweep(
    entry_name: str = "AstroLLaMA-3-8B-AIC",
    qualities: Sequence[float] = (0.45, 0.6, 0.75, 0.85, 0.95),
    model: Optional[SurrogateModel] = None,
) -> Sweep:
    """Base-token score vs the CPT dataset's information quality."""
    model = model or SurrogateModel()
    entry = get_entry(entry_name)
    if entry.cpt_dataset is None:
        raise ValueError("sweep needs a CPT entry")
    sweep = Sweep(entry_name, "dataset_quality")
    for q in qualities:
        params = model.params
        quality = dict(params.dataset_quality)
        quality[entry.cpt_dataset] = q
        ablated = model.with_params(dataset_quality=quality)
        sweep.add(q, ablated.token_base(entry))
    return sweep


def capacity_frontier(
    entry_name: str = "AstroLLaMA-2-7B-AIC",
    phis: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 17.4),
    model: Optional[SurrogateModel] = None,
) -> Tuple[Sweep, Optional[float]]:
    """CPT delta vs forgetting fragility; returns (sweep, break-even phi).

    The break-even is where CPT stops helping — the paper locates real
    models either side of it (70B below, 7B far above).
    """
    model = model or SurrogateModel()
    entry = get_entry(entry_name)
    sweep = Sweep(entry_name, "phi (forgetting fragility)")
    for phi in phis:
        new_phi = dict(model.params.phi)
        new_phi[entry.tier] = phi
        ablated = model.with_params(phi=new_phi)
        sweep.add(phi, ablated.cpt_delta(entry))
    return sweep, sweep.crossing(0.0)
