"""Figure 1: per-series scores with native-baseline reference lines.

The paper's Figure 1 plots, for each model, three symbols (one per
benchmarking method) grouped by model series, with horizontal lines at the
native models' full-instruct scores.  :class:`Figure1Data` is the exact
data behind that plot; :func:`render_figure1_ascii` draws it in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.scorecards import METHODS, TableOne
from repro.core.zoo import zoo_entries

_SYMBOLS = {"full_instruct": "o", "token_instruct": "x", "token_base": "*"}

SERIES_ORDER = (
    "LLaMA-2 7B series",
    "LLaMA-3 8B series",
    "LLaMA-2 70B series",
)


def _series_of(entry) -> str:
    if entry.params_label == "7B":
        return SERIES_ORDER[0]
    if entry.params_label == "8B":
        return SERIES_ORDER[1]
    return SERIES_ORDER[2]


@dataclass
class Figure1Data:
    """The plotted quantities: per-model method scores + baseline lines."""

    # model -> method -> score
    points: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    # series -> native full-instruct score (the horizontal lines)
    baselines: Dict[str, float] = field(default_factory=dict)
    # series -> ordered model names
    series: Dict[str, List[str]] = field(default_factory=dict)

    def score_range(self) -> Tuple[float, float]:
        values = [
            v
            for methods in self.points.values()
            for v in methods.values()
            if v is not None
        ] + list(self.baselines.values())
        return min(values), max(values)


def build_figure1(table: TableOne) -> Figure1Data:
    """Extract the figure's data from an assembled Table I."""
    fig = Figure1Data()
    for entry in zoo_entries():
        card = table.cards.get(entry.name)
        if card is None:
            continue
        series = _series_of(entry)
        fig.series.setdefault(series, []).append(entry.name)
        fig.points[entry.name] = {m: card.score(m) for m in METHODS}
        if entry.is_native:
            fi = card.score("full_instruct")
            if fi is not None:
                fig.baselines[series] = fi
    return fig


def render_figure1_ascii(fig: Figure1Data, width: int = 60) -> str:
    """Terminal rendering: one row per model, score axis horizontal."""
    lo, hi = fig.score_range()
    lo, hi = lo - 2.0, hi + 2.0
    span = hi - lo

    def col(score: float) -> int:
        return int(round((score - lo) / span * (width - 1)))

    lines: List[str] = []
    lines.append(
        f"legend: o=full instruct  x=token(instruct)  *=token(base)   "
        f"|=native full-instruct baseline"
    )
    lines.append(f"score axis: {lo:.1f} .. {hi:.1f}")
    for series in SERIES_ORDER:
        if series not in fig.series:
            continue
        lines.append("")
        lines.append(f"-- {series} --")
        base_col = col(fig.baselines[series]) if series in fig.baselines else None
        for name in fig.series[series]:
            row = [" "] * width
            if base_col is not None:
                row[base_col] = "|"
            for method, score in fig.points[name].items():
                if score is None:
                    continue
                c = col(score)
                row[c] = _SYMBOLS[method] if row[c] in (" ", "|") else "+"
            lines.append(f"{name:<28s} {''.join(row)}")
    return "\n".join(lines)
