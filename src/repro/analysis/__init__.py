"""Result rendering: Table I, Figure 1, and experiment reports."""

from repro.analysis.tables import render_table_one_markdown, table_one_from_surrogate
from repro.analysis.figures import Figure1Data, build_figure1, render_figure1_ascii
from repro.analysis.reporting import ExperimentReport, format_comparison
from repro.analysis.ablation import (
    Sweep,
    capacity_frontier,
    dataset_quality_sweep,
    sft_remedy_sweep,
)

__all__ = [
    "table_one_from_surrogate",
    "render_table_one_markdown",
    "Figure1Data",
    "build_figure1",
    "render_figure1_ascii",
    "ExperimentReport",
    "Sweep",
    "sft_remedy_sweep",
    "dataset_quality_sweep",
    "capacity_frontier",
    "format_comparison",
]
