"""Full-text summarization (the Qwen-2 / LLaMA-3.1 summarizer analogue).

The paper reduced every OCR'd paper to a 1,000-4,000-token summary,
"roughly equivalent to the AIC set in training tokens" but with detailed
knowledge beyond the AIC sections.  The simulated summarizer does exactly
what a good abstractive summarizer does to this corpus: it keeps the fact
sentences (the information) and drops most filler, optionally restating
facts in a normalized phrasing.

Information density is therefore higher than AIC *by construction*, which
is the property the paper's AstroLLaMA-3-8B-Summary results attribute the
reduced degradation to.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.corpus.generator import SyntheticPaper, _FILLER_OPENERS, _BODY_NOISE
from repro.utils.rng import new_rng

_FACT_MARKERS = (
    " is ",
    " has a ",
    " to be ",
)

_FILLER_SET = {s + " ." for s in _FILLER_OPENERS} | {s + " ." for s in _BODY_NOISE}


def split_sentences(text: str) -> List[str]:
    """Split generated prose on sentence-final periods."""
    parts = [p.strip() for p in re.split(r"(?<=\.)\s+", text)]
    return [p for p in parts if p]


def looks_informative(sentence: str) -> bool:
    """Heuristic the simulated summarizer uses to keep a sentence.

    Generated filler comes from closed pools, so an exact-match test plus a
    fact-marker check mimics an LLM's (much softer) salience judgement.
    """
    if sentence in _FILLER_SET:
        return False
    return any(m in sentence for m in _FACT_MARKERS)


@dataclass
class Summarizer:
    """Compress papers to dense summaries.

    ``fact_recall`` is the probability a fact sentence survives
    summarization (LLM summarizers drop some content); ``filler_keep`` the
    probability a filler sentence leaks through; ``max_sentences`` caps the
    output (the 1k-4k token budget analogue).
    """

    fact_recall: float = 0.95
    filler_keep: float = 0.05
    max_sentences: int = 40
    seed: int = 0

    def summarize(self, paper: SyntheticPaper) -> str:
        rng = new_rng(self.seed, "summary", paper.paper_id)
        kept: List[str] = [f"summary of {paper.title} ."]
        seen = set()
        for sentence in split_sentences(paper.full_text):
            if sentence in seen:
                continue
            if looks_informative(sentence):
                if rng.random() < self.fact_recall:
                    kept.append(sentence)
                    seen.add(sentence)
            elif rng.random() < self.filler_keep:
                kept.append(sentence)
                seen.add(sentence)
            if len(kept) >= self.max_sentences:
                break
        return " ".join(kept)

    def compression_ratio(self, paper: SyntheticPaper) -> float:
        full = len(paper.full_text.split())
        summary = len(self.summarize(paper).split())
        return summary / max(full, 1)
