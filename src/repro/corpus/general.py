"""The general-domain pretraining corpus.

Base models (the LLaMA analogues) pretrain on this mixture:

* general-world fact statements (paraphrased, repeated);
* **MCQ-format exercises** over general facts — web text full of quizzes is
  how real base models acquire the ``Question ... Answer: X`` pattern that
  the paper's two-shot next-token method exploits;
* a slice of the astronomy world (``astro_coverage``) — base LLaMAs do know
  astronomy; how much is a per-model capability knob;
* everyday filler prose.

The MCQ exercise realization matches the evaluation prompt format exactly
(see :mod:`repro.eval.prompts`), closing the loop that makes the base-model
token benchmark meaningful for micro models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.corpus.knowledge import ANSWER_LETTERS, Fact, KnowledgeBase
from repro.utils.rng import new_rng

_EVERYDAY = (
    "the market opens early in the morning and closes after sunset",
    "travelers often rest by the old stone bridge before the long climb",
    "the festival is held every spring when the rivers begin to thaw",
    "local craftsmen sell their goods along the central avenue",
    "the library keeps records dating back many generations",
    "farmers rotate their fields to keep the soil productive",
    "the harbor is busiest when the fishing fleet returns",
    "children learn the old songs during the winter months",
    "the council meets weekly to settle disputes and plan repairs",
    "merchants prefer the northern road because it is better maintained",
)


def render_mcq_exercise(
    fact: Fact, rng: np.random.Generator, include_answer: bool = True
) -> str:
    """Realize a fact as quiz text in the evaluation's exact format."""
    options, correct_idx = fact.option_values_shuffled(rng)
    lines = [f"Question : {fact.question()}"]
    for letter, value in zip(ANSWER_LETTERS, options):
        lines.append(f"{letter} : {value}")
    if include_answer:
        lines.append(f"Answer : {ANSWER_LETTERS[correct_idx]}")
    else:
        lines.append("Answer :")
    return "\n".join(lines)


@dataclass
class GeneralCorpusConfig:
    """Mixture knobs for base-model pretraining data."""

    fact_repetitions: int = 6  # statements per general fact
    mcq_exercise_repetitions: int = 3  # quiz renderings per general fact
    astro_coverage: float = 0.4  # fraction of astro facts included
    astro_repetitions: int = 4  # statements per included astro fact
    astro_mcq_repetitions: int = 1  # quiz renderings per included astro fact
    filler_documents: int = 50
    seed: int = 0


def build_general_corpus(
    general: KnowledgeBase,
    astro: Optional[KnowledgeBase] = None,
    config: Optional[GeneralCorpusConfig] = None,
) -> List[str]:
    """Assemble the pretraining document list (order deterministic)."""
    config = config or GeneralCorpusConfig()
    rng = new_rng(config.seed, "general-corpus")
    docs: List[str] = []

    for fact in general.facts:
        for rep in range(config.fact_repetitions):
            docs.append(fact.statement(rep))
        for rep in range(config.mcq_exercise_repetitions):
            docs.append(render_mcq_exercise(fact, rng))

    if astro is not None and config.astro_coverage > 0:
        n_astro = int(round(len(astro) * min(config.astro_coverage, 1.0)))
        order = new_rng(config.seed, "astro-subset").permutation(len(astro))
        for idx in order[:n_astro]:
            fact = astro.facts[idx]
            for rep in range(config.astro_repetitions):
                docs.append(fact.statement(rep))
            for rep in range(config.astro_mcq_repetitions):
                docs.append(render_mcq_exercise(fact, rng))

    for _ in range(config.filler_documents):
        n = int(rng.integers(2, 5))
        idx = rng.integers(0, len(_EVERYDAY), size=n)
        docs.append(" . ".join(_EVERYDAY[i] for i in idx) + " .")

    shuffled = new_rng(config.seed, "doc-order").permutation(len(docs))
    return [docs[i] for i in shuffled]


def base_model_astro_fact_ids(
    astro: KnowledgeBase, config: GeneralCorpusConfig
) -> List[int]:
    """Which astro facts the base corpus exposes (for coverage accounting)."""
    n_astro = int(round(len(astro) * min(config.astro_coverage, 1.0)))
    order = new_rng(config.seed, "astro-subset").permutation(len(astro))
    return sorted(astro.facts[i].fact_id for i in order[:n_astro])
