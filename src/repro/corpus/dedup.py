"""Near-duplicate detection for corpus cleaning.

Part of the "extensive algorithmic cleaning" the paper's data pipeline
applied to arXiv sources: the same result text recurs across versions,
cross-listings, and conference/journal duplicates, and duplicated training
text skews memorization.  This module implements the standard shingling
approach:

* :func:`shingles` — word n-gram sets;
* :func:`jaccard` — exact set similarity;
* :class:`MinHasher` — fixed-permutation MinHash signatures whose
  agreement estimates Jaccard similarity in O(num_hashes);
* :func:`dedupe_documents` — greedy first-wins dedup over a document
  list, exact or signature-based.

Pure NumPy, vectorized over hash seeds per the HPC guide idioms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

_MERSENNE = np.uint64((1 << 61) - 1)


def shingles(text: str, n: int = 3) -> Set[str]:
    """Word ``n``-grams of ``text`` (the full text if shorter than n)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    words = text.split()
    if len(words) < n:
        return {" ".join(words)} if words else set()
    return {" ".join(words[i : i + n]) for i in range(len(words) - n + 1)}


def jaccard(a: Set[str], b: Set[str]) -> float:
    """Exact Jaccard similarity (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def _hash_tokens(items: Sequence[str]) -> np.ndarray:
    """Stable 64-bit hashes of strings (FNV-1a, vectorized finish)."""
    out = np.empty(len(items), dtype=np.uint64)
    for i, s in enumerate(items):
        h = np.uint64(1469598103934665603)
        for byte in s.encode("utf-8"):
            h = np.uint64((int(h) ^ byte) * 1099511628211 & 0xFFFFFFFFFFFFFFFF)
        out[i] = h
    return out


@dataclass
class MinHasher:
    """MinHash with ``num_hashes`` universal-hash permutations.

    Signature agreement fraction is an unbiased estimator of Jaccard
    similarity; 64 hashes give ~0.12 standard error, plenty for a 0.8
    duplicate threshold.
    """

    num_hashes: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        rng = np.random.default_rng(self.seed)
        # a*x + b mod p universal hashing; a != 0
        self._a = rng.integers(1, int(_MERSENNE), size=self.num_hashes, dtype=np.uint64)
        self._b = rng.integers(0, int(_MERSENNE), size=self.num_hashes, dtype=np.uint64)

    def signature(self, shingle_set: Set[str]) -> np.ndarray:
        """(num_hashes,) uint64 signature; all-max for the empty set."""
        if not shingle_set:
            return np.full(self.num_hashes, np.iinfo(np.uint64).max, dtype=np.uint64)
        hashes = _hash_tokens(sorted(shingle_set))  # (n,)
        # broadcast: (num_hashes, n) permuted values, min over shingles
        permuted = (
            self._a[:, None] * hashes[None, :] + self._b[:, None]
        ) % _MERSENNE
        return permuted.min(axis=1)

    @staticmethod
    def estimate_similarity(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        if sig_a.shape != sig_b.shape:
            raise ValueError("signature shapes differ")
        return float(np.mean(sig_a == sig_b))


def dedupe_documents(
    documents: Sequence[str],
    threshold: float = 0.8,
    shingle_n: int = 3,
    hasher: Optional[MinHasher] = None,
    exact: bool = False,
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Greedy first-wins near-duplicate removal.

    Returns ``(kept_indices, dropped_pairs)`` where each dropped pair is
    ``(dropped_index, kept_index_it_duplicated)``.  ``exact=True`` uses
    true Jaccard (O(n^2) set ops); the default uses MinHash signatures.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    hasher = hasher or MinHasher()
    kept: List[int] = []
    dropped: List[Tuple[int, int]] = []
    kept_shingles: List[Set[str]] = []
    kept_sigs: List[np.ndarray] = []
    for i, doc in enumerate(documents):
        sh = shingles(doc, shingle_n)
        sig = None if exact else hasher.signature(sh)
        duplicate_of = None
        for j, kept_idx in enumerate(kept):
            if exact:
                sim = jaccard(sh, kept_shingles[j])
            else:
                sim = MinHasher.estimate_similarity(sig, kept_sigs[j])
            if sim >= threshold:
                duplicate_of = kept_idx
                break
        if duplicate_of is None:
            kept.append(i)
            kept_shingles.append(sh)
            if sig is not None:
                kept_sigs.append(sig)
        else:
            dropped.append((i, duplicate_of))
    return kept, dropped
