"""Synthetic paper generation.

A :class:`SyntheticPaper` mirrors the structure the paper's data pipeline
extracts from arXiv: abstract, introduction, conclusion and full body.
Facts are realized as paraphrased sentences; filler sentences model the
prose that carries no recallable knowledge (the "low information density"
the paper's Summary dataset strips away).

Fact density by section (defaults):

================  ============  ===============
section            facts         filler sentences
================  ============  ===============
abstract           2             2
introduction       3             5
conclusion         2             3
body               6             24
================  ============  ===============

so Abstract-only training text has lower fact coverage per token than AIC,
and raw full text is the least dense of all — the ordering that drives the
paper's dataset-quality findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.corpus.knowledge import Fact, KnowledgeBase
from repro.utils.rng import new_rng

_FILLER_OPENERS = (
    "further observations are required to constrain these findings",
    "this result is broadly consistent with earlier surveys",
    "systematic uncertainties remain the dominant source of error",
    "we defer a detailed treatment of selection effects to future work",
    "the sample was selected to avoid known contaminants",
    "our analysis pipeline follows standard reduction procedures",
    "the inferred parameters agree with theoretical expectations",
    "additional follow up campaigns are currently underway",
    "these conclusions are robust to reasonable changes in the priors",
    "a larger sample will be needed to confirm this trend",
    "the observations were obtained over several campaigns",
    "instrumental effects were removed using calibration frames",
    "we compare our results with previously published catalogs",
    "the fitting procedure converged for the vast majority of sources",
    "the residuals show no significant structure",
    "we adopt standard cosmological parameters throughout",
)

_BODY_NOISE = (
    "see equation twelve for the full derivation",
    "the left panel of figure four shows the distribution",
    "table three lists the measured quantities for the sample",
    "the formal reduced chi squared of the fit is acceptable",
    "appendix b describes the completeness correction",
    "the covariance matrix was estimated with bootstrap resampling",
)


@dataclass
class SectionSpec:
    """How many facts and filler sentences a section carries."""

    n_facts: int
    n_filler: int


@dataclass
class PaperSpec:
    """Per-section fact/filler densities."""

    abstract: SectionSpec = field(default_factory=lambda: SectionSpec(2, 2))
    introduction: SectionSpec = field(default_factory=lambda: SectionSpec(3, 5))
    conclusion: SectionSpec = field(default_factory=lambda: SectionSpec(2, 3))
    body: SectionSpec = field(default_factory=lambda: SectionSpec(6, 24))


@dataclass
class SyntheticPaper:
    """One generated paper."""

    paper_id: str
    year: int
    month: int
    topic: str
    title: str
    abstract: str
    introduction: str
    conclusion: str
    body: str
    fact_ids: List[int]  # all facts realized anywhere in the paper
    abstract_fact_ids: List[int]
    aic_fact_ids: List[int]  # facts in abstract+intro+conclusion

    @property
    def aic_text(self) -> str:
        return " ".join([self.abstract, self.introduction, self.conclusion])

    @property
    def full_text(self) -> str:
        return " ".join(
            [self.abstract, self.introduction, self.body, self.conclusion]
        )


class PaperGenerator:
    """Generates papers whose facts come from one topic of a knowledge base."""

    def __init__(
        self,
        knowledge: KnowledgeBase,
        spec: Optional[PaperSpec] = None,
        seed: int = 0,
    ) -> None:
        self.knowledge = knowledge
        self.spec = spec or PaperSpec()
        self.seed = seed

    # ------------------------------------------------------------------
    def _filler(self, rng: np.random.Generator, n: int, pool=_FILLER_OPENERS) -> List[str]:
        idx = rng.integers(0, len(pool), size=n)
        return [pool[i] + " ." for i in idx]

    def _realize(self, facts: Sequence[Fact], rng: np.random.Generator) -> List[str]:
        return [f.statement(int(rng.integers(0, 4))) for f in facts]

    def _compose(
        self,
        facts: Sequence[Fact],
        n_filler: int,
        rng: np.random.Generator,
        noise_pool=_FILLER_OPENERS,
    ) -> str:
        sentences = self._realize(facts, rng) + self._filler(rng, n_filler, noise_pool)
        order = rng.permutation(len(sentences))
        return " ".join(sentences[i] for i in order)

    # ------------------------------------------------------------------
    def generate(self, index: int, year: int, month: int) -> SyntheticPaper:
        """Generate paper ``index`` (deterministic in (seed, index))."""
        rng = new_rng(self.seed, "paper", index)
        topics = self.knowledge.topics
        topic = topics[int(rng.integers(0, len(topics)))]
        pool = self.knowledge.facts_for_topic(topic)
        spec = self.spec
        need = (
            spec.abstract.n_facts
            + spec.introduction.n_facts
            + spec.conclusion.n_facts
            + spec.body.n_facts
        )
        if not pool:
            raise ValueError(f"topic {topic!r} has no facts")
        # sample with replacement if the topic pool is small; a fact may
        # appear in several sections (as real abstracts restate results).
        replace = len(pool) < need
        chosen_idx = rng.choice(len(pool), size=need, replace=replace)
        chosen = [pool[i] for i in chosen_idx]
        a, b, c = spec.abstract.n_facts, spec.introduction.n_facts, spec.conclusion.n_facts
        abstract_facts = chosen[:a]
        intro_facts = chosen[a : a + b]
        concl_facts = chosen[a + b : a + b + c]
        body_facts = chosen[a + b + c :]

        abstract = self._compose(abstract_facts, spec.abstract.n_filler, rng)
        introduction = self._compose(intro_facts, spec.introduction.n_filler, rng)
        conclusion = self._compose(concl_facts, spec.conclusion.n_filler, rng)
        body = self._compose(body_facts, spec.body.n_filler, rng, _BODY_NOISE)

        title = f"on the {chosen[0].quantity} of {chosen[0].subject}"
        aic_ids = sorted(
            {f.fact_id for f in abstract_facts + intro_facts + concl_facts}
        )
        return SyntheticPaper(
            paper_id=f"astro-ph/{year % 100:02d}{month:02d}.{index:05d}",
            year=year,
            month=month,
            topic=topic,
            title=title,
            abstract=abstract,
            introduction=introduction,
            conclusion=conclusion,
            body=body,
            fact_ids=sorted({f.fact_id for f in chosen}),
            abstract_fact_ids=sorted({f.fact_id for f in abstract_facts}),
            aic_fact_ids=aic_ids,
        )
