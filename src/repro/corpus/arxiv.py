"""The synthetic astro-ph archive.

A dated collection of generated papers spanning arXiv's lifetime
(1992 onward), queryable by date — the stand-in for "all arXiv papers from
the astro-ph category, from the inception of arXiv up to July 2023"
(the paper's AIC cutoff) and "up to January 2024" (the OCR cutoff).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.corpus.generator import PaperGenerator, PaperSpec, SyntheticPaper
from repro.corpus.knowledge import KnowledgeBase


@dataclass(frozen=True)
class ArchiveCutoffs:
    """The two data cutoffs used by the paper's pipelines."""

    aic: Tuple[int, int] = (2023, 7)  # LaTeX-source pipeline cutoff
    ocr: Tuple[int, int] = (2024, 1)  # Nougat OCR pipeline cutoff


class ArxivArchive:
    """Deterministic archive of ``n_papers`` spread uniformly over time."""

    START_YEAR = 1992

    def __init__(
        self,
        knowledge: KnowledgeBase,
        n_papers: int = 400,
        end: Tuple[int, int] = (2024, 1),
        spec: Optional[PaperSpec] = None,
        seed: int = 0,
    ) -> None:
        if n_papers < 1:
            raise ValueError("n_papers must be >= 1")
        self.knowledge = knowledge
        self.generator = PaperGenerator(knowledge, spec, seed)
        self.papers: List[SyntheticPaper] = []
        months = self._month_range((self.START_YEAR, 1), end)
        for i in range(n_papers):
            year, month = months[int(i * len(months) / n_papers)]
            self.papers.append(self.generator.generate(i, year, month))

    @staticmethod
    def _month_range(
        start: Tuple[int, int], end: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        out = []
        y, m = start
        while (y, m) <= end:
            out.append((y, m))
            m += 1
            if m > 12:
                m, y = 1, y + 1
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.papers)

    def __iter__(self) -> Iterator[SyntheticPaper]:
        return iter(self.papers)

    def until(self, year: int, month: int) -> List[SyntheticPaper]:
        """Papers dated on or before (year, month) — a pipeline cutoff."""
        return [p for p in self.papers if (p.year, p.month) <= (year, month)]

    def by_topic(self) -> Dict[str, List[SyntheticPaper]]:
        out: Dict[str, List[SyntheticPaper]] = {}
        for p in self.papers:
            out.setdefault(p.topic, []).append(p)
        return out

    # ------------------------------------------------------------------
    def fact_coverage(self, sections: str = "aic") -> Set[int]:
        """Distinct fact ids realized across the archive's chosen sections.

        ``sections`` is ``"abstract"`` | ``"aic"`` | ``"full"``.
        """
        covered: Set[int] = set()
        for p in self.papers:
            if sections == "abstract":
                covered.update(p.abstract_fact_ids)
            elif sections == "aic":
                covered.update(p.aic_fact_ids)
            elif sections == "full":
                covered.update(p.fact_ids)
            else:
                raise ValueError(f"unknown sections {sections!r}")
        return covered

    def coverage_fraction(self, sections: str = "aic") -> float:
        return len(self.fact_coverage(sections)) / max(len(self.knowledge), 1)
