"""The synthetic knowledge base.

A :class:`Fact` is an atomic (subject, quantity, value) triple plus three
*distractor* values of the same form.  Facts drive everything downstream:

* corpus generation realizes facts as sentences (several paraphrases);
* MCQ generation realizes facts as questions whose options are the correct
  value and the distractors (equal length by construction — the paper's
  option-design rule);
* evaluation measures recall: a model answers correctly iff training
  imprinted the (subject, quantity) -> value association strongly enough.

Two worlds are generated: an *astronomy* world (the specialist domain,
organized into the review-article topics of the ARAA benchmark) and a
*general* world (everyday knowledge that base models pretrain on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import new_rng

ANSWER_LETTERS = ("A", "B", "C", "D")


@dataclass(frozen=True)
class Fact:
    """One atomic fact with equal-form distractors."""

    fact_id: int
    domain: str  # "astro" | "general"
    topic: str  # e.g. "exoplanets"
    subject: str  # "the hot jupiter wasp 121"
    quantity: str  # "equilibrium temperature"
    correct: str  # "2500 kelvin"
    distractors: Tuple[str, str, str]

    def statement(self, variant: int = 0) -> str:
        """A declarative sentence realization (several paraphrases)."""
        forms = (
            f"the {self.quantity} of {self.subject} is {self.correct} .",
            f"{self.subject} has a {self.quantity} of {self.correct} .",
            f"measurements show that the {self.quantity} of {self.subject} is"
            f" {self.correct} .",
            f"studies find the {self.quantity} of {self.subject} to be"
            f" {self.correct} .",
        )
        return forms[variant % len(forms)]

    def question(self) -> str:
        """Cloze-form question: the statement prefix to be completed.

        Micro models cannot bridge "what is the X of Y ?" phrasing to
        declarative memory the way scale-capable LLMs do, so the benchmark
        uses completion-style questions (a common MCQ style) whose prefix
        matches the canonical statement realization.  See DESIGN.md
        ("QA-bridging realization").
        """
        return f"the {self.quantity} of {self.subject} is"

    def all_options(self) -> Tuple[str, ...]:
        return (self.correct,) + self.distractors

    def option_values_shuffled(
        self, rng: np.random.Generator
    ) -> Tuple[List[str], int]:
        """Return shuffled options and the index of the correct one."""
        options = list(self.all_options())
        order = rng.permutation(4)
        shuffled = [options[i] for i in order]
        return shuffled, int(np.argmax(order == 0))


# ---------------------------------------------------------------------------
# Topic definitions
# ---------------------------------------------------------------------------
# Each topic provides subject templates and quantity pools; values are drawn
# from the quantity's unit/value grid so distractors share form and length.

_ASTRO_TOPICS: Dict[str, Dict[str, Sequence]] = {
    "stellar evolution": {
        "subjects": [
            "red giant branch stars",
            "horizontal branch stars",
            "asymptotic giant stars",
            "classical cepheid variables",
            "rr lyrae variables",
            "wolf rayet stars",
            "o type main sequence stars",
            "t tauri stars",
            "herbig ae stars",
            "carbon stars",
            "subdwarf b stars",
            "red supergiant stars",
        ],
        "quantities": [
            ("typical surface temperature", "kelvin", (3200, 45000)),
            ("characteristic luminosity", "solar luminosities", (10, 90000)),
            ("typical main sequence lifetime", "million years", (3, 9000)),
            ("mean progenitor mass", "solar masses", (1, 60)),
        ],
    },
    "compact objects": {
        "subjects": [
            "millisecond pulsars",
            "magnetars",
            "anomalous x ray pulsars",
            "accreting neutron stars",
            "stellar mass black holes",
            "intermediate mass black holes",
            "white dwarfs in cataclysmic variables",
            "double neutron star binaries",
            "x ray bursters",
            "gamma ray burst afterglows",
        ],
        "quantities": [
            ("characteristic magnetic field", "gauss", (100000000, 900000000)),
            ("typical spin period", "milliseconds", (1, 900)),
            ("mean companion mass", "solar masses", (1, 30)),
            ("characteristic cooling age", "million years", (1, 800)),
        ],
    },
    "exoplanets": {
        "subjects": [
            "hot jupiter planets",
            "warm neptune planets",
            "super earth planets",
            "mini neptune planets",
            "circumbinary planets",
            "ultra short period planets",
            "directly imaged giant planets",
            "rogue free floating planets",
            "lava ocean planets",
            "water world planets",
        ],
        "quantities": [
            ("typical equilibrium temperature", "kelvin", (150, 4000)),
            ("mean orbital period", "days", (1, 900)),
            ("characteristic radius", "earth radii", (1, 15)),
            ("typical atmospheric scale height", "kilometers", (8, 900)),
        ],
    },
    "galaxies": {
        "subjects": [
            "local group dwarf spheroidals",
            "ultra diffuse galaxies",
            "luminous infrared galaxies",
            "barred spiral galaxies",
            "giant elliptical galaxies",
            "green pea galaxies",
            "lyman break galaxies",
            "tidal dwarf galaxies",
            "low surface brightness galaxies",
            "post starburst galaxies",
        ],
        "quantities": [
            ("typical stellar mass", "billion solar masses", (1, 900)),
            ("mean star formation rate", "solar masses per year", (1, 300)),
            ("characteristic half light radius", "kiloparsecs", (1, 30)),
            ("typical gas fraction", "percent", (5, 90)),
        ],
    },
    "cosmology": {
        "subjects": [
            "the epoch of reionization",
            "baryon acoustic oscillations",
            "the cosmic microwave background",
            "galaxy cluster counts",
            "type ia supernova surveys",
            "weak lensing shear surveys",
            "the lyman alpha forest",
            "twenty one centimeter tomography",
            "primordial nucleosynthesis",
            "the integrated sachs wolfe effect",
        ],
        "quantities": [
            ("characteristic redshift", "redshift units", (1, 30)),
            ("typical comoving scale", "megaparsecs", (5, 900)),
            ("inferred matter density", "percent of critical", (10, 90)),
            ("typical signal amplitude", "microkelvin", (1, 300)),
        ],
    },
    "interstellar medium": {
        "subjects": [
            "giant molecular clouds",
            "cold neutral medium filaments",
            "hii region complexes",
            "supernova remnant shells",
            "planetary nebula envelopes",
            "diffuse interstellar bands",
            "polycyclic aromatic hydrocarbon emission",
            "galactic cirrus clouds",
            "bok globules",
            "photodissociation regions",
        ],
        "quantities": [
            ("typical gas temperature", "kelvin", (10, 9000)),
            ("characteristic density", "particles per cubic centimeter", (1, 9000)),
            ("mean cloud mass", "thousand solar masses", (1, 900)),
            ("typical turbulent velocity", "kilometers per second", (1, 90)),
        ],
    },
    "high energy astrophysics": {
        "subjects": [
            "blazar jets",
            "active galactic nucleus coronae",
            "tidal disruption events",
            "ultraluminous x ray sources",
            "pulsar wind nebulae",
            "galactic cosmic rays",
            "fast radio bursts",
            "soft gamma repeaters",
            "x ray binaries in outburst",
            "relativistic jets from microquasars",
        ],
        "quantities": [
            ("characteristic photon energy", "kiloelectronvolts", (1, 900)),
            ("typical variability timescale", "hours", (1, 900)),
            ("mean lorentz factor", "dimensionless units", (2, 90)),
            ("typical luminosity", "thousand solar luminosities", (1, 9000)),
        ],
    },
    "solar and heliospheric physics": {
        "subjects": [
            "coronal mass ejections",
            "solar flare ribbons",
            "coronal holes",
            "the slow solar wind",
            "sunspot umbrae",
            "solar prominences",
            "the heliospheric current sheet",
            "solar energetic particle events",
            "the chromospheric network",
            "coronal loops",
        ],
        "quantities": [
            ("typical plasma temperature", "million kelvin", (1, 30)),
            ("characteristic speed", "kilometers per second", (100, 3000)),
            ("mean magnetic field strength", "gauss", (1, 3000)),
            ("typical duration", "hours", (1, 90)),
        ],
    },
}

_GENERAL_TOPICS: Dict[str, Dict[str, Sequence]] = {
    "geography": {
        "subjects": [
            "the river valdoria",
            "the river meskarun",
            "mount tellara",
            "mount brivand",
            "lake osmire",
            "lake quenneth",
            "the plains of dorvath",
            "the karstag desert",
            "the velmora highlands",
            "the straits of anbelle",
        ],
        "quantities": [
            ("total length", "kilometers", (100, 9000)),
            ("average elevation", "meters", (100, 8000)),
            ("surface area", "square kilometers", (100, 9000)),
            ("mean annual rainfall", "millimeters", (100, 3000)),
        ],
    },
    "cities": {
        "subjects": [
            "the city of marvelle",
            "the city of tobrinth",
            "the city of askavan",
            "the city of pellonor",
            "the city of drustheim",
            "the city of veyruna",
            "the city of calmoris",
            "the city of ingrade",
            "the city of soltara",
            "the city of wrenfield",
        ],
        "quantities": [
            ("population", "thousand residents", (10, 9000)),
            ("founding age", "centuries", (2, 30)),
            ("number of districts", "districts", (3, 90)),
            ("annual visitors", "thousand visitors", (10, 9000)),
        ],
    },
    "commerce": {
        "subjects": [
            "the veltran shipping company",
            "the ostrava grain exchange",
            "the mirecourt textile guild",
            "the harlan mining consortium",
            "the juniper rail network",
            "the bellweather glassworks",
            "the corvid printing house",
            "the almore salt cooperative",
            "the fennick tea traders",
            "the rowan timber union",
        ],
        "quantities": [
            ("number of employees", "thousand workers", (1, 900)),
            ("annual output", "thousand units", (10, 9000)),
            ("fleet size", "vehicles", (10, 900)),
            ("founding age", "decades", (2, 30)),
        ],
    },
    "nature": {
        "subjects": [
            "the crested moonfinch",
            "the silver backed river otter",
            "the banded glass frog",
            "the dusky antelope",
            "the great plains tortoise",
            "the copper winged dragonfly",
            "the marbled cave salamander",
            "the white tufted lynx",
            "the reed dwelling heron",
            "the spotted orchard beetle",
        ],
        "quantities": [
            ("average lifespan", "years", (1, 90)),
            ("typical body mass", "kilograms", (1, 900)),
            ("population estimate", "thousand individuals", (1, 900)),
            ("average clutch size", "offspring", (1, 30)),
        ],
    },
}


def _nice_values(
    lo: float, hi: float, rng: np.random.Generator, n: int = 4
) -> List[int]:
    """Draw ``n`` distinct round-ish values spanning the grid [lo, hi].

    Values are spread log-uniformly then rounded to two significant digits,
    which keeps all options the same *kind* of number (the paper's equal-
    form rule) while staying distinguishable.
    """
    out: List[int] = []
    attempts = 0
    while len(out) < n and attempts < 200:
        attempts += 1
        x = float(np.exp(rng.uniform(np.log(lo), np.log(hi + 1))))
        mag = 10 ** max(int(np.floor(np.log10(max(x, 1)))) - 1, 0)
        v = int(round(x / mag) * mag)
        v = max(v, int(lo))
        if v not in out:
            out.append(v)
    if len(out) < n:  # tiny ranges: fall back to linear spread
        out = list(dict.fromkeys(out + list(range(int(lo), int(lo) + n * 2))))[:n]
    return out


class KnowledgeBase:
    """A frozen collection of facts, indexed by topic."""

    def __init__(self, facts: Sequence[Fact], domain: str) -> None:
        self.facts: List[Fact] = list(facts)
        self.domain = domain
        self.by_topic: Dict[str, List[Fact]] = {}
        for f in self.facts:
            self.by_topic.setdefault(f.topic, []).append(f)

    def __len__(self) -> int:
        return len(self.facts)

    @property
    def topics(self) -> List[str]:
        return sorted(self.by_topic)

    def facts_for_topic(self, topic: str) -> List[Fact]:
        return list(self.by_topic.get(topic, []))

    def sample(self, n: int, rng: np.random.Generator) -> List[Fact]:
        if n > len(self.facts):
            raise ValueError(f"cannot sample {n} from {len(self.facts)} facts")
        idx = rng.choice(len(self.facts), size=n, replace=False)
        return [self.facts[i] for i in idx]

    def split(self, fraction: float, seed: int) -> Tuple["KnowledgeBase", "KnowledgeBase"]:
        """Deterministically split facts into two disjoint bases."""
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        rng = new_rng(seed, "kb-split")
        order = rng.permutation(len(self.facts))
        cut = int(round(len(self.facts) * fraction))
        first = [self.facts[i] for i in order[:cut]]
        second = [self.facts[i] for i in order[cut:]]
        return KnowledgeBase(first, self.domain), KnowledgeBase(second, self.domain)


def _build_facts(
    topics: Dict[str, Dict[str, Sequence]],
    domain: str,
    n_facts: int,
    seed: int,
    subject_multiplier: int,
) -> List[Fact]:
    """Enumerate (subject-instance, quantity) pairs round-robin over topics.

    ``subject_multiplier`` clones each subject template into numbered
    instances ("... group 2") so arbitrarily many distinct facts exist.
    """
    rng = new_rng(seed, domain, "facts")
    combos: List[Tuple[str, str, Tuple[str, str, Tuple[float, float]]]] = []
    for topic, spec in topics.items():
        for rep in range(subject_multiplier):
            for subj in spec["subjects"]:
                subject = subj if rep == 0 else f"{subj} of group {rep + 1}"
                for quantity in spec["quantities"]:
                    combos.append((topic, subject, quantity))
    if n_facts > len(combos):
        raise ValueError(
            f"requested {n_facts} facts but only {len(combos)} combos exist; "
            f"raise subject_multiplier"
        )
    order = rng.permutation(len(combos))[:n_facts]
    facts: List[Fact] = []
    for fid, ci in enumerate(sorted(order)):
        topic, subject, (qname, unit, (lo, hi)) = combos[ci]
        values = _nice_values(lo, hi, new_rng(seed, domain, "values", fid))
        rendered = [f"{v} {unit}" for v in values]
        facts.append(
            Fact(
                fact_id=fid,
                domain=domain,
                topic=topic,
                subject=subject,
                quantity=qname,
                correct=rendered[0],
                distractors=(rendered[1], rendered[2], rendered[3]),
            )
        )
    return facts


def make_astro_knowledge(
    n_facts: int = 1200, seed: int = 0, subject_multiplier: int = 4
) -> KnowledgeBase:
    """The specialist astronomy world (drives astro-ph and the MCQ benchmark)."""
    return KnowledgeBase(
        _build_facts(_ASTRO_TOPICS, "astro", n_facts, seed, subject_multiplier),
        "astro",
    )


def make_general_knowledge(
    n_facts: int = 800, seed: int = 0, subject_multiplier: int = 4
) -> KnowledgeBase:
    """The everyday world base models pretrain on."""
    return KnowledgeBase(
        _build_facts(_GENERAL_TOPICS, "general", n_facts, seed, subject_multiplier),
        "general",
    )
