"""Synthetic corpus substrate.

The paper's training data (arXiv astro-ph LaTeX sources, Nougat OCR of ADS
PDFs, LLM summaries) is replaced by a *generative astronomy world*:

* :mod:`repro.corpus.knowledge` — a knowledge base of atomic facts, each
  with a correct value and equal-form distractors.  MCQs and training text
  are generated from the same fact base, so "knowledge recall" is a closed,
  measurable quantity.
* :mod:`repro.corpus.generator` — synthetic papers with abstract /
  introduction / conclusion / body sections of controlled fact density.
* :mod:`repro.corpus.arxiv` — a dated archive of generated papers
  (the astro-ph stand-in).
* :mod:`repro.corpus.ocr` — a Nougat-like OCR pipeline with a
  configurable noise model and cleaning passes.
* :mod:`repro.corpus.summarize` — the Qwen/LLaMA-3.1 summarizer analogue:
  compresses full text to a dense 1k-4k-token digest.
* :mod:`repro.corpus.datasets` — the three CPT dataset builders from the
  paper (Abstract / AIC / Summary) with coverage statistics.
* :mod:`repro.corpus.general` — the general-domain pretraining corpus
  (everyday facts + MCQ-format exercises) used to build base models.
"""

from repro.corpus.knowledge import (
    Fact,
    KnowledgeBase,
    make_astro_knowledge,
    make_general_knowledge,
)
from repro.corpus.generator import PaperGenerator, SyntheticPaper
from repro.corpus.arxiv import ArxivArchive
from repro.corpus.ocr import NougatOCR, OCRNoiseModel, clean_ocr_text
from repro.corpus.summarize import Summarizer
from repro.corpus.datasets import (
    CorpusDataset,
    build_abstract_dataset,
    build_aic_dataset,
    build_summary_dataset,
    with_qa_bridge,
)
from repro.corpus.general import GeneralCorpusConfig, build_general_corpus
from repro.corpus.dedup import MinHasher, dedupe_documents, jaccard, shingles

__all__ = [
    "Fact",
    "KnowledgeBase",
    "make_astro_knowledge",
    "make_general_knowledge",
    "PaperGenerator",
    "SyntheticPaper",
    "ArxivArchive",
    "OCRNoiseModel",
    "NougatOCR",
    "clean_ocr_text",
    "CorpusDataset",
    "build_abstract_dataset",
    "build_aic_dataset",
    "build_summary_dataset",
    "with_qa_bridge",
    "GeneralCorpusConfig",
    "MinHasher",
    "dedupe_documents",
    "jaccard",
    "shingles",
    "build_general_corpus",
]
