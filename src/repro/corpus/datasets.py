"""CPT dataset builders: Abstract / AIC / Summary.

These mirror the paper's three continual-pretraining corpora:

* **Abstract** — abstracts only (the original AstroLLaMA recipe);
* **AIC** — abstract + introduction + conclusion (AstroLLaMA-Chat and this
  paper's -AIC models), built from the LaTeX pipeline up to 2023-07;
* **Summary** — LLM summaries of OCR'd full text up to 2024-01
  (AstroLLaMA-3-8B-Summary).

Every builder returns a :class:`CorpusDataset` carrying coverage statistics
so experiments can verify the density ordering
``Abstract < AIC < Summary`` that the paper's findings rest on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.corpus.arxiv import ArchiveCutoffs, ArxivArchive
from repro.corpus.ocr import NougatOCR
from repro.corpus.summarize import Summarizer


@dataclass
class CorpusDataset:
    """A named list of training documents plus provenance statistics.

    ``doc_fact_ids`` is parallel to ``documents``: the fact ids realized in
    each document, so truncated views recompute coverage honestly.
    """

    name: str
    documents: List[str]
    doc_fact_ids: List[Set[int]] = field(default_factory=list)
    total_facts_in_world: int = 0

    def __post_init__(self) -> None:
        if self.doc_fact_ids and len(self.doc_fact_ids) != len(self.documents):
            raise ValueError("doc_fact_ids must parallel documents")
        if not self.doc_fact_ids:
            self.doc_fact_ids = [set() for _ in self.documents]

    def __len__(self) -> int:
        return len(self.documents)

    @property
    def fact_ids(self) -> Set[int]:
        out: Set[int] = set()
        for ids in self.doc_fact_ids:
            out.update(ids)
        return out

    @property
    def word_count(self) -> int:
        return sum(len(d.split()) for d in self.documents)

    @property
    def coverage(self) -> float:
        """Fraction of the knowledge world whose facts appear here."""
        if self.total_facts_in_world == 0:
            return 0.0
        return len(self.fact_ids) / self.total_facts_in_world

    @property
    def facts_per_kiloword(self) -> float:
        """Information density: distinct facts per 1000 words."""
        wc = self.word_count
        return 1000.0 * len(self.fact_ids) / wc if wc else 0.0

    def truncate_words(self, budget: int) -> "CorpusDataset":
        """Clip the dataset to at most ``budget`` words (whole documents).

        Used to compare dataset *quality* at a fixed token budget, the
        comparison the paper's Summary-vs-AIC experiment makes.
        """
        docs: List[str] = []
        ids: List[Set[int]] = []
        used = 0
        for d, f in zip(self.documents, self.doc_fact_ids):
            w = len(d.split())
            if used + w > budget and docs:
                break
            docs.append(d)
            ids.append(set(f))
            used += w
        return CorpusDataset(
            name=f"{self.name}[{budget}w]",
            documents=docs,
            doc_fact_ids=ids,
            total_facts_in_world=self.total_facts_in_world,
        )


def with_qa_bridge(
    dataset: CorpusDataset,
    knowledge,
    fraction: float,
    seed: int = 0,
) -> CorpusDataset:
    """Append quiz-form recaps for a fraction of each document's facts.

    **Substitution note** (see DESIGN.md): at real scale, declarative CPT
    text becomes MCQ-answerable through the model's general QA transfer;
    micro models lack that transfer, so the micro corpus realization
    bridges it explicitly by rendering ``fraction`` of a document's facts
    in quiz form (fresh option shuffles, never benchmark renderings).
    ``fraction=0`` recovers the purely declarative corpus.
    """
    from repro.corpus.general import render_mcq_exercise
    from repro.utils.rng import new_rng

    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    fact_by_id = {f.fact_id: f for f in knowledge.facts}
    rng = new_rng(seed, "qa-bridge", dataset.name)
    docs: List[str] = []
    ids: List[Set[int]] = []
    for doc, fids in zip(dataset.documents, dataset.doc_fact_ids):
        parts = [doc]
        for fid in sorted(fids):
            if fid in fact_by_id and rng.random() < fraction:
                parts.append(render_mcq_exercise(fact_by_id[fid], rng))
        docs.append("\n".join(parts))
        ids.append(set(fids))
    return CorpusDataset(
        name=f"{dataset.name}+bridge{fraction:g}",
        documents=docs,
        doc_fact_ids=ids,
        total_facts_in_world=dataset.total_facts_in_world,
    )


def build_abstract_dataset(
    archive: ArxivArchive, cutoffs: Optional[ArchiveCutoffs] = None
) -> CorpusDataset:
    """Abstracts only, LaTeX-pipeline cutoff (2023-07)."""
    cutoffs = cutoffs or ArchiveCutoffs()
    papers = archive.until(*cutoffs.aic)
    docs = [p.abstract for p in papers]
    ids = [set(p.abstract_fact_ids) for p in papers]
    return CorpusDataset("abstract", docs, ids, len(archive.knowledge))


def build_aic_dataset(
    archive: ArxivArchive, cutoffs: Optional[ArchiveCutoffs] = None
) -> CorpusDataset:
    """Abstract + introduction + conclusion, LaTeX-pipeline cutoff."""
    cutoffs = cutoffs or ArchiveCutoffs()
    papers = archive.until(*cutoffs.aic)
    docs = [p.aic_text for p in papers]
    ids = [set(p.aic_fact_ids) for p in papers]
    return CorpusDataset("aic", docs, ids, len(archive.knowledge))


def build_summary_dataset(
    archive: ArxivArchive,
    summarizer: Optional[Summarizer] = None,
    ocr: Optional[NougatOCR] = None,
    cutoffs: Optional[ArchiveCutoffs] = None,
) -> CorpusDataset:
    """OCR the full text (2024-01 cutoff), then summarize each paper.

    The OCR stage is part of the pipeline for fidelity; Nougat's noise
    rates are low enough that summaries stay information-dense.
    """
    cutoffs = cutoffs or ArchiveCutoffs()
    summarizer = summarizer or Summarizer()
    ocr = ocr or NougatOCR()
    papers = archive.until(*cutoffs.ocr)
    docs = []
    ids = []
    for i, p in enumerate(papers):
        transcribed = ocr.transcribe(p.full_text, stream=i)
        # the summarizer runs on the OCR output in the real pipeline; our
        # simulated summarizer keys on sentence structure, so feed it the
        # paper object but measure coverage from the realized fact set
        summary = summarizer.summarize(p)
        docs.append(summary if len(summary.split()) > 5 else transcribed)
        ids.append(set(p.fact_ids))
    return CorpusDataset("summary", docs, ids, len(archive.knowledge))
