"""OCR pipeline simulation (the Nougat analogue).

The paper replaced algorithmically cleaned LaTeX extraction with Nougat OCR
of ADS-downloaded PDFs, because the LaTeX pipeline "did not fully provide
excellent data quality".  We model both sides:

* :class:`OCRNoiseModel` — a configurable corruption process (character
  substitutions, word drops, hyphenation splits, ligature garbling) applied
  to ground-truth text, standing in for the rendering + recognition chain;
* :class:`NougatOCR` — a *good* OCR engine: low noise rates;
* :func:`clean_ocr_text` — the post-OCR cleaning pass (de-hyphenation,
  whitespace repair, control-character stripping).

Corruption hits fact sentences too, so noisy pipelines measurably reduce
effective fact coverage — the mechanism behind the paper's data-quality
observations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.rng import new_rng

# plausible OCR confusions (symmetric-ish pairs)
_CONFUSIONS = {
    "o": "0",
    "l": "1",
    "i": "1",
    "e": "c",
    "a": "o",
    "s": "5",
    "n": "m",
    "u": "v",
    "0": "o",
    "1": "l",
    "5": "s",
}


@dataclass(frozen=True)
class OCRNoiseModel:
    """Corruption rates, all per-word probabilities."""

    char_sub_rate: float = 0.02  # substitute one character inside the word
    word_drop_rate: float = 0.002  # drop the word entirely
    hyphenation_rate: float = 0.01  # split the word with "- "
    garble_rate: float = 0.002  # replace the word with glyph soup
    seed: int = 0

    def corrupt(self, text: str, stream: int = 0) -> str:
        rng = new_rng(self.seed, "ocr", stream)
        out: List[str] = []
        for word in text.split():
            r = rng.random()
            if r < self.word_drop_rate:
                continue
            if r < self.word_drop_rate + self.garble_rate:
                out.append("".join(rng.choice(list("#@~^*")) for _ in range(3)))
                continue
            if rng.random() < self.char_sub_rate and len(word) > 2:
                pos = int(rng.integers(0, len(word)))
                ch = word[pos]
                sub = _CONFUSIONS.get(ch.lower())
                if sub is not None:
                    word = word[:pos] + sub + word[pos + 1 :]
            if rng.random() < self.hyphenation_rate and len(word) > 5:
                cut = int(rng.integers(2, len(word) - 2))
                word = word[:cut] + "- " + word[cut:]
            out.append(word)
        return " ".join(out)


class NougatOCR:
    """A high-quality OCR engine: low corruption rates.

    ``legacy_latex_pipeline`` builds the noisier comparator that the paper
    moved away from.
    """

    def __init__(self, seed: int = 0) -> None:
        self.noise = OCRNoiseModel(
            char_sub_rate=0.004,
            word_drop_rate=0.0005,
            hyphenation_rate=0.003,
            garble_rate=0.0002,
            seed=seed,
        )

    def transcribe(self, text: str, stream: int = 0) -> str:
        return clean_ocr_text(self.noise.corrupt(text, stream))

    @staticmethod
    def legacy_latex_pipeline(seed: int = 0) -> OCRNoiseModel:
        return OCRNoiseModel(
            char_sub_rate=0.03,
            word_drop_rate=0.01,
            hyphenation_rate=0.02,
            garble_rate=0.01,
            seed=seed,
        )


_HYPHEN_RE = re.compile(r"(\w)- (\w)")
_GLYPH_RE = re.compile(r"[#@~^*]{2,}")
_WS_RE = re.compile(r"\s+")


def clean_ocr_text(text: str) -> str:
    """Post-OCR cleanup: re-join hyphenations, drop glyph soup, fix spaces."""
    text = _HYPHEN_RE.sub(r"\1\2", text)
    text = _GLYPH_RE.sub(" ", text)
    return _WS_RE.sub(" ", text).strip()


def word_error_rate(reference: str, hypothesis: str) -> float:
    """Word-level Levenshtein distance over reference length (0 = perfect)."""
    ref = reference.split()
    hyp = hypothesis.split()
    if not ref:
        return 0.0 if not hyp else 1.0
    prev = list(range(len(hyp) + 1))
    for i, rw in enumerate(ref, 1):
        cur = [i] + [0] * len(hyp)
        for j, hw in enumerate(hyp, 1):
            cost = 0 if rw == hw else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
        prev = cur
    return prev[-1] / len(ref)
