#!/usr/bin/env python
"""Dataset-quality study: Abstract vs AIC vs Summary (Section III/VI).

Walks the paper's three CPT data pipelines over the same synthetic
archive and reports the property its findings rest on — information
density / fact coverage per training token — plus the OCR-noise contrast
that motivated moving from LaTeX extraction to Nougat.

Fast (no training).  The training consequence is measured by
``benchmarks/test_data_quality_micro.py``.

Run:  python examples/data_quality_study.py
"""

from repro.core.world import MicroWorld
from repro.corpus import (
    NougatOCR,
    build_abstract_dataset,
    build_aic_dataset,
    build_summary_dataset,
    with_qa_bridge,
)
from repro.corpus.ocr import clean_ocr_text, word_error_rate
from repro.corpus.summarize import Summarizer


def main() -> None:
    world = MicroWorld.build_bench(seed=0)
    archive = world.archive

    print("== the three CPT datasets over one archive "
          f"({len(archive)} papers) ==")
    datasets = [
        build_abstract_dataset(archive),
        build_aic_dataset(archive),
        build_summary_dataset(archive),
    ]
    print(f"   {'dataset':<10s} {'docs':>6s} {'words':>8s} {'coverage':>9s} "
          f"{'facts/kw':>9s}")
    for d in datasets:
        print(f"   {d.name:<10s} {len(d):>6d} {d.word_count:>8d} "
              f"{d.coverage:>9.3f} {d.facts_per_kiloword:>9.2f}")

    print("\n== coverage at a fixed token budget "
          "(the comparison behind the Summary result) ==")
    budget = min(d.word_count for d in datasets[1:]) // 2
    print(f"   budget: {budget} words")
    for d in datasets:
        t = d.truncate_words(budget)
        print(f"   {d.name:<10s} coverage {t.coverage:.3f}")

    print("\n== OCR pipelines: legacy LaTeX extraction vs Nougat ==")
    paper = archive.papers[0]
    nougat = NougatOCR(seed=1)
    legacy = NougatOCR.legacy_latex_pipeline(seed=1)
    nougat_text = nougat.transcribe(paper.full_text)
    legacy_text = clean_ocr_text(legacy.corrupt(paper.full_text))
    print(f"   word error rate, legacy pipeline: "
          f"{word_error_rate(paper.full_text, legacy_text):.3f}")
    print(f"   word error rate, Nougat analogue: "
          f"{word_error_rate(paper.full_text, nougat_text):.3f}")

    print("\n== the summarizer (Qwen-2 / LLaMA-3.1 analogue) ==")
    summarizer = Summarizer(seed=1)
    ratio = summarizer.compression_ratio(paper)
    print(f"   compression ratio on one paper: {ratio:.2f} "
          f"(fact sentences kept, filler dropped)")
    print(f"   sample summary (first 200 chars):")
    print(f"     {summarizer.summarize(paper)[:200]}...")

    print("\n== the QA-bridge realization used for micro CPT ==")
    aic = datasets[1]
    bridged = with_qa_bridge(aic, world.astro, fraction=0.3, seed=0)
    quiz_docs = sum("Answer :" in d for d in bridged.documents)
    print(f"   {quiz_docs}/{len(bridged)} documents carry quiz-form recaps "
          f"(substitution for scale-dependent declarative->QA transfer; "
          f"see DESIGN.md)")


if __name__ == "__main__":
    main()
