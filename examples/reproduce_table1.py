#!/usr/bin/env python
"""Regenerate every headline artifact of the paper from the surrogate.

Prints, in order:

* Table I (8 models x 3 methods, with better/worse/similar arrows and the
  paper's values side by side);
* Figure 1 (ASCII rendering of the per-series symbol plot);
* the Section III GPU-hour cost accounting;
* the Section VI score/price trade-off claims;
* the qualitative shape checks (the reproduction contract).

Run:  python examples/reproduce_table1.py
"""

from repro.analysis import (
    build_figure1,
    render_figure1_ascii,
    render_table_one_markdown,
    table_one_from_surrogate,
)
from repro.core.cost import paper_cost_accounting
from repro.scale import ScorePriceFrontier


def main() -> None:
    table = table_one_from_surrogate()

    print("=" * 78)
    print("TABLE I — performance of LLaMA and AstroLLaMA models")
    print("=" * 78)
    print(table.render(show_paper=True))

    print()
    print("markdown version:")
    print(render_table_one_markdown(table))

    print()
    print("=" * 78)
    print("FIGURE 1 — per-series method scores with native baselines")
    print("=" * 78)
    print(render_figure1_ascii(build_figure1(table)))

    print()
    print("=" * 78)
    print("SECTION III — GPU-hour cost accounting (A100-hours)")
    print("=" * 78)
    print(paper_cost_accounting().render())

    print()
    print("=" * 78)
    print("SECTION VI — score/price trade-off")
    print("=" * 78)
    frontier = ScorePriceFrontier()
    for key, value in frontier.paper_claims().items():
        print(f"  {key}: {value:.3f}")
    print("  flagship comparison for AstroLLaMA-2-70B (76.0):")
    for name, delta in frontier.flagship_comparison(76.0):
        print(f"    vs {name}: {delta:+.1f} points")

    print()
    print("=" * 78)
    print("REPRODUCTION CONTRACT — qualitative shape checks")
    print("=" * 78)
    for check, ok in table.shape_checks().items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {check}")


if __name__ == "__main__":
    main()
