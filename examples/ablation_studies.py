#!/usr/bin/env python
"""Counterfactual studies on the calibrated surrogate (Sections VI-VII).

The paper argues three remedies/limits it could not afford to run; the
mechanism surrogate quantifies them:

1. the SFT remedy — scaling the astronomy fraction of the SFT set closes
   the full-instruct gap (the "50 million Q&A" plan of de Haan et al.);
2. better CPT data — information quality beyond astro-ph lifts even the
   8B model above its native baseline ("textbooks, Wikipedia, summaries");
3. the capacity break-even — the forgetting-fragility level at which CPT
   flips from harmful to helpful, with the real models placed either side;
4. the Section VII feasibility wall — full-text CPT at 70B costs
   O(10^4)-O(10^5) A100-hours.

Run:  python examples/ablation_studies.py
"""

from repro.analysis import (
    capacity_frontier,
    dataset_quality_sweep,
    sft_remedy_sweep,
)
from repro.core import forecast_full_text_cpt
from repro.scale import CALIBRATED_PARAMS


def main() -> None:
    print("=" * 70)
    print("1. THE SFT REMEDY — astronomy fraction of the SFT mixture")
    print("=" * 70)
    sweep = sft_remedy_sweep("AstroLLaMA-2-70B-AIC")
    print(sweep.render())
    print(f"   at the paper's 1/3 fraction: {sweep.ys[0]:.1f}% (Table I: 64.7)")
    print(f"   fully astronomy-focused:     {sweep.ys[-1]:.1f}% "
          f"(vs 75.4 token-instruct ceiling)")

    print()
    print("=" * 70)
    print("2. CPT DATA QUALITY — beyond astro-ph (8B tier)")
    print("=" * 70)
    sweep = dataset_quality_sweep("AstroLLaMA-3-8B-AIC")
    print(sweep.render())
    native = 72.0
    crossing = sweep.crossing(native)
    if crossing is not None:
        print(f"   data quality needed to beat the native 8B ({native}): "
              f"{crossing:.2f} (AIC sits at 0.75)")

    print()
    print("=" * 70)
    print("3. CAPACITY BREAK-EVEN — forgetting fragility vs CPT delta")
    print("=" * 70)
    sweep, breakeven = capacity_frontier("AstroLLaMA-2-7B-AIC")
    print(sweep.render())
    phi = CALIBRATED_PARAMS.phi
    print(f"   break-even fragility: {breakeven:.2f}")
    print(f"   calibrated models: 70B tier {phi['large']:.1f} (gains), "
          f"8B tier {phi['small']:.1f}, 7B tier {phi['tiny']:.1f} (collapses)")

    print()
    print("=" * 70)
    print("4. FEASIBILITY — the Section VII cost wall")
    print("=" * 70)
    base = forecast_full_text_cpt()
    beyond = forecast_full_text_cpt(corpus_multiplier=8)
    print(f"   full-text astro-ph CPT at 70B: {base.gpu_hours:>10,.0f} A100-h")
    print(f"   'and beyond' (8x corpus):      {beyond.gpu_hours:>10,.0f} A100-h")
    print(f"   paper's claim: O(10^4) to O(10^5) GPU hours — "
          f"{'REPRODUCED' if 1e4 <= base.gpu_hours and beyond.gpu_hours <= 2e5 else 'MISMATCH'}")
    small = forecast_full_text_cpt(n_params=8e9)
    print(f"   same corpus at 8B: {small.gpu_hours:,.0f} A100-h "
          f"(why the paper pivots to improving 8B data instead)")


if __name__ == "__main__":
    main()
