#!/usr/bin/env python
"""The benchmark release flow (Appendix A).

The paper releases its MCQ benchmark "but will withhold the answer key to
prevent question leakage and maintain an objective benchmark".  This
example walks that flow end to end:

1. build the paper-scale benchmark (885 x 5 = 4,425 MCQs);
2. export the public file (questions + options only) and the withheld key;
3. verify the public file leaks nothing;
4. score a submission through the key-holder's leakage-resistant scorer.

Run:  python examples/release_benchmark.py [outdir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.corpus import make_astro_knowledge
from repro.mcq import (
    ScoringServer,
    build_benchmark,
    export_answer_key,
    export_public,
    verify_release_integrity,
)
from repro.mcq.release import _fingerprint


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    outdir.mkdir(parents=True, exist_ok=True)

    print("== building the paper-scale benchmark ==")
    knowledge = make_astro_knowledge(n_facts=1200, seed=0, subject_multiplier=8)
    benchmark = build_benchmark(knowledge, n_articles=885, dev_size=8, seed=0)
    print(f"   {len(benchmark)} questions")

    public_path = outdir / "astro_mcq_public.json"
    key_path = outdir / "astro_mcq_answer_key.json"
    n = export_public(benchmark, public_path)
    export_answer_key(benchmark, key_path)
    print(f"   public file: {public_path} ({n} questions, "
          f"{public_path.stat().st_size // 1024} KiB)")
    print(f"   withheld key: {key_path}")

    print("\n== leakage audit of the public file ==")
    problems = verify_release_integrity(public_path)
    print(f"   problems found: {len(problems)}")
    assert not problems

    print("\n== scoring submissions through the key holder ==")
    server = ScoringServer.from_key_file(key_path)
    rng = np.random.default_rng(0)

    submissions = {
        "random guesser": {
            _fingerprint(q): int(rng.integers(0, 4)) for q in benchmark.questions
        },
        "oracle": {
            _fingerprint(q): q.correct_idx for q in benchmark.questions
        },
        "abstainer (unparseable)": {
            _fingerprint(q): None for q in benchmark.questions
        },
    }
    for name, preds in submissions.items():
        result = server.score(preds)
        print(f"   {name:<26s} accuracy {result['accuracy'] * 100:5.1f}% "
              f"on {result['n']:.0f} questions")

    print("\n== probing resistance ==")
    try:
        server.score({_fingerprint(benchmark.questions[0]): 0})
    except ValueError as exc:
        print(f"   single-question probe rejected: {exc}")


if __name__ == "__main__":
    main()
