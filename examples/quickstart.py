#!/usr/bin/env python
"""Quickstart: build a micro world, pretrain a base model, benchmark it.

This walks the whole public API surface in ~2 minutes of CPU time:

1. build a :class:`MicroWorld` (knowledge base -> synthetic astro-ph
   archive -> MCQ benchmark);
2. pretrain the ``LLaMA-2-7B`` micro analogue;
3. evaluate it with the paper's base-model next-token method;
4. print the regenerated Table I from the calibrated scale surrogate.

Run:  python examples/quickstart.py [--steps N] [--questions N]
"""

import argparse
import time

from repro.analysis import table_one_from_surrogate
from repro.core import get_entry
from repro.core.pretrain import BasePretrainConfig, BasePretrainer
from repro.core.world import MicroWorld
from repro.eval import EvaluationRunner, TokenPredictionEvaluator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=250,
                        help="pretraining steps (250 = fast demo; the model "
                        "groks the MCQ circuit near ~800)")
    parser.add_argument("--questions", type=int, default=40)
    args = parser.parse_args()

    print("== 1. building the micro world ==")
    world = MicroWorld.build_test(seed=0)
    print(f"   astronomy facts: {len(world.astro)}, general facts: "
          f"{len(world.general)}")
    print(f"   archive papers:  {len(world.archive)}")
    print(f"   benchmark:       {len(world.benchmark)} MCQs "
          f"({len(world.benchmark.test)} test / {len(world.benchmark.dev)} dev)")
    q = world.benchmark.test[0]
    print("\n   sample question:")
    print(f"     Question : {q.question}")
    for line in q.option_block().split("\n"):
        print(f"     {line}")
    print(f"     (correct: {q.correct_letter})")

    print("\n== 2. pretraining the LLaMA-2-7B micro analogue ==")
    entry = get_entry("LLaMA-2-7B")
    t0 = time.time()
    pretrainer = BasePretrainer(world, BasePretrainConfig(total_steps=args.steps))
    base = pretrainer.run(entry)
    print(f"   {base.model.num_parameters():,} parameters, "
          f"{args.steps} steps, final loss "
          f"{base.history.smoothed_final_loss():.3f} "
          f"({time.time() - t0:.0f}s)")

    print("\n== 3. base-model next-token benchmarking (Section V-B) ==")
    evaluator = TokenPredictionEvaluator(
        base.model,
        base.tokenizer,
        few_shot=world.benchmark.few_shot(2),
        prefix_ids=base.prefix_ids,
    )
    print(f"   discovered answer-token convention: "
          f"{evaluator.answer_map.convention}")
    runner = EvaluationRunner(world.benchmark, max_questions=args.questions)
    result = runner.run(evaluator.predict, "token_base", entry.name)
    print(f"   accuracy: {result.score_percent:.1f}% on "
          f"{result.n_questions} questions (chance = 25%)")

    print("\n== 4. Table I from the calibrated scale surrogate ==")
    print(table_one_from_surrogate().render(show_paper=True))


if __name__ == "__main__":
    main()
