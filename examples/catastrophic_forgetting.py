#!/usr/bin/env python
"""The paper's central mechanism, really trained: capacity-dependent CPT.

Pretrains the 7B-tier and 70B-tier micro analogues, continually pretrains
both on the same AIC corpus with the same recipe (the paper used one recipe
across scales — Section VI explains this is exactly why the small model
suffered), and reports base-token scores before and after.

Expected shape (matches Table I): the small-capacity model *loses* points
(catastrophic forgetting) while the large one *gains*.

Run:  python examples/catastrophic_forgetting.py      (~20-30 min on 1 CPU)
      python examples/catastrophic_forgetting.py --fast  (weaker but quicker)
"""

import argparse
import time

from repro.core import AstroLLaMAPipeline, PipelineConfig, get_entry
from repro.core.pretrain import BasePretrainConfig
from repro.core.world import MicroWorld
from repro.eval import EvaluationRunner, TokenPredictionEvaluator


def token_base_score(world, model, tokenizer, max_questions=None) -> float:
    evaluator = TokenPredictionEvaluator(
        model,
        tokenizer,
        few_shot=world.benchmark.few_shot(2),
        prefix_ids=[tokenizer.vocab.eos_id],
    )
    runner = EvaluationRunner(world.benchmark, max_questions=max_questions)
    return runner.run(evaluator.predict, "token_base", "model").score_percent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller world + fewer steps (shape may be noisier)")
    args = parser.parse_args()

    world = MicroWorld.build_test(seed=0) if args.fast else MicroWorld.build_bench(seed=0)
    config = PipelineConfig()
    if args.fast:
        config.pretrain = BasePretrainConfig(total_steps=600)
    pipe = AstroLLaMAPipeline(world, config)

    rows = []
    for native_name, astro_name in [
        ("LLaMA-2-7B", "AstroLLaMA-2-7B-AIC"),
        ("LLaMA-2-70B", "AstroLLaMA-2-70B-AIC"),
    ]:
        native = get_entry(native_name)
        astro = get_entry(astro_name)
        t0 = time.time()
        print(f"pretraining {native_name} micro analogue "
              f"({native.family.base_train_steps} steps)...")
        base = pipe.base_for(native)
        before = token_base_score(world, base.model, base.tokenizer)
        print(f"  base token-prediction score: {before:.1f}%  "
              f"({time.time() - t0:.0f}s)")

        t0 = time.time()
        print(f"continual pretraining -> {astro_name} "
              f"(dataset={astro.cpt_dataset}, same recipe for both tiers)...")
        cpt_model, _ = pipe.run_cpt(astro, base)
        after = token_base_score(world, cpt_model, base.tokenizer)
        print(f"  post-CPT score: {after:.1f}%  (Δ {after - before:+.1f})  "
              f"({time.time() - t0:.0f}s)")
        rows.append((native_name, before, after))

    print("\n=== summary (paper deltas: 7B -7.0, 70B +2.1) ===")
    for name, before, after in rows:
        print(f"  {name:<14s} {before:5.1f}% -> {after:5.1f}%   Δ {after - before:+.1f}")
    small_delta = rows[0][2] - rows[0][1]
    large_delta = rows[1][2] - rows[1][1]
    verdict = "REPRODUCED" if large_delta > small_delta else "NOT reproduced"
    print(f"\n  capacity ordering (large CPT delta > small CPT delta): {verdict}")


if __name__ == "__main__":
    main()
