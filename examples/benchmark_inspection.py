#!/usr/bin/env python
"""Build and inspect the full-scale MCQ benchmark (885 x 5 = 4,425 MCQs).

Demonstrates the Section IV pipeline at the paper's exact scale: synthetic
ARAA review generation, MCQ extraction under the design rules, quality
validation, and the answer-parsing pipeline on synthetic model outputs.

Run:  python examples/benchmark_inspection.py
"""

import numpy as np

from repro.corpus import make_astro_knowledge
from repro.eval.parsing import parse_model_answer
from repro.eval.prompts import format_next_token_prompt, format_paper_full_instruct
from repro.mcq import build_benchmark, validate_benchmark


def main() -> None:
    print("== building the paper-scale benchmark (885 articles x 5 MCQs) ==")
    knowledge = make_astro_knowledge(n_facts=1200, seed=0, subject_multiplier=8)
    benchmark = build_benchmark(knowledge, n_articles=885, dev_size=8, seed=0)
    print(f"   questions: {len(benchmark)} "
          f"({len(benchmark.test)} test, {len(benchmark.dev)} dev)")

    print("\n== quality validation (the paper's MCQ design rules) ==")
    report = validate_benchmark(benchmark.questions)
    print(f"   passed: {report.passed}")
    print(f"   equal-length-option violations: "
          f"{len(report.option_length_violations)}")
    print(f"   duplicate-option violations:    "
          f"{len(report.duplicate_option_violations)}")
    print(f"   article-dependence violations:  "
          f"{len(report.dependence_violations)}")
    print(f"   answer-letter counts: {dict(sorted(report.letter_counts.items()))} "
          f"(max skew from uniform: {report.max_letter_skew:.3f})")

    per_topic = {}
    for q in benchmark.questions:
        per_topic[q.topic] = per_topic.get(q.topic, 0) + 1
    print("\n== topic distribution ==")
    for topic, count in sorted(per_topic.items()):
        print(f"   {topic:<36s} {count:>5d}")

    q = benchmark.test[0]
    print("\n== prompt renderings for one question ==")
    print("-- Appendix B (full instruct, JSON contract) --")
    print(format_paper_full_instruct(q))
    print("\n-- Appendix C (two-shot next-token) --")
    print(format_next_token_prompt(q, benchmark.few_shot(2)))

    print("\n== the two-stage answer parser on synthetic model outputs ==")
    samples = [
        '{"ANSWER": "%s", "EXPLANATION": "standard astrophysics"}' % q.correct_letter,
        f"After consideration, the answer is {q.correct_letter}.",
        f"Based on stellar physics the value must be {q.options[q.correct_idx]}",
        "I am unable to determine the answer to this question.",
    ]
    for text in samples:
        outcome = parse_model_answer(text, q.options)
        verdict = (
            "correct"
            if outcome.answer_idx == q.correct_idx
            else ("wrong" if outcome.parsed else "unparsed")
        )
        print(f"   [{outcome.stage:<11s}] {verdict:<8s} <- {text[:60]!r}")


if __name__ == "__main__":
    main()
