#!/usr/bin/env python
"""HPC substrate demo: data parallelism, pipeline schedules, cluster costs.

Shows the training-systems layer the paper's runs relied on (LMFlow on
A100 nodes), in simulation:

1. DDP training across simulated ranks, with the replica-consistency
   invariant and the alpha-beta communication cost model;
2. GPipe vs 1F1B pipeline schedules: bubble fraction and activation-memory
   watermarks;
3. the A100 cluster model regenerating the paper's GPU-hour figures.

Run:  python examples/distributed_training.py
"""

import numpy as np

from repro.core.cost import paper_cost_accounting
from repro.model import ModelConfig
from repro.parallel import (
    ClusterModel,
    DataParallelTrainer,
    DDPConfig,
    DeviceMesh,
    gpipe_schedule,
    one_f_one_b_schedule,
)


def ddp_demo() -> None:
    print("== data-parallel training over a simulated 1x4 GPU node ==")
    mesh = DeviceMesh(nodes=1, gpus_per_node=4)
    config = ModelConfig(vocab_size=64, d_model=32, n_layers=2, n_heads=4, max_seq_len=32)
    trainer = DataParallelTrainer(mesh, config, DDPConfig(learning_rate=1e-3, total_steps=8))

    rng = np.random.default_rng(0)

    def batches():
        for _ in range(8):
            x = rng.integers(1, 64, size=(16, 16))
            yield x, np.roll(x, -1, axis=1)

    result = trainer.train(batches())
    print(f"   steps: {result.steps}, first loss {result.losses[0]:.3f}, "
          f"last loss {result.losses[-1]:.3f}")
    print(f"   replicas bit-identical after training: "
          f"{trainer.replicas_in_sync()}")
    print(f"   simulated compute {result.simulated_compute_seconds * 1e3:.2f} ms, "
          f"communication {result.simulated_comm_seconds * 1e3:.2f} ms")
    comm = trainer.comm.stats
    print(f"   collective calls: {comm.per_op_calls}, "
          f"{comm.bytes_moved / 1e6:.1f} MB moved")


def pipeline_demo() -> None:
    print("\n== pipeline schedules: GPipe vs 1F1B ==")
    print(f"   {'stages':>7s} {'microb.':>8s} {'gpipe bubble':>13s} "
          f"{'1f1b bubble':>12s} {'gpipe mem':>10s} {'1f1b mem':>9s}")
    for stages, microbatches in [(4, 4), (4, 8), (4, 16), (8, 32)]:
        g = gpipe_schedule(stages, microbatches)
        f = one_f_one_b_schedule(stages, microbatches)
        g.validate()
        f.validate()
        print(f"   {stages:>7d} {microbatches:>8d} "
              f"{g.bubble_fraction():>12.1%} {f.bubble_fraction():>11.1%} "
              f"{g.peak_in_flight():>10d} {f.peak_in_flight():>9d}")
    print("   (same bubble; 1F1B caps in-flight activations at the stage count)")


def cluster_demo() -> None:
    print("\n== A100 cluster cost model vs the paper's Section III figures ==")
    print(paper_cost_accounting().render())
    cluster = ClusterModel()
    print(f"\n   70B training needs {cluster.min_training_gpus(70e9)} GPUs "
          f"({cluster.min_training_gpus(70e9) // cluster.gpus_per_node} nodes); "
          f"8B fits a single node: {cluster.fits_single_node(8e9)}")


def main() -> None:
    ddp_demo()
    pipeline_demo()
    cluster_demo()


if __name__ == "__main__":
    main()
