"""Experiment V1 — the Section VI value extrapolation.

Recomputes the score/price trade-off claims: +3.5 points ~= 10x value, the
+2.1-point 70B gain ~= 4x value ~= two-thirds of a Haiku->Sonnet-class gap,
and the flagship positioning of AstroLLaMA-2-70B (76.0) against
Gemini-1.5-Pro (77.6), Claude-3.0-Sonnet (76.7) and GLM-4-0520 (75.1).
"""

import pytest

from repro.scale import (
    FLAGSHIP_SCORES,
    ScorePriceFrontier,
    SurrogateModel,
    cost_ratio_for_points,
)
from repro.core.zoo import get_entry


@pytest.fixture(scope="module")
def frontier():
    return ScorePriceFrontier()


def test_tradeoff_regeneration(benchmark, frontier):
    claims = benchmark(frontier.paper_claims)
    print("\n" + "\n".join(f"{k}: {v:.3f}" for k, v in claims.items()))
    assert claims["cpt_gain_points"] == pytest.approx(2.1, abs=0.05)
    assert claims["fraction_of_class_gap"] == pytest.approx(2 / 3, abs=0.01)
    assert 3.5 < claims["cpt_gain_value_ratio"] < 4.5


def test_ten_fold_rule(frontier):
    assert cost_ratio_for_points(3.5) == pytest.approx(10.0)


def test_gain_is_two_thirds_of_class_gap(frontier):
    claims = frontier.paper_claims()
    assert claims["fraction_of_class_gap"] == pytest.approx(2 / 3, abs=0.01)
    assert claims["cpt_gain_points"] == pytest.approx(2.1, abs=0.05)


def test_gain_value_ratio_about_4x(frontier):
    assert frontier.value_gain(73.9, 76.0) == pytest.approx(3.98, abs=0.1)


def test_flagship_positioning():
    """76.0 'begins to rival some of the flagship models': above GLM-4,
    just below Claude-3.0-Sonnet and Gemini-1.5-Pro."""
    surrogate = SurrogateModel()
    score = surrogate.token_base(get_entry("AstroLLaMA-2-70B-AIC"))
    assert score > FLAGSHIP_SCORES["GLM-4-0520"]
    assert score < FLAGSHIP_SCORES["Claude-3.0-Sonnet"]
    assert score < FLAGSHIP_SCORES["Gemini-1.5-Pro-001"]


def test_remedied_sft_would_rival_gemini():
    """Extrapolation: closing the SFT gap brings full-instruct near the
    base-token score — the upcoming-paper remedy the discussion promises."""
    surrogate = SurrogateModel()
    entry = get_entry("AstroLLaMA-2-70B-AIC")
    remedied = surrogate.full_instruct(entry, sft_astro_fraction=1.0)
    assert remedied > surrogate.full_instruct(entry) + 5.0
