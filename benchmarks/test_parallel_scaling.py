"""Experiment P1 — training-system scaling (the substrate behind §III).

The paper's 70B runs depended on efficient multi-GPU training; this bench
characterizes the simulated system layer:

* data-parallel scaling efficiency under the ring all-reduce cost model;
* pipeline bubble fractions vs microbatch count (GPipe and 1F1B);
* the communication/computation ratio crossing as models shrink.
"""

import numpy as np
import pytest

from repro.model import ModelConfig
from repro.parallel import (
    DataParallelTrainer,
    DDPConfig,
    DeviceMesh,
    RingCostModel,
    gpipe_schedule,
    one_f_one_b_schedule,
)


def _run_ddp(world: int, steps: int = 4):
    mesh = DeviceMesh(1, world)
    cfg = ModelConfig(vocab_size=64, d_model=16, n_layers=1, n_heads=2, max_seq_len=32)
    # per-rank batch 16 x seq 32 = 512 tokens: compute-dominated, as real
    # training is (tiny per-rank batches would be latency-dominated).
    trainer = DataParallelTrainer(
        mesh, cfg, DDPConfig(learning_rate=1e-3, total_steps=steps)
    )
    rng = np.random.default_rng(0)

    def batches():
        for _ in range(steps):
            x = rng.integers(1, 64, size=(16 * world, 32))
            yield x, np.roll(x, -1, axis=1)

    return trainer, trainer.train(batches())


def test_p1_ddp_weak_scaling(benchmark):
    """Weak scaling: per-step simulated time roughly flat as ranks grow
    with the global batch (communication adds only the ring term)."""

    def sweep():
        times = {}
        for world in (1, 2, 4, 8):
            _, result = _run_ddp(world)
            times[world] = result.simulated_total_seconds / result.steps
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + "\n".join(f"ranks={w}: {t * 1e6:.1f} us/step" for w, t in times.items()))
    # weak scaling: 8 ranks no worse than 3x the single-rank step time
    assert times[8] < times[1] * 3.0


def test_p1_ddp_strong_scaling_efficiency():
    """Strong scaling: fixed global batch split over more ranks."""
    mesh_sizes = (1, 2, 4, 8)
    serial_time = None
    for world in mesh_sizes:
        mesh = DeviceMesh(1, world)
        cfg = ModelConfig(vocab_size=64, d_model=16, n_layers=1, n_heads=2, max_seq_len=16)
        trainer = DataParallelTrainer(
            mesh, cfg, DDPConfig(learning_rate=1e-3, total_steps=2)
        )
        rng = np.random.default_rng(0)

        def batches():
            for _ in range(2):
                x = rng.integers(1, 64, size=(16, 8))
                yield x, np.roll(x, -1, axis=1)

        result = trainer.train(batches())
        if world == 1:
            serial_time = result.simulated_total_seconds
        else:
            eff = result.parallel_efficiency(serial_time, world)
            assert 0.05 < eff <= 1.01


def test_p1_bubble_fraction_sweep(benchmark):
    def sweep():
        rows = []
        for m in (4, 8, 16, 32, 64):
            g = gpipe_schedule(8, m)
            f = one_f_one_b_schedule(8, m)
            rows.append((m, g.bubble_fraction(), f.peak_in_flight(), g.peak_in_flight()))
        return rows

    rows = benchmark(sweep)
    print("\nmicrobatches  bubble  1f1b-mem  gpipe-mem")
    for m, bubble, fmem, gmem in rows:
        print(f"{m:>11d}  {bubble:6.1%}  {fmem:>8d}  {gmem:>9d}")
    bubbles = [r[1] for r in rows]
    assert bubbles == sorted(bubbles, reverse=True)  # more microbatches -> less bubble
    assert all(r[2] <= 8 for r in rows)  # 1F1B memory bounded by stage count


def test_p1_cross_node_penalty():
    """All-reduce across nodes costs more than within a node."""
    cm = RingCostModel()
    nbytes = 1 << 28
    assert cm.all_reduce_time(nbytes, 8, True) > 5 * cm.all_reduce_time(
        nbytes, 8, False
    )
