"""Experiment F1 — Figure 1 regeneration.

Rebuilds the paper's figure data (per-model symbols for the three methods,
grouped by model series, with native full-instruct baselines as horizontal
lines) and asserts its visual structure: which symbols sit above/below the
baseline lines.
"""

import pytest

from repro.analysis import build_figure1, render_figure1_ascii, table_one_from_surrogate
from repro.analysis.figures import SERIES_ORDER


@pytest.fixture(scope="module")
def figure():
    return build_figure1(table_one_from_surrogate())


def test_figure1_regeneration(benchmark):
    fig = benchmark(lambda: build_figure1(table_one_from_surrogate()))
    print("\n" + render_figure1_ascii(fig))
    assert len(fig.points) == 8
    # inline contract for benchmark-only runs: baselines present, 70B gain
    for series in SERIES_ORDER:
        assert series in fig.baselines
    assert (
        fig.points["AstroLLaMA-2-70B-AIC"]["token_base"]
        > fig.points["LLaMA-2-70B"]["token_base"]
    )


def test_all_series_present_with_baselines(figure):
    for series in SERIES_ORDER:
        assert series in figure.series
        assert series in figure.baselines


def test_baselines_are_native_full_instruct(figure):
    assert figure.baselines[SERIES_ORDER[0]] == pytest.approx(50.3, abs=0.5)
    assert figure.baselines[SERIES_ORDER[1]] == pytest.approx(72.9, abs=0.5)
    assert figure.baselines[SERIES_ORDER[2]] == pytest.approx(70.7, abs=0.5)


def test_7b_decrement_visible(figure):
    """AstroLLaMA-2-7B symbols all sit below the 7B baseline line."""
    base = figure.baselines[SERIES_ORDER[0]]
    for model in ("AstroLLaMA-2-7B-AIC", "AstroLLaMA-2-7B-Abstract"):
        for score in figure.points[model].values():
            if score is not None:
                assert score < base


def test_70b_token_symbols_above_everything_in_series(figure):
    """The 70B story: AstroLLaMA token symbols above the native's scores."""
    astro = figure.points["AstroLLaMA-2-70B-AIC"]
    native = figure.points["LLaMA-2-70B"]
    assert astro["token_base"] > native["token_base"]
    assert astro["token_instruct"] > native["token_instruct"]
    # ...while its full-instruct symbol falls below the baseline line
    assert astro["full_instruct"] < figure.baselines[SERIES_ORDER[2]]


def test_instruct_methods_below_token_base_for_astrollama(figure):
    """Figure caption: 'across all models, the instruct versions ...
    perform worse than the next-token prediction task'."""
    for model in (
        "AstroLLaMA-2-7B-AIC",
        "AstroLLaMA-3-8B-AIC",
        "AstroLLaMA-3-8B-Summary",
        "AstroLLaMA-2-70B-AIC",
    ):
        pts = figure.points[model]
        assert pts["full_instruct"] <= pts["token_base"]


def test_ascii_rendering_contains_all_models(figure):
    art = render_figure1_ascii(figure)
    for name in figure.points:
        assert name in art
