"""Serving-engine throughput: continuous batching vs sequential serving.

The paper's Table I workload — thousands of MCQs, a mix of long
full-instruct generations and single-step next-token scorings — is
exactly the traffic shape continuous batching was invented for
(Orca/vLLM): a sequential server decodes one request at a time, so every
short request waits out every long one, while iteration-level batching
decodes all in-flight requests in one step.

Two measures, deliberately separated:

* ``test_decode_step_reduction_smoke`` — the *scheduling* win on the
  virtual-clock measure (``decode_steps``: scheduler iterations that
  advanced at least one decode).  Deterministic, fast, asserted in
  blocking CI: identical outputs, >= 3x fewer decode steps.
* ``test_wall_time_overhead`` — the *wall-time* guardrail (marked
  ``slow``, nightly): the numpy model decodes each row as its own
  forward, so continuous batching cannot amortize matmuls on real
  hardware-free seconds — but the whole serving machinery (queue,
  scheduler, metrics, event log, prefix store) must come for free
  relative to a naive per-request ``generate()`` loop.  On a real
  batched-kernel backend the decode-step reduction *is* the wall-time
  reduction; here the two measures are kept honest and separate.
"""

import time

import pytest

from repro.model import ModelConfig, TransformerLM
from repro.serve import SchedulerConfig, ServeConfig, make_workload, simulate

N_REQUESTS = 32
BATCH_WIDTH = 8
STEP_REDUCTION_TARGET = 3.0
# the engine may cost at most this factor over the naive loop (nightly)
WALL_OVERHEAD_CEILING = 1.15

#: arrival burst: everything is queued from the start, so the comparison
#: is pure scheduling policy, not arrival luck
WORKLOAD = dict(
    seed=17,
    scaffold_len=12,
    mean_gap=0.0,
    generate_fraction=0.75,
    prompt_len_range=(4, 10),
    max_new_range=(8, 24),
    temperature=0.8,
)

SEQUENTIAL = ServeConfig(
    queue_capacity=N_REQUESTS,
    scheduler=SchedulerConfig(token_budget=4096, max_running=1),
)
CONTINUOUS = ServeConfig(
    queue_capacity=N_REQUESTS,
    scheduler=SchedulerConfig(token_budget=4096, max_running=BATCH_WIDTH),
)


def serve_model(d_model=32, n_layers=2):
    return TransformerLM(
        ModelConfig(
            vocab_size=256, d_model=d_model, n_layers=n_layers, n_heads=4,
            max_seq_len=128,
        ),
        seed=0,
    )


class TestServeThroughput:
    def test_decode_step_reduction_smoke(self):
        """Same answers, >= 3x fewer decode steps — on virtual measures."""
        model = serve_model()
        specs = make_workload(N_REQUESTS, vocab_size=256, **WORKLOAD)

        sequential = simulate(model, specs, config=SEQUENTIAL)
        continuous = simulate(model, specs, config=CONTINUOUS)

        # correctness first: batching must not touch any output
        assert continuous.outputs == sequential.outputs
        assert continuous.metrics["finished"] == N_REQUESTS

        seq_steps = sequential.metrics["decode_steps"]
        cont_steps = continuous.metrics["decode_steps"]
        reduction = seq_steps / cont_steps
        print(
            f"\n[serve-throughput] n={N_REQUESTS} width={BATCH_WIDTH} "
            f"decode_steps sequential={seq_steps} continuous={cont_steps} "
            f"reduction={reduction:.1f}x "
            f"virtual_time {sequential.end_time:.0f}s -> "
            f"{continuous.end_time:.0f}s"
        )
        assert reduction >= STEP_REDUCTION_TARGET
        # the modeled clock agrees with the step counter's story
        assert continuous.end_time < sequential.end_time

    @pytest.mark.slow
    def test_wall_time_overhead(self):
        """Serving machinery costs ~nothing over a naive loop (nightly)."""
        from repro.model.sampling import generate
        from repro.serve import RequestKind

        model = serve_model(d_model=64, n_layers=3)
        specs = make_workload(N_REQUESTS, vocab_size=256, **WORKLOAD)

        t0 = time.perf_counter()
        naive_outputs = {}
        for spec in specs:
            request = spec.to_request()
            naive_outputs[spec.request_id] = (
                generate(model, list(request.prompt_ids), request.generation)
                if spec.kind is RequestKind.GENERATE
                else []
            )
        naive_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        served = simulate(model, specs, config=CONTINUOUS)
        served_s = time.perf_counter() - t0

        generate_ids = [
            s.request_id for s in specs if s.kind is RequestKind.GENERATE
        ]
        assert all(
            served.outputs[rid] == naive_outputs[rid] for rid in generate_ids
        )
        overhead = served_s / naive_s
        print(
            f"\n[serve-throughput] wall naive={naive_s:.2f}s "
            f"served={served_s:.2f}s overhead={overhead:.2f}x "
            f"(ceiling {WALL_OVERHEAD_CEILING}x)"
        )
        assert overhead <= WALL_OVERHEAD_CEILING
