"""Evaluation-engine throughput: naive vs prefix-cached batched scoring.

The paper's Table I scores 8 models x 3 methods over 4,425 MCQs; its
successors (AstroMLab 3/4) make benchmark throughput the binding
constraint on model iteration.  This bench measures the repro's eval
engine on the micro zoo scale:

* **naive** — the seed path: every question re-encodes and re-forwards
  the full two-shot prompt, one question at a time;
* **cached+batched** — the shared scaffold is prefilled once
  (:meth:`TransformerLM.prefill`) and question suffixes are scored in
  padded batches (:meth:`TransformerLM.next_token_logits_many`).

Acceptance target: >= 5x questions/sec, with bit-identical predictions.
"""

import time

import numpy as np
import pytest

from repro.corpus import make_astro_knowledge
from repro.eval import BatchedEvaluationRunner, TokenPredictionEvaluator
from repro.eval.prompts import format_next_token_prompt
from repro.mcq import build_benchmark
from repro.model import ModelConfig, TransformerLM
from repro.tokenizer import WordTokenizer

N_QUESTIONS = 64
# The paper's real MCQs are an order of magnitude longer than the micro
# zoo's synthetic ones, so its two-shot scaffold dominates the prompt.  A
# four-shot scaffold reproduces that scaffold:suffix token ratio at micro
# scale (the pipeline itself stays two-shot, matching Appendix C).
FEW_SHOT = 4
SPEEDUP_TARGET = 5.0


@pytest.fixture(scope="module")
def eval_world():
    astro = make_astro_knowledge(n_facts=160, seed=11)
    bench = build_benchmark(
        astro, n_articles=12, facts_per_article=6, dev_size=4, seed=12
    )
    texts = []
    for f in astro.facts:
        texts.extend(f.statement(i) for i in range(4))
    texts.append(
        "Question : A B C D Answer : Astrophysics and Cosmology "
        "Multiple choice questions Solution set :"
    )
    tok = WordTokenizer.train(texts, vocab_size=4000, space_prefix=False)
    longest = max(
        len(tok.encode(format_next_token_prompt(q, bench.few_shot(FEW_SHOT))))
        for q in bench.test
    )
    # "large"-tier micro-zoo dims (the 70B analogue): big enough that the
    # forward is matmul-dominated, so the measured ratio reflects the
    # engine rather than Python overhead.
    model = TransformerLM(
        ModelConfig(
            vocab_size=len(tok.vocab),
            d_model=128,
            n_layers=4,
            n_heads=4,
            max_seq_len=longest + 8,
        ),
        seed=0,
    )
    return model, tok, bench


def _evaluator(model, tok, bench, batch_size=16):
    return TokenPredictionEvaluator(
        model, tok, bench.few_shot(FEW_SHOT), batch_size=batch_size
    )


class TestEvalThroughput:
    def test_cached_batched_is_faster_and_identical(self, eval_world):
        model, tok, bench = eval_world
        runner = BatchedEvaluationRunner(bench, max_questions=N_QUESTIONS)

        naive_eval = _evaluator(model, tok, bench)
        t0 = time.perf_counter()
        naive = runner.run_sequential(naive_eval.predict, "naive", "micro-lm")
        naive_s = time.perf_counter() - t0

        # fresh evaluator: the timed run includes the one-time prefill
        fast_eval = _evaluator(model, tok, bench)
        t0 = time.perf_counter()
        fast = runner.run(fast_eval, "cached-batched", "micro-lm")
        fast_s = time.perf_counter() - t0

        n = naive.n_questions
        naive_qps, fast_qps = n / naive_s, n / fast_s
        speedup = fast_qps / naive_qps
        print(
            f"\n[eval-throughput] n={n} "
            f"naive={naive_qps:.1f} q/s cached+batched={fast_qps:.1f} q/s "
            f"speedup={speedup:.1f}x"
        )
        assert fast.predictions == naive.predictions
        assert speedup >= SPEEDUP_TARGET

    def test_batch_size_sweep_smoke(self, eval_world):
        """Chunked batches agree with one big batch (memory-bounded path)."""
        model, tok, bench = eval_world
        questions = bench.test[:16]
        reference = _evaluator(model, tok, bench, batch_size=16).predict_many(
            questions
        )
        for batch_size in (1, 3, 16):
            preds = _evaluator(
                model, tok, bench, batch_size=batch_size
            ).predict_many(questions)
            assert preds == reference
