"""Ablation benches over the calibrated surrogate (design-choice studies).

These quantify the counterfactuals the paper argues but could not run:

* the SFT remedy (Section VI / de Haan et al., in prep.);
* CPT data quality beyond astro-ph (Section VII's "textbooks + Wikipedia +
  summaries" path);
* the capacity break-even separating the 7B collapse from the 70B gain;
* the Section VII feasibility forecast (O(10^4)-O(10^5) GPU-hours).
"""

import pytest

from repro.analysis import (
    capacity_frontier,
    dataset_quality_sweep,
    sft_remedy_sweep,
)
from repro.core import forecast_full_text_cpt
from repro.scale import CALIBRATED_PARAMS


def test_ablation_sft_remedy(benchmark):
    sweep = benchmark(sft_remedy_sweep)
    print("\n" + sweep.render())
    # at the paper's 1/3 astronomy fraction: the reported 64.7
    assert sweep.ys[0] == pytest.approx(64.7, abs=0.5)
    # a fully astronomy-focused set nearly closes the gap to token-instruct (75.4)
    assert sweep.ys[-1] > 73.0
    assert sweep.monotone_increasing()


def test_ablation_dataset_quality(benchmark):
    sweep = benchmark(dataset_quality_sweep)
    print("\n" + sweep.render())
    assert sweep.monotone_increasing()
    # Section VII: better-than-astro-ph data can lift even the 8B model
    # above its native baseline (72.0)
    assert sweep.ys[-1] > 72.0


def test_ablation_capacity_frontier(benchmark):
    sweep, breakeven = benchmark(capacity_frontier)
    print("\n" + sweep.render())
    print(f"break-even phi: {breakeven:.2f}")
    assert breakeven is not None
    assert CALIBRATED_PARAMS.phi["large"] < breakeven < CALIBRATED_PARAMS.phi["tiny"]


def test_ablation_feasibility_forecast(benchmark):
    est = benchmark(forecast_full_text_cpt)
    print(f"\nfull-text astro-ph CPT at 70B: {est.gpu_hours:,.0f} A100-hours "
          f"({est.gpus_used} GPUs, {est.wall_hours:,.0f} wall-hours)")
    assert 1e4 <= est.gpu_hours < 1e5  # "O(10^4) to O(10^5) GPU hours"
