"""Shared fixtures for the benchmark harness.

Benchmarks regenerate the paper's tables and figures.  Two speed classes:

* surrogate benches (``test_table1.py``, ``test_figure1.py``,
  ``test_gpu_hours.py``, ``test_tradeoff.py``) run in seconds;
* micro-training benches (``*_micro.py``) really train models and take
  minutes each; deselect with ``-k "not micro"`` when iterating.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.core import AstroLLaMAPipeline, PipelineConfig
from repro.core.world import MicroWorld


@pytest.fixture(scope="session")
def bench_world():
    """One shared micro world for all micro-training benches."""
    return MicroWorld.build_bench(seed=0)


@pytest.fixture(scope="session")
def bench_pipeline(bench_world):
    """One shared pipeline: bases/CPTs/full results are cached per entry,
    so the whole micro-bench suite trains each model exactly once.

    Evaluation is trimmed (80 questions, 24 generated tokens) to keep the
    suite within a single-CPU hour; the qualitative assertions are robust
    at that sample size (binomial sigma ~5 points)."""
    return AstroLLaMAPipeline(
        bench_world,
        PipelineConfig(max_questions=80, gen_max_new_tokens=24),
    )


@pytest.fixture(scope="session")
def test_world():
    """A smaller world for cheaper micro benches."""
    return MicroWorld.build_test(seed=0)
