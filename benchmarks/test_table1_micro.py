"""Experiment T1 (micro path) — Table I measured on the micro zoo.

Runs the full pipeline (pretrain -> CPT -> SFT -> three-method evaluation)
for every Table-I row on the benchmark world and prints the measured table
next to the paper's.  Absolute values are micro-scale; the assertions check
the qualitative contract only (orderings and arrows the paper reports).

This is the slowest bench in the harness (~45-60 min on one CPU): three
base pretrains past the circuit-emergence threshold plus five CPTs, six
SFTs and 24 evaluations.  Deselect with ``-k "not micro"``.
"""

import pytest

from repro.core import TableOne, zoo_entries


@pytest.fixture(scope="module")
def micro_table(bench_pipeline):
    table = TableOne(similar_band=3.0)
    for entry in zoo_entries():
        result = bench_pipeline.run(entry)
        table.add(result.score_card())
    return table


def test_t1_micro_table(benchmark, micro_table):
    rendered = benchmark.pedantic(
        micro_table.render, kwargs={"show_paper": True}, rounds=1, iterations=1
    )
    print("\n" + rendered)
    assert len(micro_table.cards) == 8


def test_t1_micro_70b_cpt_gains(micro_table):
    """The headline: CPT improves the large tier's base-token score."""
    astro = micro_table.cards["AstroLLaMA-2-70B-AIC"].score("token_base")
    native = micro_table.cards["LLaMA-2-70B"].score("token_base")
    assert astro > native - 1.0


def test_t1_micro_7b_cpt_hurts_relative_to_70b(micro_table):
    """Capacity ordering of CPT deltas (the paper's key contrast)."""
    d7 = micro_table.cards["AstroLLaMA-2-7B-AIC"].score("token_base") - (
        micro_table.cards["LLaMA-2-7B"].score("token_base")
    )
    d70 = micro_table.cards["AstroLLaMA-2-70B-AIC"].score("token_base") - (
        micro_table.cards["LLaMA-2-70B"].score("token_base")
    )
    assert d70 > d7


def test_t1_micro_llama3_beats_llama2_tiny(micro_table):
    """Generation gap: the 8B-tier baseline outscores the 7B-tier one."""
    assert micro_table.cards["LLaMA-3-8B"].score("token_base") > (
        micro_table.cards["LLaMA-2-7B"].score("token_base")
    )


def test_t1_micro_sft_drag(micro_table):
    """Full-instruct <= base-token for specialized models (Figure 1 note)."""
    for name in ("AstroLLaMA-2-7B-AIC", "AstroLLaMA-2-70B-AIC"):
        card = micro_table.cards[name]
        assert card.score("full_instruct") <= card.score("token_base") + 3.0
