"""Experiment C1 — Section III cost accounting regeneration.

The paper reports: CPT ~32 A100-h (8B) and ~2,000 A100-h (70B); SFT ~12 and
~100 A100-h; full-instruct inference over 4,425 MCQs ~64 A100-h (70B).
The cluster model regenerates all five from FLOP rules; assertions hold
each to within a factor-2 band and the ratios much tighter.
"""

import pytest

from repro.core.cost import paper_cost_accounting
from repro.parallel import ClusterModel


@pytest.fixture(scope="module")
def report():
    return paper_cost_accounting()


def test_cost_accounting_regeneration(benchmark):
    rep = benchmark(paper_cost_accounting)
    print("\n" + rep.render())
    assert set(rep.estimates) == {
        "cpt_8b",
        "cpt_70b",
        "sft_8b",
        "sft_70b",
        "inference_70b",
    }
    assert rep.within_band(2.0), rep.render()


def test_all_figures_within_factor_two(report):
    assert report.within_band(2.0), report.render()


def test_cpt_figures_tight(report):
    assert report.estimates["cpt_8b"].gpu_hours == pytest.approx(32, rel=0.25)
    assert report.estimates["cpt_70b"].gpu_hours == pytest.approx(2000, rel=0.25)


def test_cpt_scaling_ratio(report):
    """70B/8B CPT cost ratio: the paper's 2000/32 ~= 62x (parameter ratio
    8.75x times the multi-node MFU penalty)."""
    ratio = (
        report.estimates["cpt_70b"].gpu_hours / report.estimates["cpt_8b"].gpu_hours
    )
    assert 40 <= ratio <= 90


def test_sft_scales_with_parameters(report):
    ratio = (
        report.estimates["sft_70b"].gpu_hours / report.estimates["sft_8b"].gpu_hours
    )
    assert ratio == pytest.approx(70 / 8, rel=0.15)


def test_70b_needs_multiple_nodes():
    cluster = ClusterModel()
    assert cluster.min_training_gpus(70e9) > cluster.gpus_per_node
    assert cluster.min_training_gpus(8e9) <= cluster.gpus_per_node


def test_paper_epoch_magnitude():
    """Sanity: O(10^3) GPU-hours for the 70B CPT, as Section VII states."""
    rep = paper_cost_accounting()
    assert 1e3 <= rep.estimates["cpt_70b"].gpu_hours < 1e4
