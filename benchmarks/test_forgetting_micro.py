"""Experiment M1 — capacity-dependent CPT outcome, really trained.

The paper's central mechanism: the same CPT recipe *degrades* the
small-capacity model (catastrophic forgetting, the 7B rows of Table I) but
*helps or spares* the large one (the 70B row).  This bench runs the shared
pipeline for the native and CPT'd entries at both capacity extremes and
asserts the capacity ordering of the base-token deltas.

Slow: real training on the NumPy stack (shared across the micro suite via
the session pipeline).  Deselect with ``-k "not micro"``.
"""

import pytest

from repro.core import get_entry


@pytest.fixture(scope="module")
def deltas(bench_pipeline):
    out = {}
    for native_name, astro_name in [
        ("LLaMA-2-7B", "AstroLLaMA-2-7B-AIC"),
        ("LLaMA-2-70B", "AstroLLaMA-2-70B-AIC"),
    ]:
        native = bench_pipeline.run(get_entry(native_name))
        astro = bench_pipeline.run(get_entry(astro_name))
        out[native_name] = (
            native.evaluations["token_base"].score_percent,
            astro.evaluations["token_base"].score_percent,
        )
    return out


def test_m1_forgetting_micro(benchmark, deltas):
    def report():
        return [
            f"{name}: {before:.1f} -> {after:.1f} (Δ {after - before:+.1f})"
            for name, (before, after) in deltas.items()
        ]

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n" + "\n".join(rows))
    small_delta = deltas["LLaMA-2-7B"][1] - deltas["LLaMA-2-7B"][0]
    large_delta = deltas["LLaMA-2-70B"][1] - deltas["LLaMA-2-70B"][0]
    # the paper's shape: large-capacity CPT strictly better than small's
    assert large_delta > small_delta


def test_m1_baselines_above_chance(deltas):
    for name, (before, _) in deltas.items():
        assert before > 35.0, f"{name} base failed to learn (score {before:.1f})"


def test_m1_large_base_at_least_small_base(deltas):
    assert deltas["LLaMA-2-70B"][0] >= deltas["LLaMA-2-7B"][0] - 2.0
