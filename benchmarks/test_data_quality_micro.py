"""Experiment M3 — CPT dataset quality at a fixed token budget.

The paper's Summary-vs-AIC comparison: information-dense tokens (LLM
summaries of full text) cover more of the knowledge world per training
token than the AIC sections, and the Summary-trained 8B degrades less /
scores slightly higher (72.3 vs 71.9 base-token; 72.0 native).

Two layers here: the deterministic dataset-construction property, and the
training consequence on the 8B-tier micro model (via the shared session
pipeline).  Deselect with ``-k "not micro"``.
"""

import pytest

from repro.core import get_entry
from repro.corpus.datasets import (
    build_abstract_dataset,
    build_aic_dataset,
    build_summary_dataset,
)


def test_m3_coverage_at_fixed_budget(benchmark, bench_world):
    """Dataset-level property: Summary >= AIC coverage at equal budgets."""

    def coverage_table():
        aic = build_aic_dataset(bench_world.archive)
        summary = build_summary_dataset(bench_world.archive)
        abstract = build_abstract_dataset(bench_world.archive)
        budget = min(aic.word_count, summary.word_count) // 2
        return {
            d.name: d.truncate_words(budget).coverage
            for d in (abstract, aic, summary)
        }

    cov = benchmark(coverage_table)
    print("\n" + "\n".join(f"{k}: {v:.3f}" for k, v in cov.items()))
    assert cov["summary"] >= cov["aic"]


@pytest.fixture(scope="module")
def small_tier_scores(bench_pipeline):
    scores = {
        "native": bench_pipeline.run(get_entry("LLaMA-3-8B"))
        .evaluations["token_base"]
        .score_percent
    }
    for entry_name, label in [
        ("AstroLLaMA-3-8B-AIC", "aic"),
        ("AstroLLaMA-3-8B-Summary", "summary"),
    ]:
        scores[label] = (
            bench_pipeline.run(get_entry(entry_name))
            .evaluations["token_base"]
            .score_percent
        )
    return scores


def test_m3_summary_at_least_aic_micro(benchmark, small_tier_scores):
    scores = benchmark.pedantic(
        lambda: dict(small_tier_scores), rounds=1, iterations=1
    )
    print("\n" + "\n".join(f"{k}: {v:.1f}%" for k, v in scores.items()))
    # the paper's shape at the 8B tier: Summary >= AIC (72.3 vs 71.9)
    assert scores["summary"] >= scores["aic"] - 2.0


def test_m3_8b_tier_retains_knowledge(small_tier_scores):
    """The 8B tier neither collapses nor explodes under CPT (paper:
    71.9-72.3 vs native 72.0)."""
    native = small_tier_scores["native"]
    assert small_tier_scores["aic"] >= native - 12.0
