"""Experiment T1 — Table I regeneration (surrogate path).

Regenerates the paper's headline table: 8 models x 3 benchmarking methods,
with better/worse/similar arrows relative to each native baseline, from the
calibrated scale surrogate.  The assertions encode the reproduction
contract: every cell within 0.5 points of the paper and every qualitative
arrow/ordering intact.
"""

import pytest

from repro.analysis import render_table_one_markdown, table_one_from_surrogate
from repro.core.scorecards import METHODS, Arrow
from repro.core.zoo import zoo_entries
from repro.scale import PAPER_TABLE_ONE


@pytest.fixture(scope="module")
def table():
    return table_one_from_surrogate()


def test_table1_regeneration(benchmark, table):
    """Benchmark the full table build; print the regenerated Table I.

    Also validates the reproduction contract inline so the benchmark-only
    invocation still checks shape: every qualitative finding must hold.
    """
    result = benchmark(table_one_from_surrogate)
    rendered = result.render(show_paper=True)
    print("\n" + rendered)
    assert len(result.rows()) == len(zoo_entries())
    checks = result.shape_checks()
    failed = [k for k, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"


def test_table1_matches_paper_within_half_point(table):
    for row in table.rows():
        name = row["model"]
        for method in METHODS:
            paper = PAPER_TABLE_ONE[name][
                {
                    "full_instruct": "full_instruct",
                    "token_instruct": "token_instruct",
                    "token_base": "token_base",
                }[method]
            ]
            if paper is None:
                continue
            assert row[method] == pytest.approx(paper, abs=0.5), (
                f"{name}/{method}: {row[method]} vs paper {paper}"
            )


def test_table1_arrows_match_paper(table):
    """The paper's arrows: down for all 7B/8B AstroLLaMA cells except the
    8B base-token cells (similar) and the 70B token cells (up)."""
    expected = {
        ("AstroLLaMA-2-7B-AIC", "full_instruct"): Arrow.DOWN,
        ("AstroLLaMA-2-7B-AIC", "token_instruct"): Arrow.DOWN,
        ("AstroLLaMA-2-7B-AIC", "token_base"): Arrow.DOWN,
        ("AstroLLaMA-2-7B-Abstract", "token_base"): Arrow.DOWN,
        ("AstroLLaMA-3-8B-AIC", "full_instruct"): Arrow.DOWN,
        ("AstroLLaMA-3-8B-AIC", "token_instruct"): Arrow.DOWN,
        ("AstroLLaMA-3-8B-AIC", "token_base"): Arrow.SIMILAR,
        ("AstroLLaMA-3-8B-Summary", "full_instruct"): Arrow.DOWN,
        ("AstroLLaMA-3-8B-Summary", "token_instruct"): Arrow.DOWN,
        ("AstroLLaMA-3-8B-Summary", "token_base"): Arrow.SIMILAR,
        ("AstroLLaMA-2-70B-AIC", "full_instruct"): Arrow.DOWN,
        ("AstroLLaMA-2-70B-AIC", "token_instruct"): Arrow.UP,
        ("AstroLLaMA-2-70B-AIC", "token_base"): Arrow.UP,
    }
    for (name, method), want in expected.items():
        assert table.arrow(name, method) == want, (name, method)


def test_table1_shape_checks(table):
    checks = table.shape_checks()
    assert checks, "no shape checks evaluated"
    failed = [k for k, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"


def test_headline_finding_70b_gain(table):
    """The paper's headline: +2.1 points at 70B base-token."""
    card = table.cards["AstroLLaMA-2-70B-AIC"]
    native = table.cards["LLaMA-2-70B"]
    gain = card.score("token_base") - native.score("token_base")
    assert gain == pytest.approx(2.1, abs=0.2)
