"""Experiment M2 — SFT degradation, really trained.

Table I / Figure 1's cross-cutting observation: for the AstroLLaMA models,
full-instruct scores fall below the base model's next-token scores — the
small, mostly-general SFT set drags conversational answering below the
knowledge the base model demonstrably holds.

Uses the shared session pipeline (models train once across the micro
suite).  Deselect with ``-k "not micro"``.
"""

import pytest

from repro.core import get_entry


@pytest.fixture(scope="module")
def result(bench_pipeline):
    return bench_pipeline.run(get_entry("AstroLLaMA-2-7B-AIC"))


def test_m2_sft_degradation_micro(benchmark, result):
    def report():
        return {
            method: ev.score_percent for method, ev in result.evaluations.items()
        }

    scores = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n" + "\n".join(f"{k}: {v:.1f}%" for k, v in scores.items()))
    # the paper's shape: full instruct <= base-model token prediction
    assert scores["full_instruct"] <= scores["token_base"] + 2.0


def test_m2_full_instruct_parses_some_answers(result):
    """The instruct model must actually produce parseable answers — the
    degradation is about accuracy, not a broken generation path.  (The
    paper saw the same with weak models: the regex stage often failed and
    the interpreter fallback recovered the intent; 35% direct+fallback
    parse is the floor for 'the pipeline is alive'.)"""
    ev = result.evaluations["full_instruct"]
    parsed = ev.n_questions - ev.parse_failures
    assert parsed >= ev.n_questions * 0.35


def test_m2_token_methods_agree_with_knowledge(result):
    """Instruct-model token prediction stays within a few points of the
    base model (the paper: SFT shifts token scores far less than it shifts
    full-instruct behaviour)."""
    tb = result.evaluations["token_base"].score_percent
    ti = result.evaluations["token_instruct"].score_percent
    assert abs(ti - tb) <= 15.0
