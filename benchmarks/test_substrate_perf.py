"""Ablation benches A1-A3: substrate throughput baselines.

Not paper artifacts, but the performance envelope of the substrate the
micro experiments run on: tokenizer throughput, model step time per tier,
and collective op cost.  Useful when tuning experiment budgets.
"""

import numpy as np
import pytest

from repro.corpus import make_astro_knowledge
from repro.model.config import scaled_config
from repro.model.transformer import TransformerLM
from repro.parallel import Communicator, DeviceMesh
from repro.tokenizer import BPETokenizer, WordTokenizer

CORPUS_SENTENCES = None


def _corpus():
    global CORPUS_SENTENCES
    if CORPUS_SENTENCES is None:
        kb = make_astro_knowledge(n_facts=200, seed=0)
        CORPUS_SENTENCES = [f.statement(i) for f in kb.facts for i in range(4)]
    return CORPUS_SENTENCES


class TestTokenizerThroughput:
    """A1: tokenizer encode throughput."""

    def test_word_tokenizer_encode(self, benchmark):
        corpus = _corpus()
        tok = WordTokenizer.train(corpus, vocab_size=4000)
        text = " ".join(corpus[:50])

        ids = benchmark(tok.encode, text)
        assert len(ids) > 100

    def test_bpe_tokenizer_encode(self, benchmark):
        corpus = _corpus()
        tok = BPETokenizer.train(corpus[:200], vocab_size=600)
        text = " ".join(corpus[:20])

        ids = benchmark(tok.encode, text)
        assert len(ids) > 50

    def test_bpe_training(self, benchmark):
        corpus = _corpus()[:120]

        tok = benchmark.pedantic(
            BPETokenizer.train,
            args=(corpus, 400),
            rounds=3,
            iterations=1,
        )
        assert len(tok.vocab) <= 400


class TestModelStep:
    """A2: forward+backward step time across the capacity ladder."""

    @pytest.mark.parametrize("tier", ["tiny", "small", "large"])
    def test_train_step(self, benchmark, tier):
        cfg = scaled_config(1000, tier, max_seq_len=128)
        model = TransformerLM(cfg, seed=0)
        rng = np.random.default_rng(0)
        x = rng.integers(1, 1000, size=(8, 128))
        t = rng.integers(1, 1000, size=(8, 128))

        def step():
            model.zero_grad()
            return model.loss_and_backward(x, t)

        loss = benchmark.pedantic(step, rounds=3, iterations=1)
        assert loss > 0

    def test_generation_step(self, benchmark):
        cfg = scaled_config(1000, "small", max_seq_len=128)
        model = TransformerLM(cfg, seed=0)
        from repro.model.sampling import greedy_decode

        out = benchmark.pedantic(
            greedy_decode,
            args=(model, list(range(1, 30))),
            kwargs={"max_new_tokens": 16},
            rounds=3,
            iterations=1,
        )
        assert len(out) == 16


class TestCollectives:
    """A3: collective arithmetic cost (wall time) + simulated time model."""

    def test_all_reduce_wall_time(self, benchmark):
        mesh = DeviceMesh(1, 8)
        comm = Communicator(mesh)
        buffers = [np.random.default_rng(i).normal(size=100_000) for i in range(8)]

        out = benchmark(comm.all_reduce, buffers, "mean")
        assert len(out) == 8

    def test_simulated_scaling_is_sublinear(self):
        """Ring all-reduce: simulated time grows slowly with world size."""
        nbytes = 100 * 2**20
        from repro.parallel import RingCostModel

        cm = RingCostModel()
        t4 = cm.all_reduce_time(nbytes, 4, False)
        t16 = cm.all_reduce_time(nbytes, 16, False)
        assert t16 < t4 * 2  # bandwidth term saturates at 2x(n/B)
